"""Static test-set compaction.

Two classic passes:

* **merge compaction** — deterministic test *cubes* (patterns with
  don't-cares) that conflict on no assigned input are merged into one
  pattern, shrinking the set before don't-care fill;
* **reverse-order compaction** — fault-simulate the final patterns in
  reverse with fault dropping and discard any pattern that detects
  nothing new.

Test data volume is a first-class cost in the paper (§V-A credits
BILBO with cutting it "by a factor of 100"); compaction is the
deterministic-side lever on the same cost.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault

Cube = Dict[str, Optional[int]]
Pattern = Dict[str, int]


def merge_cubes(cubes: Sequence[Cube], inputs: Sequence[str]) -> List[Cube]:
    """Greedy pairwise merge of compatible test cubes.

    Two cubes are compatible when no input is assigned 0 in one and 1
    in the other; their merge takes the defined value wherever either
    defines one.
    """
    merged: List[Cube] = []
    for cube in cubes:
        placed = False
        for existing in merged:
            if _compatible(existing, cube, inputs):
                for net in inputs:
                    if existing.get(net) is None:
                        existing[net] = cube.get(net)
                placed = True
                break
        if not placed:
            merged.append({net: cube.get(net) for net in inputs})
    return merged


def _compatible(a: Cube, b: Cube, inputs: Sequence[str]) -> bool:
    for net in inputs:
        va, vb = a.get(net), b.get(net)
        if va is not None and vb is not None and va != vb:
            return False
    return True


def fill_cubes(
    cubes: Sequence[Cube], inputs: Sequence[str], seed: int = 0
) -> List[Pattern]:
    """Random-fill don't-cares, producing fully specified patterns."""
    rng = random.Random(seed)
    return [
        {
            net: (cube.get(net) if cube.get(net) is not None else rng.randint(0, 1))
            for net in inputs
        }
        for cube in cubes
    ]


def reverse_order_compaction(
    circuit: Circuit,
    patterns: Sequence[Pattern],
    faults: Optional[Sequence[Fault]] = None,
    engine: Union[str, "Engine"] = "parallel_pattern",
    **engine_kwargs,
) -> List[Pattern]:
    """Keep only patterns that detect a fault not detected later.

    Processes the set in reverse order (the classic heuristic: late
    patterns in a deterministic flow target hard faults and tend to
    detect many easy ones by accident).

    ``engine`` selects the fault-simulation engine by name or
    :class:`repro.faultsim.Engine` member, matching the unified selector
    used everywhere else; extra keyword arguments go to the engine
    constructor.
    """
    from ..faultsim import create_simulator

    simulator = create_simulator(circuit, engine, faults=faults, **engine_kwargs)
    undetected = set(simulator.faults)
    kept: List[Pattern] = []
    for pattern in reversed(list(patterns)):
        if not undetected:
            break
        newly = [f for f in undetected if simulator.detects(pattern, f)]
        if newly:
            kept.append(pattern)
            undetected.difference_update(newly)
    kept.reverse()
    return kept
