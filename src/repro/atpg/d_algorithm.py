"""The D-algorithm (Roth [92], [93]) — the calculus-of-D's test generator.

Unlike PODEM, the D-algorithm makes decisions on *internal* lines: it
activates the fault as a D/D' at its site, then alternates

* **D-drive**: pick a gate from the D-frontier (output X, some input
  D/D'), set its remaining inputs non-controlling, pushing the error
  one level forward; and
* **line justification**: consistency-process the J-frontier (lines
  holding required values not yet implied by their gate inputs) by
  choosing singular-cover rows.

Implication runs to a fixpoint in the five-valued calculus with both
forward evaluation and backward unique implications; any conflict
backtracks the most recent choice.  This is the algorithm the paper
names as becoming "again viable" once scan reduces the network to
combinational logic (§IV-A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..netlist.gates import CONTROLLING_VALUE, GateType, evaluate
from ..faults.stuck_at import Fault
from ..faultsim.expand import expand_branches, fault_site_net
from .podem import PodemResult


class DAlgorithm:
    """Recursive D-algorithm over the branch-expanded circuit."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 20000) -> None:
        self.circuit = circuit
        self.expanded, self._branch_map = expand_branches(circuit)
        self.backtrack_limit = backtrack_limit
        self._order = self.expanded.topological_order()
        self._outputs = set(self.expanded.outputs)
        self._driver = {g.output: g for g in self.expanded.gates}
        self._fanout = {
            net: self.expanded.fanout_of(net) for net in self.expanded.nets()
        }

    def generate(self, fault: Fault) -> PodemResult:
        """Run the D-algorithm for one stuck-at fault."""
        site = fault_site_net(fault, self._branch_map)
        error = V.D if fault.value == 0 else V.DBAR
        good_needed = 1 - fault.value  # good value required at the site

        values: Dict[str, int] = {net: V.X for net in self.expanded.nets()}
        values[site] = error
        self._budget = self.backtrack_limit
        self._decisions = 0
        self._site = site
        # The site's *good* value must be justified through its driver
        # (for a primary-input site the pattern extraction handles it).
        self._site_good = V.ONE if good_needed else V.ZERO

        success = self._recurse(values, site)
        backtracks = self.backtrack_limit - self._budget
        if success is not None:
            pattern = {
                net: _to_bit(success.get(net, V.X))
                for net in self.circuit.inputs
            }
            return PodemResult(fault, pattern, False, False, backtracks, self._decisions)
        aborted = self._budget <= 0
        return PodemResult(fault, None, not aborted, aborted, backtracks, self._decisions)

    # ------------------------------------------------------------------
    def _recurse(self, values: Dict[str, int], site: str) -> Optional[Dict[str, int]]:
        if self._budget <= 0:
            return None
        state = dict(values)
        if not self._imply(state, site):
            self._budget -= 1
            return None
        if any(state[net] in (V.D, V.DBAR) for net in self._outputs):
            return self._justify_all(state, site)
        frontier = self._d_frontier(state)
        if not frontier:
            self._budget -= 1
            return None
        # D-drive: try frontier gates nearest a primary output first.
        frontier.sort(key=lambda g: -self.expanded.level_of(g.output))
        for gate in frontier:
            control = CONTROLLING_VALUE.get(gate.kind)
            trial = dict(state)
            ok = True
            for net in gate.inputs:
                if trial[net] == V.X:
                    if control is None:  # XOR family: pick 0
                        trial[net] = V.ZERO
                    else:
                        trial[net] = V.ONE if control == 0 else V.ZERO
            self._decisions += 1
            result = self._recurse(trial, site)
            if result is not None:
                return result
            if self._budget <= 0:
                return None
        return None

    # ------------------------------------------------------------------
    def _justify_all(self, values: Dict[str, int], site: str) -> Optional[Dict[str, int]]:
        """Resolve the J-frontier once an error reaches an output."""
        if self._budget <= 0:
            return None
        state = dict(values)
        if not self._imply(state, site):
            self._budget -= 1
            return None
        if not any(state[net] in (V.D, V.DBAR) for net in self._outputs):
            self._budget -= 1
            return None
        unjustified = self._j_frontier(state)
        if not unjustified:
            return state
        gate = unjustified[0]
        target = state[gate.output]
        if gate.output == self._site:
            target = self._site_good  # justify the good-machine value
        for row in self._singular_rows(gate, target, state):
            trial = dict(state)
            conflict = False
            for net, value in row.items():
                if trial[net] == V.X:
                    trial[net] = value
                elif trial[net] != value:
                    conflict = True
                    break
            if conflict:
                continue
            self._decisions += 1
            result = self._justify_all(trial, site)
            if result is not None:
                return result
            if self._budget <= 0:
                return None
        self._budget -= 1
        return None

    # ------------------------------------------------------------------
    def _imply(self, values: Dict[str, int], site: str) -> bool:
        """Five-valued fixpoint of forward/backward implications."""
        changed = True
        while changed:
            changed = False
            for gate in self._order:
                out_net = gate.output
                current = values[out_net]
                inputs = tuple(values[n] for n in gate.inputs)
                forward = evaluate(gate.kind, inputs)
                if out_net == site:
                    # Site carries the error (or X until activated):
                    # forward value constrains the *good* component.
                    site_val = values[site]
                    if site_val in (V.D, V.DBAR):
                        needed_good = V.ONE if site_val == V.D else V.ZERO
                        if forward not in (V.X, needed_good):
                            return False
                        continue
                    continue
                if forward == V.X:
                    # Backward: unique implications from a known output.
                    if current != V.X:
                        if not self._backward(gate, current, values):
                            return False
                    continue
                if current == V.X:
                    values[out_net] = forward
                    changed = True
                elif current != forward:
                    return False
        return True

    def _backward(self, gate, out_value: int, values: Dict[str, int]) -> bool:
        """Propagate unique backward implications; False on conflict."""
        kind = gate.kind
        if kind in (GateType.NOT, GateType.BUF):
            needed = V.v_not(out_value) if kind is GateType.NOT else out_value
            current = values[gate.inputs[0]]
            if current == V.X:
                values[gate.inputs[0]] = needed
                return True
            return current == needed or needed == V.X
        control = CONTROLLING_VALUE.get(kind)
        if control is None:
            return True  # XOR family: no unique implication in general
        inversion = 1 if kind in (GateType.NAND, GateType.NOR) else 0
        # Output at the non-controlled value forces ALL inputs
        # non-controlling.
        non_controlled_output = V.ONE if (1 - control) ^ inversion else V.ZERO
        if out_value == non_controlled_output:
            needed = V.ONE if 1 - control else V.ZERO
            for net in gate.inputs:
                if values[net] == V.X:
                    values[net] = needed
                elif values[net] not in (needed, V.D, V.DBAR):
                    return False
            return True
        # Output controlled with exactly one X input and all others
        # non-controlling: that input must be controlling.
        controlled_output = V.ONE if control ^ inversion else V.ZERO
        if out_value == controlled_output:
            non_control_value = V.ONE if 1 - control else V.ZERO
            x_nets = [n for n in gate.inputs if values[n] == V.X]
            others_noncontrolling = all(
                values[n] == non_control_value
                for n in gate.inputs
                if values[n] != V.X
            )
            if len(x_nets) == 1 and others_noncontrolling:
                values[x_nets[0]] = V.ONE if control else V.ZERO
        return True

    # ------------------------------------------------------------------
    def _d_frontier(self, values: Dict[str, int]) -> List:
        frontier = []
        for gate in self._order:
            if values[gate.output] != V.X:
                continue
            if any(values[n] in (V.D, V.DBAR) for n in gate.inputs):
                frontier.append(gate)
        return frontier

    def _j_frontier(self, values: Dict[str, int]) -> List:
        """Gates whose assigned output is not yet implied by inputs."""
        unjustified = []
        for gate in self._order:
            out_value = values[gate.output]
            if out_value == V.X:
                continue
            if out_value in (V.D, V.DBAR):
                # Only the fault site legitimately carries an error whose
                # good value still needs justification through its driver.
                if gate.output != self._site:
                    continue
            forward = evaluate(gate.kind, tuple(values[n] for n in gate.inputs))
            if forward == V.X:
                unjustified.append(gate)
        return unjustified

    def _singular_rows(
        self, gate, target: int, values: Dict[str, int]
    ) -> List[Dict[str, int]]:
        """Minimal input assignments making the gate output ``target``."""
        kind = gate.kind
        rows: List[Dict[str, int]] = []
        control = CONTROLLING_VALUE.get(kind)
        if control is not None:
            inversion = 1 if kind in (GateType.NAND, GateType.NOR) else 0
            controlled_output = V.ONE if control ^ inversion else V.ZERO
            control_value = V.ONE if control else V.ZERO
            non_control_value = V.ONE if 1 - control else V.ZERO
            if target == controlled_output:
                for net in gate.inputs:
                    rows.append({net: control_value})
            else:
                rows.append({net: non_control_value for net in gate.inputs})
            return rows
        if kind in (GateType.NOT, GateType.BUF):
            needed = V.v_not(target) if kind is GateType.NOT else target
            return [{gate.inputs[0]: needed}]
        if kind in (GateType.XOR, GateType.XNOR):
            want = target
            if kind is GateType.XNOR:
                want = V.v_not(target)
            want_bit = 1 if want == V.ONE else 0
            free = [n for n in gate.inputs if values[n] == V.X]
            fixed_parity = 0
            usable = True
            for n in gate.inputs:
                if values[n] == V.ONE:
                    fixed_parity ^= 1
                elif values[n] in (V.D, V.DBAR):
                    usable = False
            if not usable or not free:
                return []
            for bits in itertools.product((0, 1), repeat=len(free)):
                if (sum(bits) + fixed_parity) % 2 == want_bit:
                    rows.append(
                        {
                            net: (V.ONE if bit else V.ZERO)
                            for net, bit in zip(free, bits)
                        }
                    )
            return rows
        return []


def _to_bit(value: int) -> Optional[int]:
    if value == V.ONE:
        return 1
    if value == V.ZERO:
        return 0
    if value == V.D:
        return 1  # good-machine component
    if value == V.DBAR:
        return 0
    return None
