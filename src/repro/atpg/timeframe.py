"""Sequential ATPG by time-frame expansion (§I-B's hard problem).

The paper's Eq. (1) discussion notes its cost model "does not take into
account the falloff in automatic test generation capability due to
sequential complexity of the network" — sequential ATPG is the problem
structured DFT exists to *remove*.  This module implements the
classical attack so the removal can be measured:

* :func:`unroll` replicates the combinational logic ``k`` times,
  wiring frame ``t``'s flip-flop data into frame ``t+1``'s state
  inputs; frame 0's state inputs are **frozen** (the power-up state is
  unknowable), so any test found is valid from any initial state;
* :class:`TimeFrameAtpg` replicates the target fault into every frame
  (one physical defect exists in all of them) and runs the multi-site
  PODEM over the unrolled array, returning an input *sequence*;
* every sequence is verified by the sequential fault simulator before
  being reported.

The expected phenomenology — exploding effort, aborts, and faults that
need many frames — is exactly what the benchmarks show, and what scan
design makes disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faults.collapse import collapse_faults
from ..faultsim.sequential import SequentialFaultSimulator
from ..faultsim.coverage import CoverageReport
from .podem import PodemGenerator

Pattern = Dict[str, int]


def frame_net(net: str, frame: int) -> str:
    """Name of a circuit net's copy in time frame ``frame``."""
    return f"{net}@{frame}"


def unroll(circuit: Circuit, frames: int) -> Tuple[Circuit, List[str]]:
    """Unroll a sequential circuit into ``frames`` combinational copies.

    Returns ``(unrolled, frozen_inputs)``: the unrolled netlist has
    primary inputs ``<pi>@t`` for every frame, plus the frame-0 state
    inputs ``<q>@0`` listed in ``frozen_inputs`` (unknowable power-up
    values).  Primary outputs are every frame's POs.
    """
    if frames < 1:
        raise ValueError("need at least one time frame")
    if circuit.is_combinational:
        raise NetlistError("unrolling is for sequential circuits")
    flops = circuit.flip_flops
    unrolled = Circuit(f"{circuit.name}_x{frames}")
    frozen: List[str] = []
    for flop in flops:
        net = frame_net(flop.output, 0)
        unrolled.add_input(net)
        frozen.append(net)
    for frame in range(frames):
        for pi in circuit.inputs:
            unrolled.add_input(frame_net(pi, frame))
    for frame in range(frames):
        for gate in circuit.topological_order():
            unrolled.add_gate(
                gate.kind,
                [frame_net(n, frame) for n in gate.inputs],
                frame_net(gate.output, frame),
                frame_net(gate.name, frame),
            )
        if frame + 1 < frames:
            # Next frame's state is this frame's flip-flop data.
            for flop in flops:
                unrolled.buf(
                    frame_net(flop.inputs[0], frame),
                    frame_net(flop.output, frame + 1),
                    name=frame_net(flop.name, frame),
                )
    for frame in range(frames):
        for po in circuit.outputs:
            unrolled.add_output(frame_net(po, frame))
    unrolled.validate()
    return unrolled, frozen


@dataclass
class SequentialTest:
    """A verified input sequence detecting one fault."""

    fault: Fault
    sequence: List[Pattern]
    frames_used: int


@dataclass
class SequentialAtpgResult:
    """Outcome over a fault list."""

    circuit_name: str
    tests: List[SequentialTest]
    not_found: List[Fault]  # search exhausted within the frame budget
    aborted: List[Fault]    # backtrack budget hit or unsound cube
    max_frames: int
    total_backtracks: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        total = len(self.tests) + len(self.not_found) + len(self.aborted)
        return len(self.tests) / total if total else 1.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name} [time-frame <= {self.max_frames}]: "
            f"{len(self.tests)} tested, {len(self.not_found)} not found, "
            f"{len(self.aborted)} aborted "
            f"({self.coverage:.1%}), {self.total_backtracks} backtracks"
        )


class TimeFrameAtpg:
    """Sequential test generator over iteratively deepened unrollings."""

    def __init__(
        self,
        circuit: Circuit,
        max_frames: int = 6,
        backtrack_limit: int = 4000,
    ) -> None:
        self.circuit = circuit
        self.max_frames = max_frames
        self.backtrack_limit = backtrack_limit
        self._engines: Dict[int, Tuple[PodemGenerator, List[str]]] = {}

    def _engine(self, frames: int) -> Tuple[PodemGenerator, List[str]]:
        cached = self._engines.get(frames)
        if cached is None:
            unrolled, frozen = unroll(self.circuit, frames)
            cached = (
                PodemGenerator(unrolled, backtrack_limit=self.backtrack_limit),
                frozen,
            )
            self._engines[frames] = cached
        return cached

    def _frame_fault(self, fault: Fault, frames: int) -> Tuple[Fault, List[str]]:
        """The fault's frame-0 copy plus its replicas in later frames."""
        if fault.gate is None:
            primary = Fault(frame_net(fault.net, 0), fault.value)
        else:
            primary = Fault(
                frame_net(fault.net, 0),
                fault.value,
                gate=frame_net(fault.gate, 0),
                pin=fault.pin,
            )
        # Extra sites: the same stem/branch in frames 1..k-1 (use the
        # expanded-circuit naming via the engine's branch map; stem
        # replicas suffice because branch expansion renames uniformly).
        extras = []
        for frame in range(1, frames):
            if fault.gate is None:
                extras.append(frame_net(fault.net, frame))
            else:
                extras.append(f"{frame_net(fault.gate, frame)}__in{fault.pin}")
        return primary, extras

    def generate(self, fault: Fault, seed: int = 0) -> Optional[SequentialTest]:
        """Iterative deepening: try 1, 2, ... max_frames frames."""
        import random

        rng = random.Random(seed)
        self.last_backtracks = 0
        self.last_aborted = False
        for frames in range(1, self.max_frames + 1):
            engine, frozen = self._engine(frames)
            primary, extras = self._frame_fault(fault, frames)
            # A branch replica only exists if that net fans out in the
            # unrolled netlist; otherwise branch ≡ stem, so the stem
            # copy keeps the replication sound.
            resolved = []
            for frame, site in enumerate(extras, start=1):
                if site in engine.expanded:
                    resolved.append(site)
                else:
                    resolved.append(frame_net(fault.net, frame))
            extras = resolved
            result = engine.generate(
                primary, extra_sites=extras, frozen_inputs=frozen
            )
            self.last_backtracks += result.backtracks
            if result.aborted:
                self.last_aborted = True
            if result.pattern is None:
                continue
            sequence = []
            for frame in range(frames):
                vector = {}
                for pi in self.circuit.inputs:
                    value = result.pattern.get(frame_net(pi, frame))
                    vector[pi] = value if value is not None else rng.randint(0, 1)
                sequence.append(vector)
            if self._verify(fault, sequence):
                return SequentialTest(fault, sequence, frames)
            self.last_aborted = True  # unsound cube: count as abort
        return None

    def _verify(self, fault: Fault, sequence: Sequence[Pattern]) -> bool:
        simulator = SequentialFaultSimulator(self.circuit, faults=[fault])
        report = simulator.run(list(sequence))
        return fault in report.first_detection

    def run(
        self, faults: Optional[Sequence[Fault]] = None, seed: int = 0
    ) -> SequentialAtpgResult:
        """Run and collect the results."""
        if faults is None:
            faults = collapse_faults(self.circuit)
        tests: List[SequentialTest] = []
        not_found: List[Fault] = []
        aborted: List[Fault] = []
        total_backtracks = 0
        for fault in faults:
            test = self.generate(fault, seed=seed)
            total_backtracks += self.last_backtracks
            if test is not None:
                tests.append(test)
            elif self.last_aborted:
                aborted.append(fault)
            else:
                not_found.append(fault)
        return SequentialAtpgResult(
            self.circuit.name,
            tests,
            not_found,
            aborted,
            self.max_frames,
            total_backtracks,
        )
