"""Transition-fault (gross delay) test generation — refs [81], [108].

The survey's reference list includes delay test generation (Hsieh et
al. [81]) and delay test simulation (Storey & Barry [108]): the era's
first recognition that stuck-at tests miss slow gates.  The **gross
delay / transition fault** model makes it tractable:

* a *slow-to-rise* fault on net n behaves, for one cycle, like n
  stuck-at-0 — provided the test first sets n to 0, then launches a
  rising transition;
* dually for *slow-to-fall*.

A transition test is therefore a **pattern pair** (V1, V2): V1 sets
the initial value, V2 is an ordinary stuck-at test for the frozen
value.  On a scan design the pair is applied launch-on-capture style.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faultsim.expand import expand_branches, fault_site_net
from ..faultsim.coverage import CoverageReport
from ..sim.packed import PackedPatternSet, PackedSimulator
from .podem import PodemGenerator
from .random_gen import fill_dont_cares

Pattern = Dict[str, int]


class Edge(enum.Enum):
    """Which transition is slow: rising or falling."""
    RISE = "slow-to-rise"
    FALL = "slow-to-fall"


@dataclass(frozen=True)
class TransitionFault:
    """A gross-delay fault: one net too slow on one edge."""

    net: str
    edge: Edge

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        return f"{self.net}/{self.edge.value}"

    @property
    def initial_value(self) -> int:
        """Value V1 must establish at the site."""
        return 0 if self.edge is Edge.RISE else 1

    @property
    def frozen_value(self) -> int:
        """The stuck-at value the site exhibits during V2."""
        return 0 if self.edge is Edge.RISE else 1


def all_transition_faults(circuit: Circuit) -> List[TransitionFault]:
    """Two transition faults per net (stem-level)."""
    faults = []
    for net in circuit.nets():
        faults.append(TransitionFault(net, Edge.RISE))
        faults.append(TransitionFault(net, Edge.FALL))
    return faults


@dataclass
class TransitionTest:
    """A two-pattern test for one transition fault."""

    fault: TransitionFault
    v1: Pattern
    v2: Pattern


class TransitionTestGenerator:
    """Pattern-pair generation: V2 by PODEM, V1 by justification.

    V2 must detect the site stuck at the frozen value (classic PODEM
    call); V1 must set the site to the initial value (a second PODEM
    objective with no propagation requirement, realized by targeting
    the site as if it were an output).
    """

    def __init__(self, circuit: Circuit, backtrack_limit: int = 10000) -> None:
        if not circuit.is_combinational:
            raise NetlistError("transition ATPG targets the scan core")
        self.circuit = circuit
        self._podem = PodemGenerator(circuit, backtrack_limit)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._sim = PackedSimulator(self.expanded)

    def _justify_value(self, net: str, value: int, seed: int) -> Optional[Pattern]:
        """Find any input pattern putting ``value`` on ``net``.

        Random search first (cheap), falling back to a PODEM run on a
        cone-extracted view with the net exposed as an output.
        """
        rng = random.Random(seed)
        for _ in range(64):
            pattern = {n: rng.randint(0, 1) for n in self.circuit.inputs}
            packed = PackedPatternSet.from_patterns(
                list(self.circuit.inputs), [pattern]
            )
            words = self._sim.run(packed)
            if (words[net] & 1) == value:
                return pattern
        # Deterministic fallback: PODEM for "net stuck at (1-value)" in
        # a view where the net is observable; its pattern sets net=value.
        view = self.circuit.copy(f"{self.circuit.name}__justify")
        if net not in view.outputs:
            view.add_output(net)
        engine = PodemGenerator(view)
        result = engine.generate(Fault(net, 1 - value))
        if result.pattern is None:
            return None
        return fill_dont_cares(result.pattern, self.circuit.inputs, rng)

    def generate(self, fault: TransitionFault, seed: int = 0) -> Optional[TransitionTest]:
        """Build a (V1, V2) pair, or None if untestable."""
        stuck = Fault(fault.net, fault.frozen_value)
        v2_result = self._podem.generate(stuck)
        if v2_result.pattern is None:
            return None
        rng = random.Random(seed)
        v2 = fill_dont_cares(v2_result.pattern, self.circuit.inputs, rng)
        v1 = self._justify_value(fault.net, fault.initial_value, seed)
        if v1 is None:
            return None
        return TransitionTest(fault, v1, v2)


class TransitionFaultSimulator:
    """Two-pattern transition fault simulation.

    A pair (V1, V2) detects a transition fault iff V1 establishes the
    initial value at the site AND V2 detects the corresponding stuck-at
    (the frozen value) at an output.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[TransitionFault]] = None,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError("transition fault simulation is combinational")
        self.circuit = circuit
        self.faults = list(faults) if faults is not None else all_transition_faults(circuit)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._sim = PackedSimulator(self.expanded)

    def detects(self, v1: Pattern, v2: Pattern, fault: TransitionFault) -> bool:
        """Does the (v1, v2) pair detect the transition fault?"""
        packed = PackedPatternSet.from_patterns(
            list(self.circuit.inputs), [v1, v2]
        )
        good = self._sim.run(packed)
        site_word = good[fault.net]
        if (site_word & 1) != fault.initial_value:
            return False  # V1 fails to initialize
        if ((site_word >> 1) & 1) != (1 - fault.frozen_value):
            return False  # V2 launches no transition
        forced = packed.mask if fault.frozen_value else 0
        faulty = self._sim.run(packed, force={fault.net: forced})
        for net in self.circuit.outputs:
            if ((good[net] ^ faulty[net]) >> 1) & 1:
                return True
        return False

    def run(self, pairs: Sequence[Tuple[Pattern, Pattern]]) -> CoverageReport:
        """Coverage of a pair sequence over the transition fault list."""
        stuck_view = [Fault(f.net, f.frozen_value) for f in self.faults]
        report = CoverageReport(
            self.circuit.name, len(pairs), stuck_view
        )
        for index, (v1, v2) in enumerate(pairs):
            for fault, stuck in zip(self.faults, stuck_view):
                if stuck in report.first_detection:
                    continue
                if self.detects(v1, v2, fault):
                    report.first_detection[stuck] = index
        return report


def generate_transition_tests(
    circuit: Circuit,
    faults: Optional[Sequence[TransitionFault]] = None,
    seed: int = 0,
) -> Tuple[List[TransitionTest], List[TransitionFault]]:
    """Pair generation over a fault list; returns (tests, untestable)."""
    generator = TransitionTestGenerator(circuit)
    if faults is None:
        faults = all_transition_faults(circuit)
    tests: List[TransitionTest] = []
    untestable: List[TransitionFault] = []
    for fault in faults:
        test = generator.generate(fault, seed=seed)
        if test is None:
            untestable.append(fault)
        else:
            tests.append(test)
    return tests, untestable
