"""Automatic test pattern generation: PODEM, D-algorithm, random, oracles."""

from .podem import PodemGenerator, PodemResult
from .d_algorithm import DAlgorithm
from .random_gen import (
    random_patterns,
    weighted_random_patterns,
    AdaptiveRandomGenerator,
    exhaustive_patterns,
    fill_dont_cares,
)
from .boolean_difference import (
    detecting_minterms,
    is_redundant,
    boolean_difference,
    minterm_to_pattern,
)
from .compaction import merge_cubes, fill_cubes, reverse_order_compaction
from .api import generate_tests, TestGenerationResult
from .pla_crosspoint import (
    CrosspointKind,
    CrosspointFault,
    CrosspointTestGenerator,
    enumerate_crosspoint_faults,
    apply_crosspoint_fault,
    generate_crosspoint_tests,
)
from .timeframe import (
    unroll,
    frame_net,
    SequentialTest,
    SequentialAtpgResult,
    TimeFrameAtpg,
)
from .delay import (
    Edge,
    TransitionFault,
    TransitionTest,
    TransitionTestGenerator,
    TransitionFaultSimulator,
    all_transition_faults,
    generate_transition_tests,
)

__all__ = [
    "CrosspointKind",
    "CrosspointFault",
    "CrosspointTestGenerator",
    "enumerate_crosspoint_faults",
    "apply_crosspoint_fault",
    "generate_crosspoint_tests",
    "unroll",
    "frame_net",
    "SequentialTest",
    "SequentialAtpgResult",
    "TimeFrameAtpg",
    "Edge",
    "TransitionFault",
    "TransitionTest",
    "TransitionTestGenerator",
    "TransitionFaultSimulator",
    "all_transition_faults",
    "generate_transition_tests",
    "PodemGenerator",
    "PodemResult",
    "DAlgorithm",
    "random_patterns",
    "weighted_random_patterns",
    "AdaptiveRandomGenerator",
    "exhaustive_patterns",
    "fill_dont_cares",
    "detecting_minterms",
    "is_redundant",
    "boolean_difference",
    "minterm_to_pattern",
    "merge_cubes",
    "fill_cubes",
    "reverse_order_compaction",
    "generate_tests",
    "TestGenerationResult",
]
