"""Random, weighted-random, and adaptive-random pattern generation.

These are the paper's references [87], [95], [98]: once scan makes the
network combinational, random patterns become a cheap, surprisingly
effective test source ("combinational logic is highly susceptible to
random patterns", §V-A) — except for high-fan-in structures like PLAs.

* :func:`random_patterns` — uniform patterns.
* :func:`weighted_random_patterns` — per-input 1-probabilities
  (Schnurmann/Lindbloom/Carpenter): biasing rescues some
  random-resistant structures, e.g. a wide AND wants inputs near 1.
* :class:`AdaptiveRandomGenerator` — Parker's adaptive random test
  generation: candidates are drawn in small batches and the candidate
  farthest (Hamming) from the already-applied set is kept, spreading
  patterns over the input space faster than blind sampling.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit

Pattern = Dict[str, int]


def random_patterns(
    circuit: Circuit, count: int, seed: int = 0
) -> List[Pattern]:
    """``count`` uniform random patterns over the primary inputs."""
    rng = random.Random(seed)
    inputs = circuit.inputs
    return [
        {net: rng.randint(0, 1) for net in inputs} for _ in range(count)
    ]


def weighted_random_patterns(
    circuit: Circuit,
    count: int,
    weights: Mapping[str, float],
    seed: int = 0,
) -> List[Pattern]:
    """Random patterns with per-input probabilities of drawing a 1.

    Inputs missing from ``weights`` default to 0.5 (uniform).
    """
    rng = random.Random(seed)
    inputs = circuit.inputs
    patterns = []
    for _ in range(count):
        pattern = {
            net: 1 if rng.random() < weights.get(net, 0.5) else 0
            for net in inputs
        }
        patterns.append(pattern)
    return patterns


class AdaptiveRandomGenerator:
    """Parker's adaptive random generation: maximize spread.

    Each call to :meth:`next_pattern` draws ``candidates`` uniform
    patterns and returns the one maximizing the minimum Hamming
    distance to every previously returned pattern.
    """

    def __init__(
        self, circuit: Circuit, seed: int = 0, candidates: int = 8
    ) -> None:
        self.inputs = list(circuit.inputs)
        self.rng = random.Random(seed)
        self.candidates = candidates
        self.applied: List[Pattern] = []

    def _distance(self, a: Pattern, b: Pattern) -> int:
        return sum(1 for net in self.inputs if a[net] != b[net])

    def next_pattern(self) -> Pattern:
        """Next pattern."""
        best: Optional[Pattern] = None
        best_score = -1
        for _ in range(self.candidates if self.applied else 1):
            candidate = {net: self.rng.randint(0, 1) for net in self.inputs}
            if not self.applied:
                best = candidate
                break
            score = min(self._distance(candidate, p) for p in self.applied)
            if score > best_score:
                best_score = score
                best = candidate
        assert best is not None
        self.applied.append(best)
        return best

    def generate(self, count: int) -> List[Pattern]:
        """Produce the requested number of adaptive patterns."""
        return [self.next_pattern() for _ in range(count)]


def exhaustive_patterns(circuit: Circuit) -> List[Pattern]:
    """All ``2**n`` input patterns (§I-B's complete functional test)."""
    inputs = circuit.inputs
    n = len(inputs)
    if n > 24:
        raise ValueError(
            f"{n} inputs would need {2**n} patterns; the paper's point exactly"
        )
    return [
        {net: (minterm >> position) & 1 for position, net in enumerate(inputs)}
        for minterm in range(1 << n)
    ]


def fill_dont_cares(
    pattern: Mapping[str, Optional[int]],
    inputs: Sequence[str],
    rng: random.Random,
) -> Pattern:
    """Replace ``None`` entries with random bits (test-cube filling)."""
    return {
        net: (pattern.get(net) if pattern.get(net) is not None else rng.randint(0, 1))
        for net in inputs
    }
