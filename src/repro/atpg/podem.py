"""PODEM: Path-Oriented DEcision Making test generation (Goel [80]).

PODEM searches over *primary input* assignments only (unlike the
D-algorithm's internal-line search): repeatedly pick an objective —
activate the fault, then drive a D through the D-frontier — backtrace
the objective to an unassigned primary input, assign, and imply by
five-valued simulation.  Conflicts flip the assignment; double failure
backtracks.  The X-path check prunes branches whose fault effects can
no longer reach a primary output.

Operates on the branch-expanded circuit so every fault is a stem force;
returned patterns are over the original primary inputs (with ``None``
marking don't-cares, ready for random fill or merge compaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..netlist.gates import CONTROLLING_VALUE, GateType, evaluate
from ..faults.stuck_at import Fault
from ..faultsim.expand import expand_branches, fault_site_net


@dataclass
class PodemResult:
    """Outcome for one fault: a test cube, a redundancy proof, or abort."""

    fault: Fault
    pattern: Optional[Dict[str, Optional[int]]]  # None values = don't care
    redundant: bool
    aborted: bool
    backtracks: int
    decisions: int

    @property
    def found(self) -> bool:
        """True when a test pattern was produced."""
        return self.pattern is not None


class PodemGenerator:
    """Reusable PODEM engine for one circuit."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 10000) -> None:
        self.circuit = circuit
        self.expanded, self._branch_map = expand_branches(circuit)
        self.backtrack_limit = backtrack_limit
        self._order = self.expanded.topological_order()
        self._inputs = list(self.expanded.inputs)
        self._outputs = list(self.expanded.outputs)
        self._fanout = {
            net: self.expanded.fanout_of(net) for net in self.expanded.nets()
        }
        self._driver = {
            gate.output: gate for gate in self.expanded.gates
        }
        # Level map for X-path distance heuristics.
        self._level = {net: self.expanded.level_of(net) for net in self.expanded.nets()}

    # ------------------------------------------------------------------
    def generate(
        self,
        fault: Fault,
        extra_sites: Optional[Sequence[str]] = None,
        frozen_inputs: Optional[Sequence[str]] = None,
    ) -> PodemResult:
        """Run PODEM for one stuck-at fault.

        ``extra_sites`` are additional nets carrying the *same* fault
        (time-frame expansion replicates a physical fault into every
        frame).  ``frozen_inputs`` are primary inputs the search may
        not assign (e.g. unknowable initial-state nets): a test found
        under this restriction is valid for any value they take.
        """
        site = fault_site_net(fault, self._branch_map)
        sites = {site}
        if extra_sites:
            sites.update(extra_sites)
        state = _PodemState(self, site, fault.value, sites, frozen_inputs)
        state.simulate()
        success = self._search(state)
        if success:
            pattern = {
                net: state.assignment.get(net) for net in self.circuit.inputs
            }
            return PodemResult(fault, pattern, False, False, state.backtracks, state.decisions)
        aborted = state.backtracks >= self.backtrack_limit
        return PodemResult(fault, None, not aborted, aborted, state.backtracks, state.decisions)

    # ------------------------------------------------------------------
    def _search(self, state: "_PodemState") -> bool:
        if state.test_found():
            return True
        if state.backtracks >= self.backtrack_limit:
            return False
        if not state.possible():
            return False
        objective = state.objective()
        if objective is None:
            return False
        traced = state.backtrace(*objective)
        if traced is None:
            return False
        pi, value = traced
        for attempt, try_value in enumerate((value, _flip(value))):
            state.decisions += 1
            state.assignment[pi] = try_value
            state.simulate()
            if self._search(state):
                return True
            if attempt == 0:
                state.backtracks += 1
                if state.backtracks >= self.backtrack_limit:
                    break
        del state.assignment[pi]
        state.simulate()
        return False


def _flip(value: int) -> int:
    return 1 - value


class _PodemState:
    """Mutable search state: PI assignment plus implied net values."""

    def __init__(
        self,
        generator: PodemGenerator,
        site: str,
        stuck_value: int,
        sites: Optional[Set[str]] = None,
        frozen_inputs: Optional[Sequence[str]] = None,
    ) -> None:
        self.gen = generator
        self.site = site
        self.sites = sites if sites is not None else {site}
        self.stuck_value = stuck_value
        self.frozen = frozenset(frozen_inputs or ())
        self.assignment: Dict[str, int] = {}
        self.values: Dict[str, int] = {}
        self.backtracks = 0
        self.decisions = 0
        self._assignable = self._assignable_support()

    def _assignable_support(self) -> Set[str]:
        """Nets whose cone contains at least one non-frozen PI.

        Backtrace must never descend into a cone it can't assign; with
        no frozen inputs every net qualifies (cheap common case).
        """
        if not self.frozen:
            return set(self.gen.expanded.nets())
        assignable: Set[str] = {
            net for net in self.gen._inputs if net not in self.frozen
        }
        for gate in self.gen._order:
            if any(n in assignable for n in gate.inputs):
                assignable.add(gate.output)
        return assignable

    # -- five-valued simulation with the fault site(s) transformed -------
    def simulate(self) -> None:
        """Five-valued implication pass from the current assignment."""
        values: Dict[str, int] = {}
        for net in self.gen._inputs:
            assigned = (
                None if net in self.frozen else self.assignment.get(net)
            )
            value = V.X if assigned is None else (V.ONE if assigned else V.ZERO)
            if net in self.sites:
                value = self._faultify(value)
            values[net] = value
        for gate in self.gen._order:
            value = evaluate(gate.kind, tuple(values[n] for n in gate.inputs))
            if gate.output in self.sites:
                value = self._faultify(value)
            values[gate.output] = value
        self.values = values

    def _faultify(self, good: int) -> int:
        if good == V.X:
            return V.X
        if self.stuck_value == 0:
            if good == V.ONE:
                return V.D
            if good == V.DBAR:  # good 0, faulty forced 0 anyway
                return V.ZERO
            return good  # ZERO or D: faulty component already 0
        # stuck-at-1
        if good == V.ZERO:
            return V.DBAR
        if good == V.D:  # good 1, faulty forced 1
            return V.ONE
        return good

    # -- status checks ---------------------------------------------------
    def test_found(self) -> bool:
        """Test found."""
        return any(
            self.values[net] in (V.D, V.DBAR) for net in self.gen._outputs
        )

    def d_frontier(self) -> List:
        """D frontier."""
        frontier = []
        for gate in self.gen._order:
            if self.values[gate.output] != V.X:
                continue
            if any(self.values[n] in (V.D, V.DBAR) for n in gate.inputs):
                frontier.append(gate)
        return frontier

    def possible(self) -> bool:
        """Activation still achievable and an X-path to a PO exists."""
        site_values = [self.values[s] for s in self.sites]
        if any(v in (V.D, V.DBAR) for v in site_values):
            # Activated: a fault effect must have an X-path (or already be
            # at a PO, handled by test_found before this call).
            return self._xpath_exists()
        if any(v == V.X for v in site_values):
            return True  # activation still open at some site
        return False  # every site pinned: activation impossible

    def _xpath_exists(self) -> bool:
        """Some net carrying D/D' reaches a PO through X-valued nets."""
        sources = [
            net for net, value in self.values.items() if value in (V.D, V.DBAR)
        ]
        seen: Set[str] = set()
        stack = list(sources)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            value = self.values[net]
            if value not in (V.D, V.DBAR, V.X):
                continue
            if net in self.gen._outputs and value in (V.D, V.DBAR, V.X):
                return True
            for gate in self.gen._fanout.get(net, ()):
                if self.values[gate.output] in (V.X, V.D, V.DBAR):
                    stack.append(gate.output)
        return False

    # -- objective / backtrace (Goel's heuristics, simplified) -----------
    def objective(self) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal: activate the fault, then drive the D-frontier."""
        if not any(self.values[s] in (V.D, V.DBAR) for s in self.sites):
            # Objective 1: activate the fault at some still-open site.
            # Frozen sites (unknowable initial-state inputs) cannot be
            # driven — skip them in favour of later-frame replicas.
            for site in sorted(self.sites, key=lambda s: self.gen._level.get(s, 0)):
                if (
                    self.values[site] == V.X
                    and site not in self.frozen
                    and site in self._assignable
                ):
                    return site, 1 - self.stuck_value
            return None
        frontier = self.d_frontier()
        if not frontier:
            return None
        # Prefer the frontier gate closest to a PO (deepest level).
        gate = max(frontier, key=lambda g: self.gen._level[g.output])
        control = CONTROLLING_VALUE.get(gate.kind)
        for net in gate.inputs:
            if self.values[net] == V.X and net in self._assignable:
                if control is None:
                    # XOR-family: any defined value sensitizes.
                    return net, 0
                return net, 1 - control
        return None

    def backtrace(self, net: str, value: int) -> Optional[Tuple[str, int]]:
        """Walk the objective back to an unassigned primary input.

        Returns ``None`` when the trace dead-ends in a constant
        generator (the objective is structurally unreachable).
        """
        current, target = net, value
        while True:
            driver = self.gen._driver.get(current)
            if driver is None:
                if current in self.frozen:
                    return None  # unknowable input: objective unreachable here
                return current, target
            kind = driver.kind
            inversion = 1 if kind in (
                GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR
            ) else 0
            needed = target ^ inversion
            x_inputs = [
                n
                for n in driver.inputs
                if self.values[n] == V.X and n in self._assignable
            ]
            if not x_inputs:
                return None  # only frozen-rooted X's remain: dead end
            if kind in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
                control = CONTROLLING_VALUE[kind]
                if needed == control:
                    # One controlling input suffices: pick the easiest
                    # (shallowest) X input.
                    chosen = min(x_inputs, key=lambda n: self.gen._level[n])
                    current, target = chosen, control
                else:
                    # All inputs must be non-controlling: hardest first.
                    chosen = max(x_inputs, key=lambda n: self.gen._level[n])
                    current, target = chosen, 1 - control
            elif kind in (GateType.NOT, GateType.BUF):
                current, target = driver.inputs[0], needed
            elif kind in (GateType.XOR, GateType.XNOR):
                # Choose any X input; required value depends on the other
                # (possibly X) inputs — aim for parity assuming X's -> 0.
                chosen = x_inputs[0]
                parity = 0
                skipped = False
                for n in driver.inputs:
                    if n == chosen and not skipped:
                        skipped = True
                        continue
                    if self.values[n] == V.ONE:
                        parity ^= 1
                current, target = chosen, needed ^ parity
            else:  # CONST gates: objective unreachable
                return None
