"""PLA crosspoint fault testing (Muehldorf & Williams [84]).

A PLA's physical defects are **crosspoints**, not gate pins: a
programmed device in the AND/OR plane can be missing, or an
unprogrammed site can short.  Four fault types result:

* **growth** (missing AND crosspoint) — a product term loses a literal
  and covers more of the input space;
* **shrinkage** (extra AND crosspoint) — a term gains a literal;
* **disappearance** (missing OR crosspoint) — a term drops from an
  output's sum;
* **appearance** (extra OR crosspoint) — a term joins an output it
  never fed.

Reference [84]'s point is that ordinary stuck-at patterns do not cover
these; this module enumerates the crosspoint universe, builds exact
faulty machines, generates one test per detectable fault via the
packed exhaustive oracle, and measures how badly a stuck-at test set
undershoots (regenerated in the benchmarks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.pla import Pla, ProductTerm
from ..netlist.circuit import NetlistError
from ..sim.packed import PackedPatternSet, PackedSimulator

Pattern = Mapping[str, int]

MAX_PLA_INPUTS = 20


class CrosspointKind(enum.Enum):
    """CrosspointKind: see the module docstring for context."""
    GROWTH = "growth"              # missing AND device: literal lost
    SHRINKAGE = "shrinkage"        # extra AND device: literal gained
    DISAPPEARANCE = "disappearance"  # missing OR device: term lost
    APPEARANCE = "appearance"      # extra OR device: term gained


@dataclass(frozen=True)
class CrosspointFault:
    """One crosspoint defect.

    ``term`` indexes the product term.  For AND-plane faults ``inp``
    is the input column and ``polarity`` the literal involved; for
    OR-plane faults ``output`` is the affected output.
    """

    kind: CrosspointKind
    term: int
    inp: Optional[int] = None
    polarity: Optional[int] = None
    output: Optional[int] = None

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        if self.kind in (CrosspointKind.GROWTH, CrosspointKind.SHRINKAGE):
            literal = f"I{self.inp}" if self.polarity else f"~I{self.inp}"
            return f"{self.kind.value}(P{self.term}, {literal})"
        return f"{self.kind.value}(P{self.term}, O{self.output})"


def enumerate_crosspoint_faults(pla: Pla) -> List[CrosspointFault]:
    """The complete single-crosspoint fault universe."""
    faults: List[CrosspointFault] = []
    for t_index, term in enumerate(pla.terms):
        programmed = dict(term.literals)
        for inp, polarity in term.literals:
            faults.append(
                CrosspointFault(CrosspointKind.GROWTH, t_index, inp, polarity)
            )
        for inp in range(pla.num_inputs):
            if inp in programmed:
                continue
            for polarity in (0, 1):
                faults.append(
                    CrosspointFault(
                        CrosspointKind.SHRINKAGE, t_index, inp, polarity
                    )
                )
    for o_index, term_indices in enumerate(pla.outputs):
        connected = set(term_indices)
        for t_index in range(len(pla.terms)):
            if t_index in connected:
                faults.append(
                    CrosspointFault(
                        CrosspointKind.DISAPPEARANCE, t_index, output=o_index
                    )
                )
            else:
                faults.append(
                    CrosspointFault(
                        CrosspointKind.APPEARANCE, t_index, output=o_index
                    )
                )
    return faults


def apply_crosspoint_fault(pla: Pla, fault: CrosspointFault) -> Pla:
    """Build the faulty PLA."""
    faulty = Pla(f"{pla.name}+{fault.name}", pla.num_inputs)
    for t_index, term in enumerate(pla.terms):
        literals = dict(term.literals)
        if t_index == fault.term:
            if fault.kind is CrosspointKind.GROWTH:
                literals.pop(fault.inp, None)
            elif fault.kind is CrosspointKind.SHRINKAGE:
                literals[fault.inp] = fault.polarity
        faulty.terms.append(ProductTerm.from_dict(literals))
    for o_index, term_indices in enumerate(pla.outputs):
        indices = list(term_indices)
        if fault.output == o_index:
            if fault.kind is CrosspointKind.DISAPPEARANCE:
                indices = [i for i in indices if i != fault.term]
            elif fault.kind is CrosspointKind.APPEARANCE:
                indices.append(fault.term)
        faulty.outputs.append(indices)
    return faulty


class CrosspointTestGenerator:
    """Exact crosspoint test generation via packed exhaustive compare."""

    def __init__(self, pla: Pla) -> None:
        if pla.num_inputs > MAX_PLA_INPUTS:
            raise NetlistError(
                f"{pla.num_inputs} inputs exceed the exhaustive limit"
            )
        self.pla = pla
        self.circuit = pla.to_circuit()
        self._sim = PackedSimulator(self.circuit)
        self._packed = PackedPatternSet.exhaustive(list(self.circuit.inputs))
        self._good = self._sim.run(self._packed)

    def _difference_word(self, fault: CrosspointFault) -> int:
        faulty_pla = apply_crosspoint_fault(self.pla, fault)
        faulty_circuit = faulty_pla.to_circuit()
        # Output names O* match between good and faulty lowerings; the
        # faulty circuit may have different internal structure.
        sim = PackedSimulator(faulty_circuit)
        packed = PackedPatternSet.exhaustive(list(faulty_circuit.inputs))
        faulty = sim.run(packed)
        difference = 0
        for net in self.circuit.outputs:
            difference |= (self._good[net] ^ faulty[net]) & self._packed.mask
        return difference

    def generate(self, fault: CrosspointFault) -> Optional[Dict[str, int]]:
        """One detecting pattern, or None when the fault is redundant."""
        difference = self._difference_word(fault)
        if not difference:
            return None
        minterm = (difference & -difference).bit_length() - 1
        return {
            net: (minterm >> position) & 1
            for position, net in enumerate(self.circuit.inputs)
        }

    def detects(self, pattern: Pattern, fault: CrosspointFault) -> bool:
        """Does the pattern expose this crosspoint fault?"""
        minterm = sum(
            (pattern.get(net, 0) & 1) << position
            for position, net in enumerate(self.circuit.inputs)
        )
        return bool((self._difference_word(fault) >> minterm) & 1)

    def run(
        self,
        patterns: Sequence[Pattern],
        faults: Optional[Sequence[CrosspointFault]] = None,
    ) -> Tuple[List[CrosspointFault], List[CrosspointFault], List[CrosspointFault]]:
        """(detected, missed, redundant) for a pattern set."""
        if faults is None:
            faults = enumerate_crosspoint_faults(self.pla)
        minterms = {
            sum(
                (pattern.get(net, 0) & 1) << position
                for position, net in enumerate(self.circuit.inputs)
            )
            for pattern in patterns
        }
        detected: List[CrosspointFault] = []
        missed: List[CrosspointFault] = []
        redundant: List[CrosspointFault] = []
        for fault in faults:
            difference = self._difference_word(fault)
            if not difference:
                redundant.append(fault)
            elif any((difference >> m) & 1 for m in minterms):
                detected.append(fault)
            else:
                missed.append(fault)
        return detected, missed, redundant


def generate_crosspoint_tests(
    pla: Pla,
) -> Tuple[List[Dict[str, int]], List[CrosspointFault]]:
    """A compacted test set covering every detectable crosspoint fault.

    Greedy covering over the exact detection sets; returns
    (patterns, redundant faults).
    """
    generator = CrosspointTestGenerator(pla)
    faults = enumerate_crosspoint_faults(pla)
    words: Dict[CrosspointFault, int] = {}
    redundant: List[CrosspointFault] = []
    for fault in faults:
        word = generator._difference_word(fault)
        if word:
            words[fault] = word
        else:
            redundant.append(fault)
    patterns: List[Dict[str, int]] = []
    remaining = dict(words)
    inputs = list(generator.circuit.inputs)
    while remaining:
        # Pick the minterm covering the most remaining faults; sample up
        # to 32 candidate minterms per fault (growth faults can have
        # exponentially many detecting patterns).
        counts: Dict[int, int] = {}
        for word in remaining.values():
            w = word
            for _ in range(32):
                if not w:
                    break
                low = (w & -w).bit_length() - 1
                counts[low] = counts.get(low, 0) + 1
                w &= w - 1
        candidates = list(counts)
        best = max(
            candidates,
            key=lambda m: sum(
                1 for word in remaining.values() if (word >> m) & 1
            ),
        )
        patterns.append(
            {net: (best >> i) & 1 for i, net in enumerate(inputs)}
        )
        remaining = {
            fault: word
            for fault, word in remaining.items()
            if not (word >> best) & 1
        }
    return patterns, redundant
