"""Top-level deterministic test-generation flow.

The classic mixed flow the mainframe CAD systems of the paper's era ran
(Bottorff et al. [78]):

1. optional random-pattern *phase 1* mops up the easy faults cheaply;
2. a deterministic engine (PODEM or the D-algorithm) targets each
   remaining collapsed fault, with fault dropping after every pattern;
3. don't-care merge compaction and random fill (plus opt-in
   reverse-order compaction);
4. a final fault-simulation pass produces the signed-off coverage.

Every emitted pattern is verified by fault simulation before being
trusted — an engine bug can therefore lower coverage but never inflate
the report.  Crucially, the pattern that is *verified* (and used for
fault dropping) is the very pattern that *ships*: each test cube is
random-filled over all primary inputs exactly once, and that fully
specified pattern feeds ``detects``, ``detected_faults``, and the
emitted test set alike.

Every run also emits a :class:`repro.telemetry.RunManifest` — seed,
engine, method, limits, per-phase spans (random phase, deterministic
loop, compaction, repair rounds), and effort counters (backtracks,
decisions, aborts, fault drops) — attached to the returned
:class:`TestGenerationResult` and dumpable as JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import telemetry
from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..faults.models import FaultModelPlan, plan_fault_model
from ..faultsim.coverage import CoverageReport
from .podem import PodemGenerator, PodemResult
from .d_algorithm import DAlgorithm
from .random_gen import random_patterns
from .compaction import merge_cubes, fill_cubes, reverse_order_compaction

Pattern = Dict[str, int]


@dataclass
class TestGenerationResult:
    """Everything a test-floor hand-off needs."""

    circuit_name: str
    method: str
    patterns: List[Pattern]
    report: CoverageReport
    redundant: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)
    total_backtracks: int = 0
    random_phase_patterns: int = 0
    manifest: Optional[telemetry.RunManifest] = None
    fault_model_plan: Optional[FaultModelPlan] = None

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.report.coverage

    @property
    def testable_coverage(self) -> float:
        """Coverage over the non-redundant faults only."""
        testable = len(self.report.faults) - len(self.redundant)
        if testable <= 0:
            return 1.0
        return len(self.report.first_detection) / testable

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name} [{self.method}]: {len(self.patterns)} patterns, "
            f"coverage {self.coverage:.1%} "
            f"({self.testable_coverage:.1%} of testable), "
            f"{len(self.redundant)} redundant, {len(self.aborted)} aborted"
        )


def _fill_pattern(
    cube: Dict[str, Optional[int]], inputs: Sequence[str], rng: random.Random
) -> Pattern:
    """Random-fill one cube over *all* primary inputs.

    This is the single fill point of the flow: the returned pattern is
    both verified/fault-dropped and shipped, so missing cube keys can
    never make the verified pattern diverge from the emitted one.
    """
    return {
        net: (value if value is not None else rng.randint(0, 1))
        for net, value in ((n, cube.get(n)) for n in inputs)
    }


def generate_tests(
    circuit: Circuit,
    method: str = "podem",
    faults: Optional[Sequence[Fault]] = None,
    random_phase: int = 32,
    backtrack_limit: int = 10000,
    compact: bool = True,
    reverse_compact: bool = False,
    seed: int = 0,
    engine: str = "parallel_pattern",
    workers: int = 1,
    supervision: Optional["SupervisionPolicy"] = None,
    failure_policy: str = "raise",
    chaos: Optional["ChaosConfig"] = None,
    fault_model: str = "stuck_at",
    backend: Optional[Any] = None,
) -> TestGenerationResult:
    """Run the full deterministic ATPG flow on a combinational circuit.

    ``method`` is ``"podem"`` or ``"dalg"``.  ``random_phase`` patterns
    of uniform random stimulus run first (0 disables).  Returns fully
    specified patterns plus the verified coverage report; the
    :attr:`TestGenerationResult.manifest` carries the run's telemetry.

    ``engine`` selects the fault-simulation engine used for pattern
    verification and fault grading (see :class:`repro.faultsim.Engine`);
    the default is the compiled parallel-pattern engine.
    ``reverse_compact`` opts into a final reverse-order compaction pass
    through the same engine.

    ``workers > 1`` runs every full fault-simulation pass (random-phase
    grading, repair-round re-grading, final sign-off) sharded across
    that many worker processes via
    :class:`repro.faultsim.sharded.ShardedFaultSimulator`.  Results are
    bit-identical to ``workers=1``; the manifest grows a ``workers``
    section with per-shard timings and counters.  ``backend`` picks the
    :mod:`repro.exec` execution backend for the pool (``"inline"`` /
    ``"fork"`` / ``"spawn"`` / ``"thread-lane"`` or an
    :class:`~repro.exec.ExecutorBackend`; default auto-selects fork
    where available, else spawn), recorded in the manifest's
    ``workers.backend``.

    ``supervision``/``failure_policy``/``chaos`` configure the sharded
    executor's fault tolerance (see :mod:`repro.resilience`): worker
    crashes, hangs and raised exceptions are retried with backoff and
    healed by in-process fallback; only a shard that fails
    deterministically is handled per ``failure_policy``, and any
    resulting quarantine/degradation is reported in the manifest's
    validated ``failures`` section.

    ``fault_model`` selects the fault model (``"stuck_at"``,
    ``"bridging"``, ``"cmos_stuck_open"``, ``"transition"``; see
    :class:`repro.faults.FaultModel`).  Non-stuck-at models reduce to a
    composite circuit plus an ordinary stuck-at fault list
    (:func:`repro.faults.plan_fault_model`), so the whole flow —
    PODEM/D-alg, every simulation engine, sharding, compaction — runs
    unchanged over the composite; for two-frame models each emitted
    pattern assigns the composite inputs ``"{net}@1"``/``"{net}@2"``
    (one pattern = one ordered vector pair).  ``faults``, when given,
    must then be model-typed faults.  The manifest records the
    reduction in its validated ``fault_model`` section, and the result
    carries the full :class:`repro.faults.FaultModelPlan` as
    ``fault_model_plan``.
    """
    from ..faultsim import ShardedFaultSimulator, create_simulator

    if method not in ("podem", "dalg"):
        raise ValueError(f"unknown ATPG method {method!r}")
    # Resolve the model once; downstream everything works on the plan's
    # (possibly composite) circuit and plain stuck-at fault list, so the
    # sharded/engine paths below stay model-agnostic and cannot
    # double-reduce.
    plan = plan_fault_model(circuit, fault_model, faults=faults, seed=seed)
    work = plan.circuit
    fault_list = list(plan.faults)
    sharded: Optional[ShardedFaultSimulator] = None
    if workers and workers > 1:
        sharded = ShardedFaultSimulator(
            work,
            engine,
            faults=fault_list,
            workers=workers,
            supervision=supervision,
            failure_policy=failure_policy,
            chaos=chaos,
            backend=backend,
        )
        simulator = sharded
    else:
        simulator = create_simulator(work, engine, faults=fault_list)
    engine_name = getattr(engine, "value", engine)
    rng = random.Random(seed)
    inputs = work.inputs

    accepted: List[Pattern] = []
    cubes: List[Dict[str, Optional[int]]] = []
    verified: List[Pattern] = []
    redundant: List[Fault] = []
    aborted: List[Fault] = []
    total_backtracks = 0
    random_used = 0

    with telemetry.capture() as session:
        with telemetry.span(
            "atpg.generate_tests",
            circuit=circuit.name,
            method=method,
            engine=str(engine_name),
        ):
            undetected = list(fault_list)
            with telemetry.span("atpg.phase.random"):
                if random_phase:
                    candidates = random_patterns(work, random_phase, seed=seed)
                    phase_report = simulator.run(candidates)
                    # Keep only useful random patterns, in first-detection order.
                    useful_indices = sorted(
                        {index for index in phase_report.first_detection.values()}
                    )
                    for index in useful_indices:
                        accepted.append(candidates[index])
                    random_used = len(useful_indices)
                    detected = set(phase_report.first_detection)
                    undetected = [f for f in undetected if f not in detected]
                    telemetry.incr("atpg.random.patterns", len(candidates))
                    telemetry.incr("atpg.random.kept", random_used)
                    telemetry.incr("atpg.random.faults_detected", len(detected))

            generator = (
                PodemGenerator(work, backtrack_limit=backtrack_limit)
                if method == "podem"
                else DAlgorithm(work, backtrack_limit=backtrack_limit)
            )

            with telemetry.span("atpg.phase.deterministic"):
                queue = list(undetected)
                dropped: set = set()
                while queue:
                    fault = queue.pop(0)
                    if fault in dropped:
                        continue
                    telemetry.incr("atpg.targets")
                    result: PodemResult = generator.generate(fault)
                    total_backtracks += result.backtracks
                    telemetry.incr("atpg.backtracks", result.backtracks)
                    telemetry.incr("atpg.decisions", result.decisions)
                    if result.pattern is None:
                        if result.redundant:
                            redundant.append(fault)
                            telemetry.incr("atpg.redundant")
                        else:
                            aborted.append(fault)
                            telemetry.incr("atpg.aborts")
                        continue
                    # One fill over every primary input; this exact pattern
                    # is verified, used for fault dropping, and shipped.
                    filled = _fill_pattern(result.pattern, inputs, rng)
                    if not simulator.detects(filled, fault):
                        # Engine produced an unsound cube: treat as aborted,
                        # never inflate coverage.
                        aborted.append(fault)
                        telemetry.incr("atpg.aborts")
                        telemetry.incr("atpg.unsound_cubes")
                        continue
                    cubes.append({net: result.pattern.get(net) for net in inputs})
                    verified.append(filled)
                    # Fault-drop everything this pattern catches.
                    before = len(dropped)
                    for other in simulator.detected_faults(filled):
                        dropped.add(other)
                    telemetry.incr("atpg.fault_drops", len(dropped) - before)

            with telemetry.span("atpg.phase.compaction"):
                if compact and cubes:
                    telemetry.incr("atpg.compaction.cubes_in", len(cubes))
                    merged = merge_cubes(cubes, inputs)
                    telemetry.incr("atpg.compaction.cubes_out", len(merged))
                    deterministic = fill_cubes(merged, inputs, seed=seed + 1)
                else:
                    # No compaction: ship the very patterns that were
                    # verified and fault-dropped, bit for bit.
                    deterministic = list(verified)
            patterns = accepted + deterministic

            # Repair rounds: merge compaction changes the random fill, which
            # can lose faults that were only detected by fill coincidence.
            # Re-target anything still undetected, appending uncompacted
            # patterns.
            with telemetry.span("atpg.phase.repair"):
                final_report = simulator.run(patterns)
                for _ in range(3):
                    missing = [
                        f
                        for f in final_report.undetected
                        if f not in redundant and f not in aborted
                    ]
                    if not missing:
                        break
                    telemetry.incr("atpg.repair.rounds")
                    telemetry.incr("atpg.repair.retargeted", len(missing))
                    for fault in missing:
                        result = generator.generate(fault)
                        total_backtracks += result.backtracks
                        telemetry.incr("atpg.backtracks", result.backtracks)
                        telemetry.incr("atpg.decisions", result.decisions)
                        if result.pattern is None:
                            if result.redundant:
                                redundant.append(fault)
                                telemetry.incr("atpg.redundant")
                            else:
                                aborted.append(fault)
                                telemetry.incr("atpg.aborts")
                            continue
                        filled = _fill_pattern(result.pattern, inputs, rng)
                        if simulator.detects(filled, fault):
                            patterns.append(filled)
                            telemetry.incr("atpg.repair.patterns_added")
                        else:
                            aborted.append(fault)
                            telemetry.incr("atpg.aborts")
                            telemetry.incr("atpg.unsound_cubes")
                    final_report = simulator.run(patterns)

            if reverse_compact and patterns:
                with telemetry.span("atpg.phase.reverse_compaction"):
                    before_count = len(patterns)
                    patterns = reverse_order_compaction(
                        work, patterns, faults=fault_list, engine=engine
                    )
                    telemetry.incr(
                        "atpg.reverse.dropped", before_count - len(patterns)
                    )
                    final_report = simulator.run(patterns)

    if sharded is not None:
        sharded.close()
    manifest = telemetry.RunManifest(
        flow="atpg.generate_tests",
        circuit=circuit.name,
        seed=seed,
        engine=str(engine_name),
        method=method,
        limits={
            "random_phase": random_phase,
            "backtrack_limit": backtrack_limit,
            "compact": compact,
            "reverse_compact": reverse_compact,
            "workers": workers,
        },
        fault_model=plan.section(),
        phases=session.phase_stats("atpg.phase."),
        counters=dict(session.counters),
        stats={
            "patterns": len(patterns),
            "random_phase_patterns": random_used,
            "fault_count": len(fault_list),
            "detected": len(final_report.first_detection),
            "coverage": final_report.coverage,
            "redundant": len(redundant),
            "aborted": len(aborted),
            "total_backtracks": total_backtracks,
        },
        workers=sharded.workers_section() if sharded is not None else None,
        failures=sharded.failures_section() if sharded is not None else None,
    )
    return TestGenerationResult(
        circuit_name=circuit.name,
        method=method,
        patterns=patterns,
        report=final_report,
        redundant=redundant,
        aborted=aborted,
        total_backtracks=total_backtracks,
        random_phase_patterns=random_used,
        manifest=manifest,
        fault_model_plan=plan,
    )
