"""Top-level deterministic test-generation flow.

The classic mixed flow the mainframe CAD systems of the paper's era ran
(Bottorff et al. [78]):

1. optional random-pattern *phase 1* mops up the easy faults cheaply;
2. a deterministic engine (PODEM or the D-algorithm) targets each
   remaining collapsed fault, with fault dropping after every pattern;
3. don't-care merge compaction and random fill;
4. a final fault-simulation pass produces the signed-off coverage.

Every emitted pattern is verified by fault simulation before being
trusted — an engine bug can therefore lower coverage but never inflate
the report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..faults.collapse import collapse_faults
from ..faultsim.coverage import CoverageReport
from .podem import PodemGenerator, PodemResult
from .d_algorithm import DAlgorithm
from .random_gen import random_patterns
from .compaction import merge_cubes, fill_cubes

Pattern = Dict[str, int]


@dataclass
class TestGenerationResult:
    """Everything a test-floor hand-off needs."""

    circuit_name: str
    method: str
    patterns: List[Pattern]
    report: CoverageReport
    redundant: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)
    total_backtracks: int = 0
    random_phase_patterns: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.report.coverage

    @property
    def testable_coverage(self) -> float:
        """Coverage over the non-redundant faults only."""
        testable = len(self.report.faults) - len(self.redundant)
        if testable <= 0:
            return 1.0
        return len(self.report.first_detection) / testable

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name} [{self.method}]: {len(self.patterns)} patterns, "
            f"coverage {self.coverage:.1%} "
            f"({self.testable_coverage:.1%} of testable), "
            f"{len(self.redundant)} redundant, {len(self.aborted)} aborted"
        )


def generate_tests(
    circuit: Circuit,
    method: str = "podem",
    faults: Optional[Sequence[Fault]] = None,
    random_phase: int = 32,
    backtrack_limit: int = 10000,
    compact: bool = True,
    seed: int = 0,
    engine: str = "parallel_pattern",
) -> TestGenerationResult:
    """Run the full deterministic ATPG flow on a combinational circuit.

    ``method`` is ``"podem"`` or ``"dalg"``.  ``random_phase`` patterns
    of uniform random stimulus run first (0 disables).  Returns fully
    specified patterns plus the verified coverage report.

    ``engine`` selects the fault-simulation engine used for pattern
    verification and fault grading (see :class:`repro.faultsim.Engine`);
    the default is the compiled parallel-pattern engine.
    """
    from ..faultsim import create_simulator

    if method not in ("podem", "dalg"):
        raise ValueError(f"unknown ATPG method {method!r}")
    fault_list = list(faults) if faults is not None else collapse_faults(circuit)
    simulator = create_simulator(circuit, engine, faults=fault_list)
    rng = random.Random(seed)

    undetected = list(fault_list)
    accepted: List[Pattern] = []
    cubes: List[Dict[str, Optional[int]]] = []

    random_used = 0
    if random_phase:
        candidates = random_patterns(circuit, random_phase, seed=seed)
        phase_report = simulator.run(candidates)
        # Keep only useful random patterns, in first-detection order.
        useful_indices = sorted(
            {index for index in phase_report.first_detection.values()}
        )
        for index in useful_indices:
            accepted.append(candidates[index])
        random_used = len(useful_indices)
        detected = set(phase_report.first_detection)
        undetected = [f for f in undetected if f not in detected]

    generator = (
        PodemGenerator(circuit, backtrack_limit=backtrack_limit)
        if method == "podem"
        else DAlgorithm(circuit, backtrack_limit=backtrack_limit)
    )

    redundant: List[Fault] = []
    aborted: List[Fault] = []
    total_backtracks = 0
    queue = list(undetected)
    dropped: set = set()
    while queue:
        fault = queue.pop(0)
        if fault in dropped:
            continue
        result: PodemResult = generator.generate(fault)
        total_backtracks += result.backtracks
        if result.pattern is None:
            (redundant if result.redundant else aborted).append(fault)
            continue
        filled = {
            net: (value if value is not None else rng.randint(0, 1))
            for net, value in result.pattern.items()
        }
        if not simulator.detects(filled, fault):
            # Engine produced an unsound cube: treat as aborted, never
            # inflate coverage.
            aborted.append(fault)
            continue
        cubes.append(dict(result.pattern))
        # Fault-drop everything this pattern catches.
        for other in simulator.detected_faults(filled):
            dropped.add(other)

    if compact and cubes:
        cubes = merge_cubes(cubes, circuit.inputs)
    deterministic = fill_cubes(cubes, circuit.inputs, seed=seed + 1)
    patterns = accepted + deterministic

    # Repair rounds: merge compaction changes the random fill, which can
    # lose faults that were only detected by fill coincidence.  Re-target
    # anything still undetected, appending uncompacted patterns.
    final_report = simulator.run(patterns)
    for _ in range(3):
        missing = [
            f
            for f in final_report.undetected
            if f not in redundant and f not in aborted
        ]
        if not missing:
            break
        for fault in missing:
            result = generator.generate(fault)
            total_backtracks += result.backtracks
            if result.pattern is None:
                (redundant if result.redundant else aborted).append(fault)
                continue
            filled = {
                net: (value if value is not None else rng.randint(0, 1))
                for net, value in result.pattern.items()
            }
            if simulator.detects(filled, fault):
                patterns.append(filled)
            else:
                aborted.append(fault)
        final_report = simulator.run(patterns)
    return TestGenerationResult(
        circuit_name=circuit.name,
        method=method,
        patterns=patterns,
        report=final_report,
        redundant=redundant,
        aborted=aborted,
        total_backtracks=total_backtracks,
        random_phase_patterns=random_used,
    )
