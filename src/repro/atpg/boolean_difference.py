"""Boolean-difference analysis (Sellers/Hsiao/Bearnson [96]).

For small circuits the complete test set of a fault is computable
exactly: pack the exhaustive input space into one bit-parallel pass of
the good and faulty machines and compare.  ``dF/dx`` — the Boolean
difference of output F with respect to line x — is the XOR of the two
cofactor tables; tests for ``x`` stuck-at-v are the minterms of
``(x != v) AND dF/dx``.

These closed forms serve as the *oracle* for the search-based ATPG
engines: a fault is redundant iff its detecting set is empty, and any
pattern PODEM/D-alg emits must appear in the detecting set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faultsim.expand import expand_branches, fault_site_net
from ..sim.packed import PackedPatternSet, PackedSimulator

MAX_EXHAUSTIVE_INPUTS = 22


def _check_size(circuit: Circuit) -> None:
    if len(circuit.inputs) > MAX_EXHAUSTIVE_INPUTS:
        raise NetlistError(
            f"exhaustive analysis limited to {MAX_EXHAUSTIVE_INPUTS} inputs"
        )


def detecting_minterms(circuit: Circuit, fault: Fault) -> List[int]:
    """All input minterms whose pattern detects the fault (exact)."""
    _check_size(circuit)
    expanded, branch_map = expand_branches(circuit)
    sim = PackedSimulator(expanded)
    packed = PackedPatternSet.exhaustive(list(circuit.inputs))
    good = sim.run(packed)
    site = fault_site_net(fault, branch_map)
    mask = packed.mask
    forced = mask if fault.value else 0
    faulty = sim.run(packed, force={site: forced})
    difference = 0
    for net in circuit.outputs:
        difference |= (good[net] ^ faulty[net]) & mask
    return _bits(difference)


def is_redundant(circuit: Circuit, fault: Fault) -> bool:
    """True when no input pattern detects the fault."""
    return not detecting_minterms(circuit, fault)


def boolean_difference(circuit: Circuit, output: str, net: str) -> List[int]:
    """Minterms (over the PIs) where output is sensitive to ``net``.

    ``dF/dnet``: patterns where toggling ``net`` toggles ``output``.
    Computed as the XOR of the two forced-cofactor tables.
    """
    _check_size(circuit)
    expanded, _ = expand_branches(circuit)
    sim = PackedSimulator(expanded)
    packed = PackedPatternSet.exhaustive(list(circuit.inputs))
    mask = packed.mask
    with_zero = sim.run(packed, force={net: 0})
    with_one = sim.run(packed, force={net: mask})
    return _bits((with_zero[output] ^ with_one[output]) & mask)


def minterm_to_pattern(circuit: Circuit, minterm: int) -> Dict[str, int]:
    """Expand a minterm index into a pattern over the primary inputs."""
    return {
        net: (minterm >> position) & 1
        for position, net in enumerate(circuit.inputs)
    }


def _bits(word: int) -> List[int]:
    result = []
    index = 0
    while word:
        if word & 1:
            result.append(index)
        word >>= 1
        index += 1
    return result
