"""Sperry-Univac Scan/Set logic (paper §IV-C, Fig. 15).

Unlike LSSD/Scan Path, the shift register here is *not* in the system
data path: a shadow register of up to 64 bits **samples** chosen
internal nets in one clock (scan function) and can **drive** chosen
control points (set function).  System latches need not all be covered
— so test generation is not fully combinational, merely easier — and
the sample can be taken mid-operation without disturbing the machine
("a snapshot of the sequential machine").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..sim.sequential import SequentialSimulator


@dataclass
class ScanSetLogic:
    """A bit-serial Scan/Set register attached to a sequential design.

    ``sample_nets`` are observation taps (scan function); ``set_points``
    maps circuit primary inputs to register bit positions (set
    function) — modeling the funneling of register bits into system
    control lines.
    """

    circuit: Circuit
    sample_nets: List[str]
    set_points: Dict[str, int] = field(default_factory=dict)
    register_bits: int = 64

    def __post_init__(self) -> None:
        if len(self.sample_nets) > self.register_bits:
            raise NetlistError(
                f"{len(self.sample_nets)} sample points exceed the "
                f"{self.register_bits}-bit register"
            )
        for net in self.sample_nets:
            if net not in self.circuit:
                raise NetlistError(f"sample net {net!r} not in circuit")
        for net in self.set_points:
            if not self.circuit.is_input(net):
                raise NetlistError(
                    f"set point {net!r} must be a primary input "
                    "(the set function drives system control lines)"
                )
        self.register: List[int] = [V.ZERO] * self.register_bits

    # -- scan function ---------------------------------------------------
    def sample(self, simulator: SequentialSimulator, inputs: Mapping[str, int]) -> List[int]:
        """Single-clock parallel load of the sample nets (no disturbance).

        The system state is untouched: this is the §IV-C advantage —
        "the scan function can occur during system operation."
        """
        net_values = simulator.evaluate(inputs)
        snapshot = [net_values[net] for net in self.sample_nets]
        for index, value in enumerate(snapshot):
            self.register[index] = value
        return snapshot

    def shift_out(self) -> List[int]:
        """Serially unload the register (destructive read)."""
        bits = list(self.register)
        self.register = [V.ZERO] * self.register_bits
        return bits

    # -- set function ------------------------------------------------------
    def load_register(self, bits: Sequence[int]) -> None:
        """Load register."""
        if len(bits) > self.register_bits:
            raise ValueError("too many bits for the register")
        for index, bit in enumerate(bits):
            self.register[index] = bit

    def set_values(self) -> Dict[str, int]:
        """Input overrides funneled from the register's set bits."""
        return {
            net: self.register[position]
            for net, position in self.set_points.items()
        }

    # -- testability effect -------------------------------------------------
    def observability_gain(self) -> int:
        """How many internal nets became directly observable."""
        already = set(self.circuit.outputs)
        return len([n for n in self.sample_nets if n not in already])


def choose_sample_points(
    circuit: Circuit, count: int, measures=None
) -> List[str]:
    """Pick the hardest-to-observe nets as Scan/Set samples.

    Uses SCOAP observability when available; ties broken by logic depth
    (deep nets are the natural candidates the paper's designers chose).
    """
    from ..testability.scoap import analyze

    report = measures if measures is not None else analyze(circuit)
    candidates = [
        net
        for net in circuit.nets()
        if net not in circuit.outputs and not circuit.is_input(net)
    ]
    candidates.sort(
        key=lambda net: (
            -(report.measures[net].co if report.measures[net].co != float("inf") else 1e9),
            net,
        )
    )
    return candidates[:count]
