"""Hierarchical scan threading (paper Fig. 11).

"Each module could be an SRL or, one level up, a board containing
threaded IC's, etc.  Each level of packaging requires the same four
additional lines to implement the shift register scan feature."

:class:`ScanHierarchy` threads chip-level chains into a board chain
(and board chains into a system chain): one scan-in, one scan-out, and
a position catalog so "system tests become (ideally) simple
concatenations of subsystem tests."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import values as V
from .chain import ScanDesign, ScanTester


@dataclass
class ChainSegment:
    """One packaged component's slice of the top-level chain."""

    name: str
    design: ScanDesign
    offset: int  # bit position of this segment's first element

    @property
    def length(self) -> int:
        """Number of chain elements in this segment."""
        return self.design.chain_length


class ScanHierarchy:
    """Chips threaded into one board-level scan chain.

    The board chain is the concatenation of the chip chains in
    threading order; :meth:`catalog` is the position map the paper
    says makes aggregates testable; load/unload operate on the whole
    chain but address state by (chip, net).
    """

    def __init__(self, name: str = "board") -> None:
        self.name = name
        self.segments: List[ChainSegment] = []
        self._testers: Dict[str, ScanTester] = {}

    def thread(self, name: str, design: ScanDesign) -> ChainSegment:
        """Append a chip's chain to the board chain."""
        offset = self.total_chain_length
        segment = ChainSegment(name, design, offset)
        self.segments.append(segment)
        self._testers[name] = ScanTester(design)
        return segment

    @property
    def total_chain_length(self) -> int:
        """Sum of all threaded segments' lengths."""
        return sum(segment.length for segment in self.segments)

    @property
    def extra_lines_per_level(self) -> int:
        """The paper's constant: four lines at every packaging level."""
        return 4

    def catalog(self) -> List[Tuple[int, str, str]]:
        """(board-chain position, chip, state net) for every element."""
        entries = []
        for segment in self.segments:
            for index, net in enumerate(segment.design.chain):
                entries.append((segment.offset + index, segment.name, net))
        return entries

    # -- whole-chain operations ------------------------------------------
    def shift(self, bit: int) -> int:
        """One board-level shift: bit enters chip 0; chip i's scan-out
        feeds chip i+1's scan-in; the last chip's bit exits."""
        carry = bit
        for segment in self.segments:
            carry = self._testers[segment.name].shift(carry)
        return carry

    def load_board_state(self, state: Mapping[Tuple[str, str], int]) -> None:
        """Shift a full board state in; keys are (chip, state net)."""
        bits: List[int] = []
        for segment in self.segments:
            for net in segment.design.chain:
                bits.append(state.get((segment.name, net), 0))
        for bit in reversed(bits):
            self.shift(bit)

    def unload_board_state(self) -> Dict[Tuple[str, str], int]:
        """Shift the whole board chain out; keys are (chip, net)."""
        observed = [self.shift(0) for _ in range(self.total_chain_length)]
        observed.reverse()  # first bit out was the deepest element
        result: Dict[Tuple[str, str], int] = {}
        position = 0
        for segment in self.segments:
            for net in segment.design.chain:
                result[(segment.name, net)] = observed[position]
                position += 1
        return result

    def capture_all(self, pi_values_per_chip: Mapping[str, Mapping[str, int]]) -> None:
        """One system capture clock on every chip simultaneously."""
        for segment in self.segments:
            tester = self._testers[segment.name]
            tester.capture(pi_values_per_chip.get(segment.name, {}))

    def concatenated_test(
        self,
        per_chip_patterns: Mapping[str, Mapping[str, int]],
    ) -> Dict[Tuple[str, str], int]:
        """'System tests become simple concatenations of subsystem
        tests': load every chip's PPI slice, capture everywhere, unload.

        ``per_chip_patterns[chip]`` is a combinational-core pattern for
        that chip.  Returns the captured next-state bits per element.
        """
        load: Dict[Tuple[str, str], int] = {}
        pis: Dict[str, Dict[str, int]] = {}
        for segment in self.segments:
            pattern = per_chip_patterns.get(segment.name, {})
            for net in segment.design.chain:
                load[(segment.name, net)] = pattern.get(net, 0)
            pis[segment.name] = {
                net: pattern.get(net, 0)
                for net in segment.design.system_inputs
            }
        self.load_board_state(load)
        self.capture_all(pis)
        return self.unload_board_state()
