"""Fujitsu's Random-Access Scan (paper §IV-D, Figs. 16-18).

No shift registers: every latch is individually *addressable* through
X/Y decoders, like a RAM cell.  A latch is read at SDO or written via
SDI + scan clock when (and only when) its X and Y address lines are
both selected.  Observation-only taps cost one gate each.

Two latch flavors from the paper:

* polarity-hold addressable latch (Fig. 16) — scan clock writes SDI;
* set/reset addressable latch (Fig. 17) — a global CLEAR plus
  per-address PRESET pulses establish the state.

The model tracks the paper's overhead accounting: 3-4 gates per
latch, 10-20 pins (6 with serial addressing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..sim.sequential import SequentialSimulator
from ..economics.overhead import random_access_scan_overhead, OverheadEstimate


@dataclass
class AddressableLatch:
    """One latch plus its (x, y) address in the scan grid."""

    name: str
    state_net: str
    x: int
    y: int
    kind: str = "polarity-hold"  # or "set-reset"


class RandomAccessScanDesign:
    """A sequential netlist whose flip-flops sit behind an X/Y grid.

    Functionally wraps :class:`SequentialSimulator`: system clocks step
    the machine; scan operations read or write one addressed latch at a
    time, exactly the paper's access model.
    """

    def __init__(self, circuit: Circuit, latch_kind: str = "polarity-hold") -> None:
        flops = circuit.flip_flops
        if not flops:
            raise NetlistError("no flip-flops to address")
        self.circuit = circuit
        self.sim = SequentialSimulator(circuit)
        side = max(1, math.ceil(math.sqrt(len(flops))))
        self.latches: List[AddressableLatch] = []
        self._by_address: Dict[Tuple[int, int], AddressableLatch] = {}
        self._by_net: Dict[str, AddressableLatch] = {}
        for index, flop in enumerate(flops):
            latch = AddressableLatch(
                flop.name, flop.output, index % side, index // side, latch_kind
            )
            self.latches.append(latch)
            self._by_address[(latch.x, latch.y)] = latch
            self._by_net[latch.state_net] = latch
        self.side = side
        self.observation_points: List[str] = []
        self.scan_operations = 0

    # -- addressing -------------------------------------------------------
    @property
    def address_bits(self) -> int:
        """Address bits."""
        return 2 * max(1, math.ceil(math.log2(max(self.side, 2))))

    def latch_at(self, x: int, y: int) -> AddressableLatch:
        """Latch at."""
        try:
            return self._by_address[(x, y)]
        except KeyError:
            raise KeyError(f"no latch at address ({x}, {y})") from None

    # -- scan operations ----------------------------------------------------
    def read_latch(self, x: int, y: int) -> int:
        """SDO: observe one addressed latch without disturbing anything."""
        self.scan_operations += 1
        return self.sim.state[self.latch_at(x, y).state_net]

    def write_latch(self, x: int, y: int, value: int) -> None:
        """SDI + scan clock: set one addressed latch."""
        self.scan_operations += 1
        self.sim.set_state({self.latch_at(x, y).state_net: value})

    def clear_all(self) -> None:
        """The Fig. 17 CLEAR line: every set/reset latch to 0."""
        self.sim.reset(V.ZERO)
        self.scan_operations += 1

    def preset(self, addresses: Sequence[Tuple[int, int]]) -> None:
        """Fig. 17 protocol: CLEAR, then per-address PRESET pulses."""
        self.clear_all()
        for x, y in addresses:
            self.write_latch(x, y, V.ONE)

    def load_full_state(self, state: Mapping[str, int]) -> int:
        """Address every latch in turn; returns scan operations used.

        Contrast with a shift register: cost is one operation per
        latch *written*, not per chain position — sparse states are
        cheap, which is Random-Access Scan's edge.
        """
        used = 0
        for net, value in state.items():
            latch = self._by_net[net]
            self.write_latch(latch.x, latch.y, value)
            used += 1
        return used

    def read_full_state(self) -> Dict[str, int]:
        """Read full state."""
        return {
            latch.state_net: self.read_latch(latch.x, latch.y)
            for latch in self.latches
        }

    # -- observation-only taps ----------------------------------------------
    def add_observation_point(self, net: str) -> None:
        """One extra gate + one address: observe any combinational net."""
        if net not in self.circuit:
            raise NetlistError(f"net {net!r} not in circuit")
        self.observation_points.append(net)

    def observe_point(self, inputs: Mapping[str, int], net: str) -> int:
        """Observe point."""
        if net not in self.observation_points:
            raise KeyError(f"{net!r} is not an observation point")
        self.scan_operations += 1
        return self.sim.evaluate(inputs)[net]

    # -- system operation -----------------------------------------------------
    def system_step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """System step."""
        return self.sim.step(inputs)

    # -- economics ---------------------------------------------------------------
    def overhead(self, serial_addressing: bool = False) -> OverheadEstimate:
        """Gate/pin overhead estimate for this configuration."""
        estimate = random_access_scan_overhead(
            len(self.latches), serial_addressing=serial_addressing
        )
        estimate.extra_gates += len(self.observation_points)
        return estimate


def addressable_latch_netlist(kind: str = "polarity-hold") -> Circuit:
    """Gate-level addressable latch (Figs. 16/17) for timing studies.

    Inputs: DATA, CK (system clock), SDI, SCK (scan clock), XADR, YADR;
    outputs Q and SDO.  Contains latch feedback, so event-sim only.
    """
    c = Circuit(f"ras_latch_{kind}")
    for pin in ("DATA", "CK", "SDI", "SCK", "XADR", "YADR"):
        c.add_input(pin)
    c.and_(["XADR", "YADR"], "SEL")
    c.and_(["SEL", "SCK"], "SCLK")
    c.not_("DATA", "DATAN")
    c.not_("SDI", "SDIN")
    # System port (CK) and scan port (SCLK) both set/reset the latch.
    c.nand(["DATA", "CK"], "S1")
    c.nand(["SDI", "SCLK"], "S2")
    c.and_(["S1", "S2"], "SBAR")
    c.nand(["DATAN", "CK"], "R1")
    c.nand(["SDIN", "SCLK"], "R2")
    c.and_(["R1", "R2"], "RBAR")
    c.nand(["SBAR", "QN"], "Q")
    c.nand(["RBAR", "Q"], "QN")
    # Scan data out: the latch value gated by its address.
    c.and_(["Q", "SEL"], "SDO")
    c.add_output("Q")
    c.add_output("SDO")
    return c
