"""End-to-end full-scan test flow (the reward promised in §IV-A).

``full_scan_flow`` performs the complete transaction the paper
describes: insert a scan chain, extract the combinational core, run
*combinational* ATPG on it, schedule each test as shift/capture cycles,
and verify the resulting stimulus on the scanned netlist by sequential
fault simulation.  The output coverage is therefore measured through
the chip's actual pins (PIs, POs and the three scan pins), proving the
sequential problem really did reduce to the combinational one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..atpg.api import generate_tests, TestGenerationResult
from ..faults.stuck_at import Fault
from ..faults.collapse import collapse_faults
from ..faultsim.sequential import SequentialFaultSimulator
from ..faultsim.coverage import CoverageReport
from ..economics.overhead import scan_test_data_volume
from .chain import ScanDesign, ScanTester, insert_scan

Pattern = Dict[str, int]


@dataclass
class FullScanResult:
    """Everything produced by the scan flow."""

    design: ScanDesign
    core_tests: TestGenerationResult
    schedule: List[Pattern]  # cycle-by-cycle input vectors (scan pins incl.)
    scan_coverage: CoverageReport
    total_clocks: int
    data_volume_bits: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.design.original.name}: chain={self.design.chain_length}, "
            f"core {self.core_tests.summary()}; "
            f"applied in {self.total_clocks} clocks, "
            f"{self.data_volume_bits} bits of test data, "
            f"verified scan coverage {self.scan_coverage.coverage:.1%}"
        )


def schedule_scan_tests(
    design: ScanDesign,
    patterns: Sequence[Mapping[str, int]],
    fill: int = 0,
    flush: bool = True,
) -> List[Pattern]:
    """Expand combinational-core patterns into per-cycle input vectors.

    Protocol per pattern: ``chain_length`` shift cycles (loading the
    state, PIs idle), one capture cycle with the pattern's PIs, then
    the unload overlaps the next pattern's load; a final full unload
    drains the last capture.

    ``flush`` prepends the classic chain flush test — a 00110011...
    stream shifted through the whole chain — which exposes stuck-at
    faults in the scan path itself before any core test runs.
    """
    chain = design.chain
    n = len(chain)
    system_inputs = design.system_inputs
    schedule: List[Pattern] = []

    def cycle(scan_en: int, scan_in: int, pis: Optional[Mapping[str, int]] = None) -> Pattern:
        """One per-clock input vector with the scan pins set."""
        vector = {net: fill for net in system_inputs}
        if pis:
            vector.update({net: value for net, value in pis.items()})
        vector[design.scan_enable] = scan_en
        vector[design.scan_in] = scan_in
        return vector

    if flush:
        flush_bits = [(i // 2) % 2 for i in range(2 * n + 4)]
        for bit in flush_bits:
            schedule.append(cycle(1, bit))

    for pattern in patterns:
        bits = [pattern.get(net, fill) for net in chain]
        for bit in reversed(bits):
            schedule.append(cycle(1, bit))
        pis = {net: pattern.get(net, fill) for net in system_inputs}
        schedule.append(cycle(0, fill, pis))
    # Drain the final capture.
    for _ in range(n):
        schedule.append(cycle(1, fill))
    return schedule


def full_scan_flow(
    circuit: Circuit,
    method: str = "podem",
    random_phase: int = 32,
    seed: int = 0,
    verify: bool = True,
    fault_limit: Optional[int] = None,
) -> FullScanResult:
    """Scan-insert, ATPG the core, schedule, and (optionally) verify.

    ``fault_limit`` caps the number of faults sequentially verified
    (verification costs one sequential pass per fault; benchmarks on
    larger designs sample).
    """
    design = insert_scan(circuit)
    core = circuit.combinational_core()
    core_tests = generate_tests(
        core, method=method, random_phase=random_phase, seed=seed
    )
    schedule = schedule_scan_tests(design, core_tests.patterns)
    total_clocks = len(schedule)
    data_volume = scan_test_data_volume(
        len(core_tests.patterns),
        design.chain_length,
        len(design.system_inputs),
        len(circuit.outputs),
    )
    if verify:
        faults = collapse_faults(design.circuit)
        if fault_limit is not None and len(faults) > fault_limit:
            faults = faults[:fault_limit]
        simulator = SequentialFaultSimulator(design.circuit, faults=faults)
        coverage = simulator.run(schedule)
    else:
        coverage = CoverageReport(design.circuit.name, total_clocks, [])
    return FullScanResult(
        design=design,
        core_tests=core_tests,
        schedule=schedule,
        scan_coverage=coverage,
        total_clocks=total_clocks,
        data_volume_bits=data_volume,
    )
