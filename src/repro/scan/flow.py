"""End-to-end full-scan test flow (the reward promised in §IV-A).

``full_scan_flow`` performs the complete transaction the paper
describes: insert a scan chain, extract the combinational core, run
*combinational* ATPG on it, schedule each test as shift/capture cycles,
and verify the resulting stimulus on the scanned netlist by sequential
fault simulation.  The output coverage is therefore measured through
the chip's actual pins (PIs, POs and the three scan pins), proving the
sequential problem really did reduce to the combinational one.

Sequential verification costs one serial pass per fault, so it is the
flow's wall-clock wall on anything bigger than a toy:
``full_scan_flow(..., workers=N)`` shards the verified fault list
across ``N`` worker processes
(:class:`repro.faultsim.sharded.ShardedFaultSimulator`) with a result
bit-identical to the single-process pass.  ``fault_limit`` caps the
verified list by a *seeded random sample* (never a prefix — fault
enumeration order is structural, so a prefix is a biased estimator);
the sample seed is recorded in the attached run manifest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .. import telemetry
from ..netlist.circuit import Circuit
from ..atpg.api import generate_tests, TestGenerationResult
from ..faults.collapse import collapse_faults
from ..faults.models import FaultModel, UnsupportedFaultModelError
from ..faultsim.sharded import SEQUENTIAL_ENGINE, ShardedFaultSimulator
from ..faultsim.coverage import CoverageReport, sample_fault_list
from ..economics.overhead import scan_test_data_volume
from .chain import ScanDesign, ScanTester, insert_scan

Pattern = Dict[str, int]


@dataclass
class FullScanResult:
    """Everything produced by the scan flow.

    ``scan_coverage`` is ``None`` when the flow ran with
    ``verify=False`` — an unverified run is *not* the same thing as a
    verified run that found nothing, and must never read as one.
    ``manifest`` is the flow's own run manifest
    (``flow="scan.full_scan_flow"``, with a ``workers`` section when the
    verification was sharded); the combinational core's ATPG manifest
    rides along as :attr:`core_manifest`.
    """

    design: ScanDesign
    core_tests: TestGenerationResult
    schedule: List[Pattern]  # cycle-by-cycle input vectors (scan pins incl.)
    scan_coverage: Optional[CoverageReport]
    total_clocks: int
    data_volume_bits: int
    manifest: Optional[telemetry.RunManifest] = None

    @property
    def verified(self) -> bool:
        """Did a sequential verification pass actually run?"""
        return self.scan_coverage is not None

    @property
    def core_manifest(self) -> Optional[telemetry.RunManifest]:
        """The core ATPG run's manifest (from ``generate_tests``)."""
        return self.core_tests.manifest

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.verified:
            verification = (
                f"verified scan coverage {self.scan_coverage.coverage:.1%}"
            )
        else:
            verification = "scan coverage unverified (verify=False)"
        return (
            f"{self.design.original.name}: chain={self.design.chain_length}, "
            f"core {self.core_tests.summary()}; "
            f"applied in {self.total_clocks} clocks, "
            f"{self.data_volume_bits} bits of test data, "
            f"{verification}"
        )


def schedule_scan_tests(
    design: ScanDesign,
    patterns: Sequence[Mapping[str, int]],
    fill: int = 0,
    flush: bool = True,
) -> List[Pattern]:
    """Expand combinational-core patterns into per-cycle input vectors.

    Protocol per pattern: ``chain_length`` shift cycles (loading the
    state, PIs idle), one capture cycle with the pattern's PIs, then
    the unload overlaps the next pattern's load; a final full unload
    drains the last capture.

    ``flush`` prepends the classic chain flush test — a 00110011...
    stream shifted through the whole chain — which exposes stuck-at
    faults in the scan path itself before any core test runs.
    """
    chain = design.chain
    n = len(chain)
    system_inputs = design.system_inputs
    schedule: List[Pattern] = []

    def cycle(scan_en: int, scan_in: int, pis: Optional[Mapping[str, int]] = None) -> Pattern:
        """One per-clock input vector with the scan pins set."""
        vector = {net: fill for net in system_inputs}
        if pis:
            vector.update({net: value for net, value in pis.items()})
        vector[design.scan_enable] = scan_en
        vector[design.scan_in] = scan_in
        return vector

    if flush:
        flush_bits = [(i // 2) % 2 for i in range(2 * n + 4)]
        for bit in flush_bits:
            schedule.append(cycle(1, bit))

    for pattern in patterns:
        bits = [pattern.get(net, fill) for net in chain]
        for bit in reversed(bits):
            schedule.append(cycle(1, bit))
        pis = {net: pattern.get(net, fill) for net in system_inputs}
        schedule.append(cycle(0, fill, pis))
    # Drain the final capture.
    for _ in range(n):
        schedule.append(cycle(1, fill))
    return schedule


def full_scan_flow(
    circuit: Circuit,
    method: str = "podem",
    random_phase: int = 32,
    seed: int = 0,
    verify: bool = True,
    fault_limit: Optional[int] = None,
    sample_seed: int = 0,
    fill: int = 0,
    flush: bool = True,
    engine: str = "parallel_pattern",
    reverse_compact: bool = False,
    workers: int = 1,
    supervision: Optional["SupervisionPolicy"] = None,
    failure_policy: str = "raise",
    chaos: Optional["ChaosConfig"] = None,
    fault_model: str = "stuck_at",
    backend: Optional[Any] = None,
) -> FullScanResult:
    """Scan-insert, ATPG the core, schedule, and (optionally) verify.

    ``fill``/``flush`` pass through to :func:`schedule_scan_tests`;
    ``engine``/``reverse_compact`` pass through to the core
    :func:`~repro.atpg.api.generate_tests` call.  ``fault_limit`` caps
    the number of faults sequentially verified by a random sample drawn
    with ``sample_seed`` (verification costs one sequential pass per
    fault; benchmarks on larger designs sample).  ``workers > 1``
    shards both the core ATPG's fault-simulation passes and the
    sequential verification across that many processes — the result is
    bit-identical to ``workers=1``.  ``backend`` selects the
    :mod:`repro.exec` execution backend for both pools (default
    auto-selects fork where available, else spawn).

    ``supervision``/``failure_policy``/``chaos`` configure the sharded
    executors' fault tolerance (see :mod:`repro.resilience`); any
    permanent quarantine/degradation shows up in the manifest's
    ``failures`` section.

    ``fault_model`` passes through to the core ATPG.  The scan flow's
    capability matrix is narrower than the core's: the sequential
    verifier replays shift/capture cycles against *stuck-at* faults on
    the scanned netlist, so ``"bridging"`` requires ``verify=False``
    (core patterns are generated for the bridging universe but cannot
    be sequentially re-verified against it), and the two-frame models
    (``"transition"``, ``"cmos_stuck_open"``) are rejected outright —
    their composite patterns are ordered vector *pairs*, which this
    single-capture scan protocol cannot apply.  Both violations raise
    :class:`repro.faults.UnsupportedFaultModelError` before any work
    runs.
    """
    model = FaultModel.coerce(fault_model)
    if model in (FaultModel.TRANSITION, FaultModel.CMOS_STUCK_OPEN):
        raise UnsupportedFaultModelError(
            f"full_scan_flow cannot apply {model.value!r} tests: the "
            f"two-frame composite patterns are ordered vector pairs, "
            f"but the scan protocol applies one capture per load "
            f"(launch-off-shift/capture scheduling is not implemented)"
        )
    if model is not FaultModel.STUCK_AT and verify:
        raise UnsupportedFaultModelError(
            f"full_scan_flow sequential verification grades stuck-at "
            f"faults on the scanned netlist and cannot re-verify "
            f"{model.value!r} tests; pass verify=False to run the core "
            f"ATPG under this model unverified"
        )
    design = insert_scan(circuit)
    core = circuit.combinational_core()
    verifier: Optional[ShardedFaultSimulator] = None
    with telemetry.capture() as session:
        with telemetry.span("scan.full_scan_flow", circuit=circuit.name):
            with telemetry.span("scan.phase.core_atpg"):
                core_tests = generate_tests(
                    core,
                    method=method,
                    random_phase=random_phase,
                    seed=seed,
                    engine=engine,
                    reverse_compact=reverse_compact,
                    workers=workers,
                    supervision=supervision,
                    failure_policy=failure_policy,
                    chaos=chaos,
                    fault_model=model,
                    backend=backend,
                )
            with telemetry.span("scan.phase.schedule"):
                schedule = schedule_scan_tests(
                    design, core_tests.patterns, fill=fill, flush=flush
                )
                total_clocks = len(schedule)
                data_volume = scan_test_data_volume(
                    len(core_tests.patterns),
                    design.chain_length,
                    len(design.system_inputs),
                    len(circuit.outputs),
                )
            coverage: Optional[CoverageReport] = None
            if verify:
                with telemetry.span("scan.phase.verify"):
                    faults = sample_fault_list(
                        collapse_faults(design.circuit), fault_limit, sample_seed
                    )
                    telemetry.incr("scan.verify.faults", len(faults))
                    verifier = ShardedFaultSimulator(
                        design.circuit,
                        SEQUENTIAL_ENGINE,
                        faults=faults,
                        workers=workers,
                        supervision=supervision,
                        failure_policy=failure_policy,
                        chaos=chaos,
                        backend=backend,
                    )
                    coverage = verifier.run(schedule)
                    verifier.close()

    engine_name = getattr(engine, "value", engine)
    manifest = telemetry.RunManifest(
        flow="scan.full_scan_flow",
        circuit=circuit.name,
        seed=seed,
        engine=str(engine_name),
        method=method,
        limits={
            "random_phase": random_phase,
            "fault_limit": fault_limit,
            "sample_seed": sample_seed,
            "fill": fill,
            "flush": flush,
            "reverse_compact": reverse_compact,
            "verify": verify,
            "workers": workers,
        },
        phases=session.phase_stats("scan.phase."),
        counters=dict(session.counters),
        stats={
            "chain_length": design.chain_length,
            "core_patterns": len(core_tests.patterns),
            "core_coverage": core_tests.coverage,
            "total_clocks": total_clocks,
            "data_volume_bits": data_volume,
            "verified": verify,
            "verified_faults": len(coverage.faults) if coverage is not None else 0,
            "detected": (
                len(coverage.first_detection) if coverage is not None else 0
            ),
            "scan_coverage": coverage.coverage if coverage is not None else None,
        },
        workers=verifier.workers_section() if verifier is not None else None,
        failures=verifier.failures_section() if verifier is not None else None,
        fault_model=(
            core_tests.fault_model_plan.section()
            if core_tests.fault_model_plan is not None
            else None
        ),
    )
    return FullScanResult(
        design=design,
        core_tests=core_tests,
        schedule=schedule,
        scan_coverage=coverage,
        total_clocks=total_clocks,
        data_volume_bits=data_volume,
        manifest=manifest,
    )
