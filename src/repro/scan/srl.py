"""The LSSD shift-register latch (SRL), Fig. 10 of the paper.

An SRL is a polarity-hold L1 latch with *two* clocked data ports —
(D, C) for system data and (I, A) for scan data — feeding an L2 latch
clocked by B.  Scanning threads I to the previous SRL's L2 and pulses
A/B two-phase; system operation pulses C (and B where the L2 output is
used).  Level-sensitive: behaviour depends only on clock *levels* held
long enough, never on edges or relative skews.

Two models are provided:

* :func:`srl_netlist` — the AND-INVERT gate implementation of
  Fig. 10(b), cross-coupled NANDs and all, for event-driven timing
  experiments (clock-anomaly immunity is *demonstrated*, not assumed);
* :class:`SrlCell` / :class:`SrlRegister` — behavioral models used by
  the LSSD design layer, where per-gate timing no longer matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..netlist import values as V
from ..netlist.circuit import Circuit


def srl_netlist(name: str = "srl") -> Circuit:
    """Gate-level SRL: inputs D, C, I, A, B; outputs L1, L2.

    The L1 latch is a two-port set/reset NAND structure; L2 is a
    single-port polarity-hold latch.  Contains combinational feedback
    (the cross-coupled NANDs), so only the event simulator can run it.
    """
    c = Circuit(name)
    for pin in ("D", "C", "I", "A", "B"):
        c.add_input(pin)
    # L1: set when D·C or I·A; reset when ~D·C or ~I·A.
    c.not_("D", "ND")
    c.not_("I", "NI")
    c.nand(["D", "C"], "S1")
    c.nand(["I", "A"], "S2")
    c.and_(["S1", "S2"], "SBAR")  # active-low set
    c.nand(["ND", "C"], "R1")
    c.nand(["NI", "A"], "R2")
    c.and_(["R1", "R2"], "RBAR")  # active-low reset
    c.nand(["SBAR", "L1N"], "L1")
    c.nand(["RBAR", "L1"], "L1N")
    # L2: polarity-hold latch on clock B.
    c.not_("L1", "NL1")
    c.nand(["L1", "B"], "S3")
    c.nand(["NL1", "B"], "R3")
    c.nand(["S3", "L2N"], "L2")
    c.nand(["R3", "L2"], "L2N")
    c.add_output("L1")
    c.add_output("L2")
    return c


class SrlCell:
    """Behavioral SRL: three-valued L1/L2 with explicit clock methods."""

    def __init__(self, name: str = "srl") -> None:
        self.name = name
        self.l1: int = V.X
        self.l2: int = V.X

    def clock_c(self, data: int) -> None:
        """System clock C: L1 samples the system data input D."""
        self.l1 = data

    def clock_a(self, scan_data: int) -> None:
        """Scan clock A: L1 samples the scan input I."""
        self.l1 = scan_data

    def clock_b(self) -> None:
        """Clock B: L2 samples L1."""
        self.l2 = self.l1

    def __repr__(self) -> str:
        return f"SrlCell({self.name}, L1={self.l1}, L2={self.l2})"


@dataclass
class SrlRegister:
    """A chain of SRLs threaded I -> previous L2 (paper Fig. 11).

    ``shift`` performs one two-phase A/B scan step; ``system_clock``
    performs a C/B system step from supplied data values.
    """

    cells: List[SrlCell] = field(default_factory=list)

    @classmethod
    def of_length(cls, length: int, prefix: str = "srl") -> "SrlRegister":
        """Of length."""
        return cls([SrlCell(f"{prefix}{i}") for i in range(length)])

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def scan_out(self) -> int:
        """The last SRL's L2 — the chain's scan output."""
        return self.cells[-1].l2 if self.cells else V.X

    def shift(self, scan_in: int) -> int:
        """One A/B scan step: returns the bit leaving the chain.

        Phase A loads every L1 from the previous cell's L2 (the chain
        input for the first cell); phase B moves every L1 to its L2.
        Order matters exactly as in hardware: all A's sample old L2
        values before any B updates them.
        """
        out = self.scan_out
        sources = [scan_in] + [cell.l2 for cell in self.cells[:-1]]
        for cell, source in zip(self.cells, sources):
            cell.clock_a(source)
        for cell in self.cells:
            cell.clock_b()
        return out

    def load(self, bits: Sequence[int]) -> None:
        """Shift a full state in (bits[i] destined for cell i)."""
        if len(bits) != len(self.cells):
            raise ValueError("bit count must equal chain length")
        for bit in reversed(list(bits)):
            self.shift(bit)

    def unload(self) -> List[int]:
        """Shift the full state out (destructive); returns cell order."""
        observed = []
        for _ in range(len(self.cells)):
            observed.append(self.shift(V.ZERO))
        observed.reverse()
        return observed

    def system_clock(self, data: Sequence[int]) -> None:
        """C then B: capture system data into L1s, update L2s."""
        if len(data) != len(self.cells):
            raise ValueError("data width must equal register length")
        for cell, value in zip(self.cells, data):
            cell.clock_c(value)
        for cell in self.cells:
            cell.clock_b()

    def state(self) -> List[int]:
        """Current L2 values, chain order."""
        return [cell.l2 for cell in self.cells]
