"""Generic scan-chain insertion and test application (paper Fig. 9).

``insert_scan`` rewrites a sequential netlist so every flip-flop's data
input is multiplexed between system data and the previous element of a
shift chain — the structural move shared by every scan discipline.
:class:`ScanTester` then drives the *transformed netlist itself*
(shift, capture, unload are real simulated clock cycles), so scan-based
coverage claims in the benchmarks are end-to-end measurements, not
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..sim.sequential import SequentialSimulator

SCAN_IN = "SCAN_IN"
SCAN_ENABLE = "SCAN_EN"
SCAN_OUT = "SCAN_OUT"


@dataclass
class ScanDesign:
    """A netlist with an inserted scan chain plus its bookkeeping."""

    circuit: Circuit
    original: Circuit
    chain: List[str]  # flip-flop *output* nets, scan-in side first
    scan_in: str = SCAN_IN
    scan_enable: str = SCAN_ENABLE
    scan_out: str = SCAN_OUT
    style: str = "mux"

    @property
    def chain_length(self) -> int:
        """Chain length."""
        return len(self.chain)

    @property
    def system_inputs(self) -> List[str]:
        """Primary inputs excluding the scan controls."""
        return [
            net
            for net in self.circuit.inputs
            if net not in (self.scan_in, self.scan_enable)
        ]

    def gate_overhead(self) -> float:
        """Gate overhead."""
        base = len(self.original)
        return (len(self.circuit) - base) / base if base else 0.0

    def extra_pins(self) -> int:
        """Extra pins."""
        return 3  # SCAN_IN, SCAN_EN, SCAN_OUT


def insert_scan(
    circuit: Circuit,
    chain_order: Optional[Sequence[str]] = None,
    style: str = "mux",
) -> ScanDesign:
    """Thread every flip-flop into a scan chain.

    ``chain_order`` lists flip-flop gate names from the scan-in side;
    default is declaration order.  The multiplexer is synthesized from
    AND/OR/NOT so the result stays a plain gate netlist.
    """
    flops = circuit.flip_flops
    if not flops:
        raise NetlistError("no flip-flops to scan")
    by_name = {flop.name: flop for flop in flops}
    if chain_order is None:
        chain_order = [flop.name for flop in flops]
    if sorted(chain_order) != sorted(by_name):
        raise NetlistError("chain_order must list every flip-flop exactly once")

    scanned = Circuit(f"{circuit.name}_scan")
    for net in circuit.inputs:
        scanned.add_input(net)
    scanned.add_input(SCAN_IN)
    scanned.add_input(SCAN_ENABLE)
    scanned.not_(SCAN_ENABLE, "__sen_b")

    for gate in circuit.gates:
        if gate.kind.is_sequential:
            continue
        scanned.add_gate(gate.kind, gate.inputs, gate.output, gate.name)

    previous = SCAN_IN
    chain_nets: List[str] = []
    for name in chain_order:
        flop = by_name[name]
        data = flop.inputs[0]
        sys_term = f"__{name}_sys"
        scan_term = f"__{name}_scan"
        mux_net = f"__{name}_d"
        scanned.and_([data, "__sen_b"], sys_term)
        scanned.and_([previous, SCAN_ENABLE], scan_term)
        scanned.or_([sys_term, scan_term], mux_net)
        scanned.dff(mux_net, flop.output, name=name)
        chain_nets.append(flop.output)
        previous = flop.output

    scanned.buf(previous, SCAN_OUT)
    for net in circuit.outputs:
        scanned.add_output(net)
    scanned.add_output(SCAN_OUT)
    scanned.validate()
    return ScanDesign(scanned, circuit, chain_nets, style=style)


@dataclass
class ScanTestRecord:
    """One applied scan test: what went in, what came out."""

    pattern_index: int
    pi_values: Dict[str, int]
    loaded_state: Dict[str, int]
    observed_outputs: Dict[str, int]
    unloaded_state: Dict[str, int]
    clocks_used: int


class ScanTester:
    """Drives a :class:`ScanDesign` through real shift/capture cycles."""

    def __init__(self, design: ScanDesign, fill: int = 0) -> None:
        self.design = design
        self.sim = SequentialSimulator(design.circuit)
        self.fill = fill
        self.total_clocks = 0

    def _idle_pis(self) -> Dict[str, int]:
        return {net: self.fill for net in self.design.system_inputs}

    def shift(self, bit: int) -> int:
        """One scan-shift clock; returns the bit appearing at SCAN_OUT."""
        inputs = self._idle_pis()
        inputs[self.design.scan_in] = bit
        inputs[self.design.scan_enable] = 1
        outputs = self.sim.step(inputs)
        self.total_clocks += 1
        return outputs[self.design.scan_out]

    def load_state(self, state: Mapping[str, int]) -> None:
        """Shift a full chain state in (keys are FF output nets)."""
        order = self.design.chain
        bits = [state.get(net, self.fill) for net in order]
        # The bit for the deepest element (last in chain) enters first.
        for bit in reversed(bits):
            self.shift(bit)

    def unload_state(self) -> Dict[str, int]:
        """Shift the chain out; returns {ff output net: captured bit}.

        ``SequentialSimulator.step`` reports outputs *before* the state
        update, so each shift() returns the chain's last element as it
        was prior to that clock: observed[i] is the element originally
        at position ``len - 1 - i``.
        """
        order = self.design.chain
        observed = [self.shift(self.fill) for _ in range(len(order))]
        return {
            order[len(order) - 1 - i]: bit for i, bit in enumerate(observed)
        }

    def capture(self, pi_values: Mapping[str, int]) -> Dict[str, int]:
        """One system clock with scan disabled; returns PO values."""
        inputs = dict(self._idle_pis())
        inputs.update(pi_values)
        inputs[self.design.scan_enable] = 0
        inputs[self.design.scan_in] = self.fill
        outputs = self.sim.step(inputs)
        self.total_clocks += 1
        return outputs

    def observe_outputs(self, pi_values: Mapping[str, int]) -> Dict[str, int]:
        """Combinational PO observation without clocking."""
        inputs = dict(self._idle_pis())
        inputs.update(pi_values)
        inputs[self.design.scan_enable] = 0
        inputs[self.design.scan_in] = self.fill
        net_values = self.sim.evaluate(inputs)
        return {net: net_values[net] for net in self.design.circuit.outputs}

    def apply_test(
        self, pattern: Mapping[str, int], index: int = 0
    ) -> ScanTestRecord:
        """Full scan protocol for one combinational-core pattern.

        ``pattern`` assigns the core's free nets: original PIs plus
        flip-flop output nets (PPIs).  Protocol: load state, set PIs,
        observe POs, capture, unload.
        """
        clocks_before = self.total_clocks
        state = {
            net: pattern.get(net, self.fill) for net in self.design.chain
        }
        self.load_state(state)
        pis = {
            net: pattern.get(net, self.fill)
            for net in self.design.system_inputs
        }
        observed = self.observe_outputs(pis)
        self.capture(pis)
        unloaded = self.unload_state()
        return ScanTestRecord(
            pattern_index=index,
            pi_values=pis,
            loaded_state=state,
            observed_outputs=observed,
            unloaded_state=unloaded,
            clocks_used=self.total_clocks - clocks_before,
        )


