"""Structured DFT: scan chains, LSSD, Scan Path, Scan/Set, Random-Access Scan."""

from .srl import srl_netlist, SrlCell, SrlRegister
from .chain import (
    ScanDesign,
    ScanTester,
    ScanTestRecord,
    insert_scan,
    SCAN_IN,
    SCAN_ENABLE,
    SCAN_OUT,
)
from .flow import (
    FullScanResult,
    full_scan_flow,
    sample_fault_list,
    schedule_scan_tests,
)
from .lssd import LssdDesign, RuleViolation, check_lssd_rules
from .scan_path import (
    raceless_dff_netlist,
    ScanPathCard,
    CardScanConfiguration,
    backtrace_partition,
    partition_sizes,
)
from .scan_set import ScanSetLogic, choose_sample_points
from .hierarchy import ChainSegment, ScanHierarchy
from .random_access import (
    AddressableLatch,
    RandomAccessScanDesign,
    addressable_latch_netlist,
)

__all__ = [
    "ChainSegment",
    "ScanHierarchy",
    "srl_netlist",
    "SrlCell",
    "SrlRegister",
    "ScanDesign",
    "ScanTester",
    "ScanTestRecord",
    "insert_scan",
    "SCAN_IN",
    "SCAN_ENABLE",
    "SCAN_OUT",
    "FullScanResult",
    "full_scan_flow",
    "sample_fault_list",
    "schedule_scan_tests",
    "LssdDesign",
    "RuleViolation",
    "check_lssd_rules",
    "raceless_dff_netlist",
    "ScanPathCard",
    "CardScanConfiguration",
    "backtrace_partition",
    "partition_sizes",
    "ScanSetLogic",
    "choose_sample_points",
    "AddressableLatch",
    "RandomAccessScanDesign",
    "addressable_latch_netlist",
]
