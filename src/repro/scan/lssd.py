"""Level-Sensitive Scan Design (paper §IV-A; Eichelberger & Williams).

LSSD is two disciplines in one:

* **level-sensitive** operation — all storage is in polarity-hold
  latches clocked by non-overlapping phases, so correct behaviour
  depends only on clock levels (no edges, no races);
* **scan** — every latch is an SRL threaded into a shift register.

:class:`LssdDesign` models a two-clock LSSD subsystem (Fig. 12): a
combinational network, a bank of SRLs holding the state, system clocks
C1/B, scan clocks A/B, and the four scan pins per package level.
:func:`check_lssd_rules` audits a netlist + clock declaration against
the published design rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..sim.logic import LogicSimulator
from ..economics.overhead import lssd_overhead, OverheadEstimate
from .srl import SrlCell, SrlRegister


@dataclass
class RuleViolation:
    """RuleViolation: see the module docstring for context."""
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


def check_lssd_rules(
    circuit: Circuit,
    clock_inputs: Sequence[str] = (),
) -> List[RuleViolation]:
    """Audit a netlist against the core LSSD design rules.

    Checked rules (Williams & Eichelberger [18], [19]):

    1. All internal storage is in shift-register latches (here: every
       ``DFF`` is assumed SRL-convertible; *latch loops in random
       logic* — combinational cycles — are violations).
    2. Latch clocks must be controllable from primary inputs: every
       declared clock must be a primary input.
    3. Clock signals may not feed latch *data* logic (no clocks mixed
       into the data path).
    4. No clock may be gated by a latch output (clocks must stay
       primary-input-controlled).
    """
    violations: List[RuleViolation] = []
    if circuit.has_combinational_cycles:
        violations.append(
            RuleViolation(
                "LSSD-1",
                "combinational feedback loops act as unscanned storage: "
                + ", ".join(circuit.cyclic_gates[:5]),
            )
        )
    for clock in clock_inputs:
        if not circuit.is_input(clock):
            violations.append(
                RuleViolation(
                    "LSSD-2", f"clock {clock!r} is not a primary input"
                )
            )
    clock_set = set(clock_inputs)
    if clock_set:
        for gate in circuit.gates:
            if gate.kind is GateType.DFF:
                continue
            touched = clock_set.intersection(gate.inputs)
            if not touched:
                continue
            # A clock reaching ordinary logic whose output feeds a DFF
            # data cone violates rule 3.
            for flop in circuit.flip_flops:
                if gate.output in circuit.input_cone(flop.inputs[0]):
                    violations.append(
                        RuleViolation(
                            "LSSD-3",
                            f"clock(s) {sorted(touched)} reach data logic "
                            f"{gate.name!r} feeding latch {flop.name!r}",
                        )
                    )
                    break
    return violations


class LssdDesign:
    """A two-clock LSSD subsystem: combinational network + SRL bank.

    Built from a plain sequential netlist: each DFF becomes an SRL whose
    D is the old flip-flop data net, whose L2 drives the old output
    net.  Clocking follows Fig. 12: a system step is C (L1 samples the
    combinational network) then B (L2 updates); a scan step is A then B.
    """

    def __init__(
        self, circuit: Circuit, chain_order: Optional[Sequence[str]] = None
    ) -> None:
        self.original = circuit
        self.core = circuit.combinational_core()
        self._core_sim = LogicSimulator(self.core)
        flops = {flop.name: flop for flop in circuit.flip_flops}
        if chain_order is None:
            chain_order = [flop.name for flop in circuit.flip_flops]
        if sorted(chain_order) != sorted(flops):
            raise ValueError("chain_order must cover every flip-flop")
        self.chain_order = list(chain_order)
        self.register = SrlRegister(
            [SrlCell(name) for name in self.chain_order]
        )
        self._data_nets = [flops[name].inputs[0] for name in self.chain_order]
        self._state_nets = [flops[name].output for name in self.chain_order]

    # -- pins -----------------------------------------------------------
    @property
    def scan_pins(self) -> Tuple[str, str, str, str]:
        """The four per-package scan lines: scan-in, scan-out, A, B."""
        return ("SCAN_IN", "SCAN_OUT", "A_CLK", "B_CLK")

    @property
    def chain_length(self) -> int:
        """Chain length."""
        return len(self.register)

    # -- operation --------------------------------------------------------
    def _settle(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        assignment = dict(inputs)
        for net, cell in zip(self._state_nets, self.register.cells):
            assignment[net] = cell.l2
        return self._core_sim.run(assignment)

    def outputs(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Primary output values for the given inputs (no clocking)."""
        net_values = self._settle(inputs)
        return {net: net_values[net] for net in self.original.outputs}

    def system_step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One C/B system clock: combinational settle, then latch."""
        net_values = self._settle(inputs)
        data = [net_values[net] for net in self._data_nets]
        self.register.system_clock(data)
        return {net: net_values[net] for net in self.original.outputs}

    def scan_shift(self, bit: int) -> int:
        """One A/B scan step; returns the bit leaving SCAN_OUT."""
        return self.register.shift(bit)

    def scan_load(self, state: Mapping[str, int]) -> None:
        """Scan load."""
        bits = [state.get(net, V.ZERO) for net in self._state_nets]
        self.register.load(bits)

    def scan_unload(self) -> Dict[str, int]:
        """Scan unload."""
        bits = self.register.unload()
        return dict(zip(self._state_nets, bits))

    def state(self) -> Dict[str, int]:
        """Current L2 values keyed by state net."""
        return dict(zip(self._state_nets, self.register.state()))

    # -- economics --------------------------------------------------------
    def overhead(self, l2_reuse_fraction: float = 0.0) -> OverheadEstimate:
        """LSSD overhead estimate at a given L2 reuse level."""
        return lssd_overhead(
            num_latches=self.chain_length,
            base_gates=len(self.original),
            l2_reuse_fraction=l2_reuse_fraction,
        )

    def apply_core_test(
        self, pattern: Mapping[str, int], fill: int = 0
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """LSSD test protocol for one combinational-core pattern.

        Load the SRLs, apply PIs, read POs, pulse C/B once to capture
        the PPOs, and unload.  Returns (observed PO values, unloaded
        next-state bits keyed by state net).
        """
        self.scan_load(
            {net: pattern.get(net, fill) for net in self._state_nets}
        )
        pis = {
            net: pattern.get(net, fill) for net in self.original.inputs
        }
        observed = self.system_step(pis)
        unloaded = self.scan_unload()
        return observed, unloaded
