"""Bridging faults (§I-A, Mei [43]).

A bridging fault shorts two nets; in the wired-logic abstraction the
short behaves as a wired-AND or wired-OR of the two signals.  The paper
notes the single stuck-at model "does not, in general, cover" bridges,
but that historically a test set with stuck-at coverage in the high 90s
also detects most of them — the benchmark regenerates that observation
by Monte-Carlo sampling bridges and fault-simulating the stuck-at set.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


class BridgeKind(enum.Enum):
    """BridgeKind: see the module docstring for context."""
    WIRED_AND = "AND"
    WIRED_OR = "OR"


@dataclass(frozen=True)
class BridgingFault:
    """A short between two distinct nets with wired-AND/OR semantics."""

    net_a: str
    net_b: str
    kind: BridgeKind

    def __post_init__(self) -> None:
        if self.net_a == self.net_b:
            raise ValueError("a bridge needs two distinct nets")
        # A short is an unordered pair: canonicalize so (a, b) and
        # (b, a) are the *same* fault — same name, same hash — and
        # dedup/cache keys can never split one defect into two.
        if self.net_a > self.net_b:
            low, high = self.net_b, self.net_a
            object.__setattr__(self, "net_a", low)
            object.__setattr__(self, "net_b", high)

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        return f"BRIDGE-{self.kind.value}({self.net_a},{self.net_b})"


def apply_bridging_fault(circuit: Circuit, fault: BridgingFault) -> Circuit:
    """Build the faulty circuit for a bridge.

    Every reader of either bridged net is rewired to read the wired
    function of both.  Feedback bridges (one net in the other's cone)
    would create a cycle — they are rejected, mirroring the industry
    habit of excluding feedback bridges from combinational analysis.
    """
    cone_a = circuit.input_cone(fault.net_a)
    cone_b = circuit.input_cone(fault.net_b)
    if fault.net_a in cone_b or fault.net_b in cone_a:
        raise ValueError(f"{fault.name} is a feedback bridge")

    wired = fresh_net_name(circuit, f"__bridge_{fault.net_a}_{fault.net_b}")
    gate_kind = GateType.AND if fault.kind is BridgeKind.WIRED_AND else GateType.OR

    faulty = Circuit(f"{circuit.name}+{fault.name}")
    for net in circuit.inputs:
        faulty.add_input(net)
    bridged = {fault.net_a, fault.net_b}

    def remap(net: str) -> str:
        """Route reads of a bridged net to the wired gate."""
        return wired if net in bridged else net

    for gate in circuit.gates:
        faulty.add_gate(
            gate.kind, [remap(n) for n in gate.inputs], gate.output, gate.name
        )
    faulty.add_gate(gate_kind, [fault.net_a, fault.net_b], wired, wired)
    emitted = set()
    for net in circuit.outputs:
        target = remap(net)
        if target in emitted:
            # Both bridged nets are primary outputs: alias the second
            # through a BUF so the output list stays duplicate-free.
            alias = fresh_net_name(faulty, f"{wired}_{net}")
            faulty.buf(target, alias, name=alias)
            target = alias
        emitted.add(target)
        faulty.add_output(target)
    faulty.validate()
    return faulty


def fresh_net_name(circuit: Circuit, base: str) -> str:
    """A name guaranteed to collide with no net or gate in ``circuit``."""
    used = set(circuit.nets()) | {gate.name for gate in circuit.gates}
    name = base
    while name in used:
        name += "_"
    return name


def random_bridges(
    circuit: Circuit, count: int, seed: int = 0, allow_fewer: bool = False
) -> List[BridgingFault]:
    """Sample distinct non-feedback bridges uniformly from the nets.

    The returned list never contains duplicates (bridges are unordered
    pairs, so ``(a, b)`` and ``(b, a)`` count as one).  When the
    attempt budget runs out before ``count`` distinct bridges are found
    the undercount is counted (``faults.bridges.undercount``) and, by
    default, raised — a silently short sample would bias every
    Monte-Carlo estimate built on it.  ``allow_fewer=True`` opts into
    the short list (the telemetry counter still fires).
    """
    from .. import telemetry

    rng = random.Random(seed)
    nets = circuit.nets()
    bridges: List[BridgingFault] = []
    seen: set = set()
    attempts = 0
    while len(bridges) < count and attempts < count * 100:
        attempts += 1
        net_a, net_b = rng.sample(nets, 2)
        kind = rng.choice((BridgeKind.WIRED_AND, BridgeKind.WIRED_OR))
        fault = BridgingFault(net_a, net_b, kind)
        if fault in seen:
            continue
        cone_a = circuit.input_cone(net_a)
        cone_b = circuit.input_cone(net_b)
        if net_a in cone_b or net_b in cone_a:
            continue
        seen.add(fault)
        bridges.append(fault)
    if len(bridges) < count:
        telemetry.incr("faults.bridges.undercount", count - len(bridges))
        if not allow_fewer:
            raise ValueError(
                f"random_bridges found only {len(bridges)} of {count} "
                f"requested distinct non-feedback bridges on "
                f"{circuit.name!r}; pass allow_fewer=True to accept a "
                f"short sample"
            )
    return bridges
