"""Fault collapsing: equivalence classes and dominance (refs [36]-[51]).

Two faults are *equivalent* when every test for one detects the other —
they induce identical faulty functions.  Structural equivalence rules
per gate (McCluskey & Clegg [41]):

* AND:  output SA0 ≡ each input SA0
* NAND: output SA1 ≡ each input SA0
* OR:   output SA1 ≡ each input SA1
* NOR:  output SA0 ≡ each input SA1
* NOT:  output SA0 ≡ input SA1, output SA1 ≡ input SA0
* BUF/DFF: output SAv ≡ input SAv
* a single-fanout stem ≡ its only branch (same line)

Collapsing shrinks the 6-per-2-input-gate universe towards the paper's
"about 3000" for 1000 gates.  The checkpoint theorem goes further:
tests detecting all faults on primary inputs and fanout branches detect
all faults in a fanout-free-region-decomposable circuit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from .stuck_at import Fault, all_faults


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Fault, Fault] = {}

    def add(self, item: Fault) -> None:
        """Register an item with itself as parent."""
        self.parent.setdefault(item, item)

    def find(self, item: Fault) -> Fault:
        """Root of the item's class, with path compression."""
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: Fault, b: Fault) -> None:
        """Merge the classes containing the two items."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def classes(self) -> List[List[Fault]]:
        """All equivalence classes as lists of members."""
        groups: Dict[Fault, List[Fault]] = {}
        for item in self.parent:
            groups.setdefault(self.find(item), []).append(item)
        return list(groups.values())


def _branch_fault(circuit: Circuit, gate_name: str, pin: int, value: int) -> Fault:
    net = circuit.gate(gate_name).inputs[pin]
    return Fault(net, value, gate=gate_name, pin=pin)


def equivalence_classes(circuit: Circuit) -> List[List[Fault]]:
    """Partition the full fault universe into structural equivalence classes."""
    universe = all_faults(circuit)
    uf = _UnionFind()
    for fault in universe:
        uf.add(fault)

    # Gate-local equivalences.
    for gate in circuit.gates:
        out = gate.output
        kind = gate.kind
        if kind in (GateType.AND, GateType.NAND):
            out_value = 0 if kind is GateType.AND else 1
            for pin in range(gate.fanin):
                uf.union(Fault(out, out_value), _branch_fault(circuit, gate.name, pin, 0))
        elif kind in (GateType.OR, GateType.NOR):
            out_value = 1 if kind is GateType.OR else 0
            for pin in range(gate.fanin):
                uf.union(Fault(out, out_value), _branch_fault(circuit, gate.name, pin, 1))
        elif kind is GateType.NOT:
            uf.union(Fault(out, 0), _branch_fault(circuit, gate.name, 0, 1))
            uf.union(Fault(out, 1), _branch_fault(circuit, gate.name, 0, 0))
        elif kind in (GateType.BUF, GateType.DFF):
            uf.union(Fault(out, 0), _branch_fault(circuit, gate.name, 0, 0))
            uf.union(Fault(out, 1), _branch_fault(circuit, gate.name, 0, 1))

    # Single-fanout stems are the same line as their lone branch.
    for net in circuit.nets():
        readers = circuit.fanout_of(net)
        is_output = net in circuit.outputs
        if len(readers) == 1 and not is_output:
            gate = readers[0]
            pin = gate.inputs.index(net)
            uf.union(Fault(net, 0), _branch_fault(circuit, gate.name, pin, 0))
            uf.union(Fault(net, 1), _branch_fault(circuit, gate.name, pin, 1))
    return uf.classes()


def _class_representative(members: Sequence[Fault], circuit: Circuit) -> Fault:
    """Prefer stem faults closest to the inputs (stable, readable)."""
    def sort_key(fault: Fault):
        """Sort key."""
        stem_rank = 0 if fault.gate is None else 1
        try:
            level = circuit.level_of(fault.net)
        except Exception:
            level = 0
        return (stem_rank, level, fault.name)

    return min(members, key=sort_key)


def collapse_faults(circuit: Circuit) -> List[Fault]:
    """One representative fault per equivalence class."""
    return [
        _class_representative(members, circuit)
        for members in equivalence_classes(circuit)
    ]


def collapse_ratio(circuit: Circuit) -> float:
    """Collapsed / uncollapsed universe size."""
    universe = all_faults(circuit)
    classes = equivalence_classes(circuit)
    return len(classes) / len(universe) if universe else 1.0


def dominance_collapse(circuit: Circuit) -> List[Fault]:
    """Equivalence collapse followed by gate-local dominance pruning.

    Fault ``a`` dominates ``b`` when every test for ``b`` also detects
    ``a``; the dominated representative suffices.  Gate-local rule: an
    AND output SA1 dominates each input SA1 (so the output fault can be
    dropped when any input-SA1 representative remains); dually for
    OR/NOR/NAND.
    """
    classes = equivalence_classes(circuit)
    representative: Dict[Fault, Fault] = {}
    for members in classes:
        rep = _class_representative(members, circuit)
        for member in members:
            representative[member] = rep

    kept: Set[Fault] = set(representative.values())
    for gate in circuit.gates:
        kind = gate.kind
        if kind in (GateType.AND, GateType.NAND):
            dominated_value = 1 if kind is GateType.AND else 0
            branch_value = 1
        elif kind in (GateType.OR, GateType.NOR):
            dominated_value = 0 if kind is GateType.OR else 1
            branch_value = 0
        else:
            continue
        out_fault = representative.get(Fault(gate.output, dominated_value))
        if out_fault is None or out_fault not in kept:
            continue
        # Output fault is dominated by any input-branch fault; drop it if
        # at least one dominating branch representative survives and the
        # output is not directly observable (POs must keep their faults).
        if gate.output in circuit.outputs:
            continue
        branch_reps = []
        for pin in range(gate.fanin):
            branch = Fault(gate.inputs[pin], branch_value, gate=gate.name, pin=pin)
            rep = representative.get(branch)
            if rep is not None and rep in kept and rep != out_fault:
                branch_reps.append(rep)
        if branch_reps:
            kept.discard(out_fault)
    return sorted(kept, key=lambda f: f.name)


def checkpoint_faults(circuit: Circuit) -> List[Fault]:
    """Checkpoint-theorem fault list: primary inputs + fanout branches.

    For an irredundant circuit, a test set detecting every checkpoint
    fault detects every stuck-at fault (To [50]).
    """
    checkpoints: List[Fault] = []
    for net in circuit.inputs:
        checkpoints.append(Fault(net, 0))
        checkpoints.append(Fault(net, 1))
    for net in circuit.nets():
        # Branches of any fanout stem are checkpoints — including the
        # branches of a fanning-out primary input.
        if circuit.fanout_count(net) > 1:
            for gate in set(circuit.fanout_of(net)):
                for pin, pin_net in enumerate(gate.inputs):
                    if pin_net != net:
                        continue
                    checkpoints.append(Fault(net, 0, gate=gate.name, pin=pin))
                    checkpoints.append(Fault(net, 1, gate=gate.name, pin=pin))
    return checkpoints
