"""Fault models: single stuck-at, collapsing, bridging, CMOS stuck-open."""

from .stuck_at import (
    Fault,
    SiteKind,
    stuck_at_0,
    stuck_at_1,
    all_faults,
    fault_universe_size,
    multiple_fault_combinations,
)
from .collapse import (
    equivalence_classes,
    collapse_faults,
    collapse_ratio,
    dominance_collapse,
    checkpoint_faults,
)
from .bridging import (
    BridgeKind,
    BridgingFault,
    apply_bridging_fault,
    fresh_net_name,
    random_bridges,
)
from .cmos import (
    CmosGate,
    Transistor,
    Network,
    CmosStuckOpenFault,
    all_cmos_stuck_open_faults,
    cmos_nand2,
    cmos_nor2,
    find_two_pattern_test,
    single_pattern_detects,
    stuck_open_floats,
)
from .models import (
    DEFAULT_BRIDGE_COUNT,
    FaultModel,
    FaultModelPlan,
    UnsupportedFaultModelError,
    plan_fault_model,
)

__all__ = [
    "Fault",
    "SiteKind",
    "stuck_at_0",
    "stuck_at_1",
    "all_faults",
    "fault_universe_size",
    "multiple_fault_combinations",
    "equivalence_classes",
    "collapse_faults",
    "collapse_ratio",
    "dominance_collapse",
    "checkpoint_faults",
    "BridgeKind",
    "BridgingFault",
    "apply_bridging_fault",
    "fresh_net_name",
    "random_bridges",
    "CmosGate",
    "Transistor",
    "Network",
    "CmosStuckOpenFault",
    "all_cmos_stuck_open_faults",
    "cmos_nand2",
    "cmos_nor2",
    "find_two_pattern_test",
    "single_pattern_detects",
    "stuck_open_floats",
    "FaultModel",
    "FaultModelPlan",
    "UnsupportedFaultModelError",
    "plan_fault_model",
    "DEFAULT_BRIDGE_COUNT",
]
