"""CMOS stuck-open faults: combinational gates turning sequential (§I-A).

The paper warns: "there are a number of faults [in CMOS] which could
change a combinational network into a sequential network.  Therefore,
the combinational patterns are no longer effective in testing the
network in all cases."

This module models a static CMOS gate at the switch level: a pull-up
network of PMOS switches and a pull-down network of NMOS switches.
A **stuck-open** transistor breaks its branch; for some inputs neither
network conducts, the output floats, and the node *retains its previous
value* — memory, i.e. sequential behaviour.  Detecting such a fault
needs a two-pattern test: an initializing pattern that sets the node,
then a pattern whose good response differs from the retained value.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


class Network(enum.Enum):
    """Network: see the module docstring for context."""
    PULL_UP = "pmos"
    PULL_DOWN = "nmos"


@dataclass(frozen=True)
class Transistor:
    """One switch: conducts when its gate input matches its polarity.

    NMOS conducts on 1; PMOS conducts on 0.
    """

    name: str
    input_name: str
    network: Network

    def conducts(self, input_bits: Dict[str, int]) -> bool:
        """True when this switch conducts for the given inputs."""
        bit = input_bits[self.input_name]
        return bit == 1 if self.network is Network.PULL_DOWN else bit == 0


class CmosGate:
    """A static CMOS gate as series/parallel switch networks.

    Each network is a list of *branches*; a branch is a series chain of
    transistors, and branches are in parallel.  The pull-down network
    connects the output to ground, the pull-up to VDD.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        pull_down_branches: Sequence[Sequence[Transistor]],
        pull_up_branches: Sequence[Sequence[Transistor]],
    ) -> None:
        self.name = name
        self.inputs = list(inputs)
        self.pull_down = [list(branch) for branch in pull_down_branches]
        self.pull_up = [list(branch) for branch in pull_up_branches]
        self.stuck_open: FrozenSet[str] = frozenset()
        self._previous: Optional[int] = None

    # -- fault control -------------------------------------------------
    def inject_stuck_open(self, transistor_name: str) -> None:
        """Inject stuck open."""
        names = {t.name for branch in self.pull_down + self.pull_up for t in branch}
        if transistor_name not in names:
            raise KeyError(f"no transistor named {transistor_name!r}")
        self.stuck_open = self.stuck_open | {transistor_name}

    def clear_faults(self) -> None:
        """Remove every injected fault."""
        self.stuck_open = frozenset()
        self._previous = None

    def all_transistors(self) -> List[Transistor]:
        """All transistors."""
        return [t for branch in self.pull_down + self.pull_up for t in branch]

    # -- evaluation ----------------------------------------------------
    def _network_conducts(
        self, branches: Sequence[Sequence[Transistor]], bits: Dict[str, int]
    ) -> bool:
        for branch in branches:
            if all(
                t.conducts(bits) and t.name not in self.stuck_open
                for t in branch
            ):
                return True
        return False

    def evaluate(self, input_bits: Dict[str, int]) -> Optional[int]:
        """Output value; ``None`` means floating with no prior value.

        When neither network conducts (possible only with a fault in a
        correctly-designed complementary gate) the output keeps its
        previous value — the sequential behaviour the paper warns about.
        """
        down = self._network_conducts(self.pull_down, input_bits)
        up = self._network_conducts(self.pull_up, input_bits)
        if down and up:
            raise ValueError(f"{self.name}: VDD-GND fight (should not happen)")
        if down:
            value: Optional[int] = 0
        elif up:
            value = 1
        else:
            value = self._previous  # charge retention: memory!
        self._previous = value
        return value

    def is_combinational_under_fault(self) -> bool:
        """False when some input leaves the faulted output floating."""
        for bits in itertools.product((0, 1), repeat=len(self.inputs)):
            assignment = dict(zip(self.inputs, bits))
            down = self._network_conducts(self.pull_down, assignment)
            up = self._network_conducts(self.pull_up, assignment)
            if not down and not up:
                return False
        return True


def cmos_nand2(name: str = "nand2") -> CmosGate:
    """Two-input CMOS NAND: series NMOS pull-down, parallel PMOS pull-up."""
    a_n = Transistor(f"{name}.NA", "A", Network.PULL_DOWN)
    b_n = Transistor(f"{name}.NB", "B", Network.PULL_DOWN)
    a_p = Transistor(f"{name}.PA", "A", Network.PULL_UP)
    b_p = Transistor(f"{name}.PB", "B", Network.PULL_UP)
    return CmosGate(name, ["A", "B"], [[a_n, b_n]], [[a_p], [b_p]])


def cmos_nor2(name: str = "nor2") -> CmosGate:
    """Two-input CMOS NOR: parallel NMOS pull-down, series PMOS pull-up."""
    a_n = Transistor(f"{name}.NA", "A", Network.PULL_DOWN)
    b_n = Transistor(f"{name}.NB", "B", Network.PULL_DOWN)
    a_p = Transistor(f"{name}.PA", "A", Network.PULL_UP)
    b_p = Transistor(f"{name}.PB", "B", Network.PULL_UP)
    return CmosGate(name, ["A", "B"], [[a_n], [b_n]], [[a_p, b_p]])


def find_two_pattern_test(
    gate: CmosGate, transistor_name: str
) -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
    """Search for an (init, detect) pattern pair for a stuck-open fault.

    Returns the first pair where, after applying ``init`` then
    ``detect``, the faulty gate's output differs from the good gate's
    response to ``detect`` — or ``None`` when no single-pair test
    exists (e.g. the fault is redundant).
    """
    good = _copy_gate(gate)
    n = len(gate.inputs)
    patterns = [
        dict(zip(gate.inputs, bits))
        for bits in itertools.product((0, 1), repeat=n)
    ]
    for init in patterns:
        for detect in patterns:
            faulty = _copy_gate(gate)
            faulty.inject_stuck_open(transistor_name)
            faulty.evaluate(init)
            faulty_out = faulty.evaluate(detect)
            good._previous = None
            good.evaluate(init)
            good_out = good.evaluate(detect)
            if faulty_out is not None and good_out is not None and faulty_out != good_out:
                return init, detect
    return None


def single_pattern_detects(gate: CmosGate, transistor_name: str) -> bool:
    """Would any *single* (state-free) pattern expose the stuck-open fault?

    Because the faulty output floats to the retained value, a lone
    pattern applied to a gate in an unknown state yields an unknown
    comparison — this returns False for genuine stuck-opens, which is
    exactly why combinational test sets are "no longer effective".
    """
    for bits in itertools.product((0, 1), repeat=len(gate.inputs)):
        assignment = dict(zip(gate.inputs, bits))
        faulty = _copy_gate(gate)
        faulty.inject_stuck_open(transistor_name)
        faulty_out = faulty.evaluate(assignment)
        good = _copy_gate(gate)
        good_out = good.evaluate(assignment)
        if faulty_out is not None and faulty_out != good_out:
            return True
    return False


def _copy_gate(gate: CmosGate) -> CmosGate:
    duplicate = CmosGate(gate.name, gate.inputs, gate.pull_down, gate.pull_up)
    return duplicate


# ----------------------------------------------------------------------
# Netlist-level stuck-open faults
#
# The switch-level CmosGate above models one gate in isolation; to grade
# stuck-opens over a whole Circuit the fault is named at the netlist
# level: (gate, network, pin).  The supported gates are the single-stage
# static CMOS primitives — NAND (series NMOS / parallel PMOS), NOR
# (parallel NMOS / series PMOS) and NOT — whose float condition is a
# plain Boolean function of the gate inputs.  Transistors in a series
# stack are equivalent (opening any of them kills the same branch), so
# the default universe collapses each stack to one fault (``pin=None``).
# ----------------------------------------------------------------------
SERIES_COLLAPSED = None  # pin value for a collapsed series-stack fault

#: Gate kinds the netlist-level stuck-open model enumerates faults on.
CMOS_SUPPORTED_KINDS = ("NAND", "NOR", "NOT")


@dataclass(frozen=True)
class CmosStuckOpenFault:
    """One stuck-open transistor in a single-stage static CMOS gate.

    ``network`` is ``"N"`` (pull-down NMOS) or ``"P"`` (pull-up PMOS);
    ``pin`` indexes the gate input whose transistor is open, or
    :data:`SERIES_COLLAPSED` for the collapsed series-stack fault.
    """

    gate: str
    network: str
    pin: Optional[int] = SERIES_COLLAPSED

    def __post_init__(self) -> None:
        if self.network not in ("N", "P"):
            raise ValueError(f"network must be 'N' or 'P', got {self.network!r}")

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        pin = "*" if self.pin is SERIES_COLLAPSED else str(self.pin)
        return f"{self.gate}/SOP-{self.network}{pin}"


def all_cmos_stuck_open_faults(circuit) -> List["CmosStuckOpenFault"]:
    """The collapsed stuck-open universe of a gate-level circuit.

    Per NAND gate: one collapsed series-NMOS fault plus one PMOS fault
    per input; per NOR gate the dual; per NOT one of each.  Gates whose
    kind is not a single-stage CMOS primitive (AND/OR/XOR/BUF/CONST/
    DFF) contribute no faults — the model covers the primitives the
    switch-level realization is defined for.
    """
    faults: List[CmosStuckOpenFault] = []
    for gate in circuit.gates:
        kind = gate.kind.value
        if kind not in CMOS_SUPPORTED_KINDS:
            continue
        if kind == "NAND":
            faults.append(CmosStuckOpenFault(gate.name, "N", SERIES_COLLAPSED))
            for pin in range(len(gate.inputs)):
                faults.append(CmosStuckOpenFault(gate.name, "P", pin))
        elif kind == "NOR":
            faults.append(CmosStuckOpenFault(gate.name, "P", SERIES_COLLAPSED))
            for pin in range(len(gate.inputs)):
                faults.append(CmosStuckOpenFault(gate.name, "N", pin))
        else:  # NOT
            faults.append(CmosStuckOpenFault(gate.name, "N", SERIES_COLLAPSED))
            faults.append(CmosStuckOpenFault(gate.name, "P", SERIES_COLLAPSED))
    return faults


def stuck_open_floats(kind: str, bits: Sequence[int], fault: "CmosStuckOpenFault") -> bool:
    """Does the faulted gate's output float for these input bits?

    ``bits`` are the gate's input values in pin order.  The output
    floats exactly when neither the faulted network (its branch
    containing the open transistor removed) nor the complementary
    network conducts — the charge-retention state the two-pattern test
    must exploit.
    """
    if kind == "NOT":
        # A NOT gate is NAND/NOR with one input; both views agree.
        (a,) = bits
        return a == 1 if fault.network == "N" else a == 0
    if kind == "NAND":
        if fault.network == "N":
            # Series stack dead: floats when pull-up is off too (all 1s).
            return all(bits)
        # PMOS on `pin` open: floats when that PMOS was the only pull-up
        # (its input 0, every other input 1) and pull-down blocked.
        return bits[fault.pin] == 0 and all(
            b == 1 for i, b in enumerate(bits) if i != fault.pin
        )
    if kind == "NOR":
        if fault.network == "P":
            return not any(bits)
        return bits[fault.pin] == 1 and all(
            b == 0 for i, b in enumerate(bits) if i != fault.pin
        )
    raise ValueError(f"no CMOS stuck-open realization for gate kind {kind!r}")
