"""Unified fault-model abstraction: one grading path for every model.

The paper's §I-A is explicit that the single stuck-at model "does not,
in general, cover" bridges, delay defects, or the CMOS stuck-open
faults that turn combinational logic sequential.  This module makes the
other models first-class citizens of every fault-simulation entry point
without touching a single engine: each non-stuck-at model **reduces to
circuit rewrite + stuck-at grading**.

The reduction is the *enable-input* construction.  For every model
fault an activation net ``en`` is driven by a CONST0 gate and a small
gadget is spliced into the circuit such that

* with ``en = 0`` (the good machine) the gadget is the identity — the
  composite computes exactly the original function;
* with ``en`` stuck at 1 the gadget realizes the model fault's faulty
  behaviour.

Grading the ordinary stem fault ``en/SA1`` on the composite is then
*equivalent* to grading the model fault on the original circuit — so
every engine (serial, deductive, parallel-fault, parallel-pattern,
WIDE), the sharded executor's bit-identical fault-axis merge, PODEM /
D-algorithm targeting, compaction and the content-addressed store all
work unchanged, because the graded objects are plain
:class:`~repro.faults.stuck_at.Fault` instances.  Because ``en`` hangs
off a CONST0 gate rather than a primary input, random patterns and
ATPG need no constraint machinery: the fault site auto-activates under
stuck-at-1 injection.

Per model:

* **bridging** — per bridge ``(a, b)`` a wired-AND/OR gate ``w`` reads
  both nets and a per-net multiplexer ``sel = en ? w : net`` replaces
  every reader (the single-bridge case is exactly
  :func:`~repro.faults.bridging.apply_bridging_fault`, which the
  differential tests hold it to).  Two individually feedback-free
  bridges can *jointly* close a combinational cycle, so the universe is
  vetted by contracting each bridged pair (union-find) and checking
  the quotient structural graph stays acyclic — sampled universes drop
  offenders (counted), explicit fault lists raise.
* **transition** — the composite is a two-frame unroll: each primary
  input ``n`` becomes ``n@1``/``n@2`` and one shipped pattern is one
  launch pair (V1, V2).  The gadget forces the frame-2 site to the
  fault's frozen value exactly when V1 establishes the initial value
  and V2 launches the transition — the
  :class:`~repro.atpg.delay.TransitionFaultSimulator` pair semantics,
  gate for gate.
* **cmos_stuck_open** — also two-frame.  The gadget replays the
  charge-retention defect: when the faulted gate's output floats under
  V2 (and was *driven* under V1 — a float under both frames is
  conservatively undetected), the frame-2 output is replaced by the
  retained frame-1 value.  Float conditions come from the switch-level
  realization in :mod:`repro.faults.cmos`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from .stuck_at import Fault, all_faults
from .collapse import collapse_faults
from .bridging import BridgeKind, BridgingFault, random_bridges
from .cmos import (
    CMOS_SUPPORTED_KINDS,
    CmosStuckOpenFault,
    all_cmos_stuck_open_faults,
)

__all__ = [
    "FaultModel",
    "UnsupportedFaultModelError",
    "FaultModelPlan",
    "plan_fault_model",
    "DEFAULT_BRIDGE_COUNT",
]

#: Default sample size for the bridging model's seeded fault universe.
DEFAULT_BRIDGE_COUNT = 32


class FaultModel(enum.Enum):
    """The fault models every fault-sim entry point accepts."""

    STUCK_AT = "stuck_at"
    BRIDGING = "bridging"
    CMOS_STUCK_OPEN = "cmos_stuck_open"
    TRANSITION = "transition"

    @classmethod
    def coerce(cls, value: Union[str, "FaultModel"]) -> "FaultModel":
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise UnsupportedFaultModelError(
                f"unknown fault model {value!r}; "
                f"available: {[m.value for m in cls]}"
            ) from None


class UnsupportedFaultModelError(ValueError):
    """A fault model was asked of a flow/engine that cannot honor it."""


@dataclass
class FaultModelPlan:
    """One model's reduction: composite circuit + gradeable fault list.

    ``circuit`` is what the engines simulate (the source itself for
    stuck-at); ``faults`` are the ordinary stuck-at faults to grade on
    it, one per entry of ``model_faults``; ``fault_names`` maps each
    graded fault back to its model fault's name.  ``two_pattern`` marks
    the two-frame models whose composite patterns are (V1, V2) pairs —
    each composite input is ``"{net}@1"`` or ``"{net}@2"``.
    """

    model: FaultModel
    source: Circuit
    circuit: Circuit
    faults: List[Fault]
    model_faults: List[Any]
    fault_names: Dict[Fault, str]
    two_pattern: bool = False
    reduction: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_reduction(self) -> bool:
        """Did this plan rewrite the circuit (non-stuck-at models)?"""
        return self.model is not FaultModel.STUCK_AT

    def model_fault_name(self, fault: Fault) -> str:
        """The model fault a graded stuck-at fault stands for."""
        return self.fault_names.get(fault, fault.name)

    def section(self) -> Dict[str, Any]:
        """The manifest's validated ``fault_model`` section."""
        data: Dict[str, Any] = {
            "model": self.model.value,
            "faults": len(self.faults),
            "reduction": None,
        }
        if self.is_reduction:
            data["reduction"] = dict(
                self.reduction,
                composite_gates=len(self.circuit.gates),
                source_gates=len(self.source.gates),
                two_pattern=self.two_pattern,
            )
        return data


# ----------------------------------------------------------------------
# Shared construction helpers
# ----------------------------------------------------------------------
class _Builder:
    """Fresh-name bookkeeping over a composite under construction."""

    def __init__(self, circuit: Circuit, used: set) -> None:
        self.circuit = circuit
        self.used = used

    def fresh(self, base: str) -> str:
        name = base
        while name in self.used:
            name += "_"
        self.used.add(name)
        return name

    def gate(self, kind: GateType, inputs: Sequence[str], base: str) -> str:
        """Add one gate on a fresh output net; returns the net name."""
        out = self.fresh(base)
        self.circuit.add_gate(kind, list(inputs), out, out)
        return out

    def reduce(self, kind: GateType, inputs: Sequence[str], base: str) -> str:
        """AND/OR of possibly one net: aliases instead of 1-input gates."""
        if len(inputs) == 1 and kind in (GateType.AND, GateType.OR):
            return inputs[0]
        return self.gate(kind, inputs, base)


def _collect_names(circuit: Circuit) -> set:
    return set(circuit.nets()) | {gate.name for gate in circuit.gates}


def _quotient_cyclic(circuit: Circuit, pairs: Sequence[Tuple[str, str]]) -> bool:
    """Would contracting each bridged pair close a combinational cycle?

    Conservative (a cyclic quotient may overapproximate), but exact for
    the gadget's dependency pattern: a bridge makes every reader of
    either net depend on the drivers of both.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    for a, b in pairs:
        parent[find(a)] = find(b)

    adjacency: Dict[str, set] = {}
    indegree: Dict[str, int] = {}
    for gate in circuit.gates:
        out = find(gate.output)
        indegree.setdefault(out, 0)
        for net in gate.inputs:
            source = find(net)
            indegree.setdefault(source, 0)
            if source == out:
                return True  # a gate inside one merged class
            if out not in adjacency.setdefault(source, set()):
                adjacency[source].add(out)
                indegree[out] += 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for succ in adjacency.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return seen != len(indegree)


# ----------------------------------------------------------------------
# Bridging
# ----------------------------------------------------------------------
def _vet_bridges(
    circuit: Circuit, bridges: Sequence[BridgingFault], sampled: bool
) -> Tuple[List[BridgingFault], int]:
    """Cycle-safe subset of a bridge universe (see module docstring).

    Sampled universes drop offenders greedily (deterministic order,
    count returned); an explicit list with an offender raises.
    """
    accepted: List[BridgingFault] = []
    pairs: List[Tuple[str, str]] = []
    dropped = 0
    for bridge in bridges:
        candidate = pairs + [(bridge.net_a, bridge.net_b)]
        if _quotient_cyclic(circuit, candidate):
            if not sampled:
                raise UnsupportedFaultModelError(
                    f"bridge {bridge.name} would close a combinational "
                    f"cycle in the composite (jointly with the other "
                    f"bridges in the list)"
                )
            dropped += 1
            continue
        pairs = candidate
        accepted.append(bridge)
    return accepted, dropped


def _build_bridging(
    circuit: Circuit, bridges: Sequence[BridgingFault], dropped: int
) -> FaultModelPlan:
    composite = Circuit(f"{circuit.name}@bridging")
    for net in circuit.inputs:
        composite.add_input(net)
    build = _Builder(composite, _collect_names(circuit))

    remap: Dict[str, str] = {}
    faults: List[Fault] = []
    fault_names: Dict[Fault, str] = {}
    for index, bridge in enumerate(bridges):
        prefix = f"__fm{index}"
        kind = (
            GateType.AND if bridge.kind is BridgeKind.WIRED_AND else GateType.OR
        )
        read_a = remap.get(bridge.net_a, bridge.net_a)
        read_b = remap.get(bridge.net_b, bridge.net_b)
        wired = build.gate(kind, [read_a, read_b], f"{prefix}_w")
        enable = build.gate(GateType.CONST0, [], f"{prefix}_en")
        disable = build.gate(GateType.NOT, [enable], f"{prefix}_nen")
        for net in (bridge.net_a, bridge.net_b):
            keep = build.gate(
                GateType.AND, [remap.get(net, net), disable], f"{prefix}_keep"
            )
            take = build.gate(GateType.AND, [wired, enable], f"{prefix}_take")
            remap[net] = build.gate(GateType.OR, [keep, take], f"{prefix}_sel")
        graded = Fault(enable, 1)
        faults.append(graded)
        fault_names[graded] = bridge.name

    for gate in circuit.gates:
        composite.add_gate(
            gate.kind,
            [remap.get(net, net) for net in gate.inputs],
            gate.output,
            gate.name,
        )
    for net in circuit.outputs:
        composite.add_output(remap.get(net, net))
    composite.validate()
    return FaultModelPlan(
        model=FaultModel.BRIDGING,
        source=circuit,
        circuit=composite,
        faults=faults,
        model_faults=list(bridges),
        fault_names=fault_names,
        two_pattern=False,
        reduction={"bridges": len(bridges), "cycle_dropped": dropped},
    )


# ----------------------------------------------------------------------
# Two-frame unroll (shared by transition and cmos_stuck_open)
# ----------------------------------------------------------------------
def _unroll_two_frames(circuit: Circuit, name: str) -> Circuit:
    """Two independent frame copies; nets suffixed ``@1`` / ``@2``.

    Frame 2's gate *inputs* are left un-suffixed-remapped by the
    caller's gadget pass — this helper only lays down both fault-free
    frames; gadget selection nets are spliced in afterwards by
    rebuilding frame 2 (see the builders).
    """
    composite = Circuit(name)
    for net in circuit.inputs:
        composite.add_input(f"{net}@1")
        composite.add_input(f"{net}@2")
    for gate in circuit.gates:
        composite.add_gate(
            gate.kind,
            [f"{net}@1" for net in gate.inputs],
            f"{gate.output}@1",
            f"{gate.name}@1",
        )
    return composite


def _build_transition(circuit: Circuit, tfaults: Sequence[Any]) -> FaultModelPlan:
    from ..atpg.delay import Edge, TransitionFault

    composite = _unroll_two_frames(circuit, f"{circuit.name}@transition")
    build = _Builder(
        composite,
        {f"{n}@{f}" for n in circuit.nets() for f in (1, 2)}
        | {f"{g.name}@{f}" for g in circuit.gates for f in (1, 2)},
    )

    remap: Dict[str, str] = {}  # frame-2 net -> gadget-selected net
    faults: List[Fault] = []
    fault_names: Dict[Fault, str] = {}
    for index, tfault in enumerate(tfaults):
        prefix = f"__fm{index}"
        site1 = f"{tfault.net}@1"
        site2 = f"{tfault.net}@2"
        cur = remap.get(site2, site2)
        enable = build.gate(GateType.CONST0, [], f"{prefix}_en")
        if tfault.edge is Edge.RISE:
            # Activate when V1 holds 0 and V2 launches 1; the frozen
            # frame-2 value is 0, so selection is an AND mask.
            init_ok = build.gate(GateType.NOT, [site1], f"{prefix}_i")
            cond = build.gate(GateType.AND, [init_ok, cur], f"{prefix}_c")
            active = build.gate(GateType.AND, [enable, cond], f"{prefix}_act")
            off = build.gate(GateType.NOT, [active], f"{prefix}_nact")
            sel = build.gate(GateType.AND, [cur, off], f"{prefix}_sel")
        else:
            # Slow-to-fall: V1 holds 1, V2 launches 0, frozen value 1.
            launch_ok = build.gate(GateType.NOT, [cur], f"{prefix}_l")
            cond = build.gate(GateType.AND, [site1, launch_ok], f"{prefix}_c")
            active = build.gate(GateType.AND, [enable, cond], f"{prefix}_act")
            sel = build.gate(GateType.OR, [cur, active], f"{prefix}_sel")
        remap[site2] = sel
        graded = Fault(enable, 1)
        faults.append(graded)
        fault_names[graded] = tfault.name

    for gate in circuit.gates:
        composite.add_gate(
            gate.kind,
            [remap.get(f"{net}@2", f"{net}@2") for net in gate.inputs],
            f"{gate.output}@2",
            f"{gate.name}@2",
        )
    for net in circuit.outputs:
        frame2 = f"{net}@2"
        composite.add_output(remap.get(frame2, frame2))
    composite.validate()
    return FaultModelPlan(
        model=FaultModel.TRANSITION,
        source=circuit,
        circuit=composite,
        faults=faults,
        model_faults=list(tfaults),
        fault_names=fault_names,
        two_pattern=True,
        reduction={"transition_faults": len(tfaults)},
    )


# ----------------------------------------------------------------------
# CMOS stuck-open
# ----------------------------------------------------------------------
def _float_net(
    build: _Builder,
    kind: str,
    pins: List[str],
    fault: CmosStuckOpenFault,
    base: str,
) -> str:
    """Structural float condition (mirrors cmos.stuck_open_floats)."""
    if kind == "NOT":
        (pin,) = pins
        if fault.network == "N":
            return pin
        return build.gate(GateType.NOT, [pin], base)
    if kind == "NAND":
        if fault.network == "N":
            return build.reduce(GateType.AND, pins, base)
        conducts_down = build.reduce(GateType.AND, pins, f"{base}_d")
        others = [p for i, p in enumerate(pins) if i != fault.pin]
        inverted = [
            build.gate(GateType.NOT, [p], f"{base}_n{i}")
            for i, p in enumerate(others)
        ]
        conducts_up = build.reduce(GateType.OR, inverted, f"{base}_u")
        return build.gate(GateType.NOR, [conducts_down, conducts_up], base)
    if kind == "NOR":
        if fault.network == "P":
            return build.gate(GateType.NOR, pins, base)
        conducts_up = build.gate(GateType.NOR, pins, f"{base}_u")
        others = [p for i, p in enumerate(pins) if i != fault.pin]
        conducts_down = build.reduce(GateType.OR, others, f"{base}_d")
        return build.gate(GateType.NOR, [conducts_down, conducts_up], base)
    raise UnsupportedFaultModelError(
        f"no CMOS stuck-open realization for gate kind {kind!r}"
    )


def _build_cmos(
    circuit: Circuit, cfaults: Sequence[CmosStuckOpenFault]
) -> FaultModelPlan:
    gate_by_name = {gate.name: gate for gate in circuit.gates}
    for fault in cfaults:
        gate = gate_by_name.get(fault.gate)
        if gate is None:
            raise UnsupportedFaultModelError(
                f"{fault.name}: no gate named {fault.gate!r} in "
                f"{circuit.name!r}"
            )
        if gate.kind.value not in CMOS_SUPPORTED_KINDS:
            raise UnsupportedFaultModelError(
                f"{fault.name}: gate kind {gate.kind.value} has no "
                f"single-stage CMOS realization "
                f"(supported: {CMOS_SUPPORTED_KINDS})"
            )

    composite = _unroll_two_frames(circuit, f"{circuit.name}@cmos_stuck_open")
    build = _Builder(
        composite,
        {f"{n}@{f}" for n in circuit.nets() for f in (1, 2)}
        | {f"{g.name}@{f}" for g in circuit.gates for f in (1, 2)},
    )

    remap: Dict[str, str] = {}
    faults: List[Fault] = []
    fault_names: Dict[Fault, str] = {}
    for index, cfault in enumerate(cfaults):
        prefix = f"__fm{index}"
        gate = gate_by_name[cfault.gate]
        kind = gate.kind.value
        pins1 = [f"{net}@1" for net in gate.inputs]
        pins2 = [remap.get(f"{net}@2", f"{net}@2") for net in gate.inputs]
        float1 = _float_net(build, kind, pins1, cfault, f"{prefix}_f1")
        float2 = _float_net(build, kind, pins2, cfault, f"{prefix}_f2")
        enable = build.gate(GateType.CONST0, [], f"{prefix}_en")
        # Retained value is trustworthy only when V1 *drove* the node:
        # a float under both frames is conservatively undetected.
        driven1 = build.gate(GateType.NOT, [float1], f"{prefix}_d1")
        active = build.gate(
            GateType.AND, [enable, float2, driven1], f"{prefix}_act"
        )
        out1 = f"{gate.output}@1"
        out2 = remap.get(f"{gate.output}@2", f"{gate.output}@2")
        retain = build.gate(GateType.AND, [out1, active], f"{prefix}_ret")
        off = build.gate(GateType.NOT, [active], f"{prefix}_nact")
        keep = build.gate(GateType.AND, [out2, off], f"{prefix}_keep")
        sel = build.gate(GateType.OR, [retain, keep], f"{prefix}_sel")
        remap[f"{gate.output}@2"] = sel
        graded = Fault(enable, 1)
        faults.append(graded)
        fault_names[graded] = cfault.name

    for gate in circuit.gates:
        composite.add_gate(
            gate.kind,
            [remap.get(f"{net}@2", f"{net}@2") for net in gate.inputs],
            f"{gate.output}@2",
            f"{gate.name}@2",
        )
    for net in circuit.outputs:
        frame2 = f"{net}@2"
        composite.add_output(remap.get(frame2, frame2))
    composite.validate()
    return FaultModelPlan(
        model=FaultModel.CMOS_STUCK_OPEN,
        source=circuit,
        circuit=composite,
        faults=faults,
        model_faults=list(cfaults),
        fault_names=fault_names,
        two_pattern=True,
        reduction={"stuck_open_faults": len(cfaults)},
    )


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
def plan_fault_model(
    circuit: Circuit,
    fault_model: Union[str, FaultModel] = FaultModel.STUCK_AT,
    faults: Optional[Sequence[Any]] = None,
    collapse: bool = True,
    seed: int = 0,
    bridge_count: int = DEFAULT_BRIDGE_COUNT,
) -> FaultModelPlan:
    """Resolve a fault model to a gradeable (circuit, fault list) pair.

    ``faults`` is a model-typed fault list — ``Fault`` for stuck-at,
    ``BridgingFault``, ``TransitionFault`` or ``CmosStuckOpenFault``
    for the others; ``None`` takes each model's default universe
    (collapsed stuck-at list, ``bridge_count`` seeded bridges, two
    transition faults per net, the collapsed stuck-open universe).
    ``seed`` only affects the sampled bridging default.  Non-stuck-at
    models require a combinational circuit (scan flows pass the
    extracted core).
    """
    model = FaultModel.coerce(fault_model)
    if model is FaultModel.STUCK_AT:
        if faults is None:
            fault_list = (
                collapse_faults(circuit) if collapse else all_faults(circuit)
            )
        else:
            fault_list = list(faults)
        return FaultModelPlan(
            model=model,
            source=circuit,
            circuit=circuit,
            faults=fault_list,
            model_faults=list(fault_list),
            fault_names={fault: fault.name for fault in fault_list},
        )
    if not circuit.is_combinational:
        raise UnsupportedFaultModelError(
            f"fault model {model.value!r} needs a combinational circuit; "
            f"{circuit.name!r} is sequential (scan flows grade the "
            f"extracted combinational core)"
        )
    if model is FaultModel.BRIDGING:
        sampled = faults is None
        if sampled:
            bridges: Sequence[BridgingFault] = random_bridges(
                circuit, bridge_count, seed=seed, allow_fewer=True
            )
        else:
            bridges = list(faults)
            for bridge in bridges:
                if not isinstance(bridge, BridgingFault):
                    raise UnsupportedFaultModelError(
                        f"bridging fault list entries must be "
                        f"BridgingFault, got {type(bridge).__name__}"
                    )
        vetted, dropped = _vet_bridges(circuit, bridges, sampled)
        return _build_bridging(circuit, vetted, dropped)
    if model is FaultModel.TRANSITION:
        from ..atpg.delay import TransitionFault, all_transition_faults

        if faults is None:
            tfaults: Sequence[Any] = all_transition_faults(circuit)
        else:
            tfaults = list(faults)
            for tfault in tfaults:
                if not isinstance(tfault, TransitionFault):
                    raise UnsupportedFaultModelError(
                        f"transition fault list entries must be "
                        f"TransitionFault, got {type(tfault).__name__}"
                    )
        return _build_transition(circuit, tfaults)
    cfaults = (
        all_cmos_stuck_open_faults(circuit) if faults is None else list(faults)
    )
    for cfault in cfaults:
        if not isinstance(cfault, CmosStuckOpenFault):
            raise UnsupportedFaultModelError(
                f"cmos_stuck_open fault list entries must be "
                f"CmosStuckOpenFault, got {type(cfault).__name__}"
            )
    return _build_cmos(circuit, cfaults)
