"""The single Stuck-At fault model (paper §I-A).

A fault fixes one *line* to logic 0 or 1.  Lines are either a gate
output net (a **stem**) or one gate's view of an input net (a
**branch**); on a fanout stem the branches are distinct fault sites —
a stuck branch leaves the other readers of the net healthy.

The universe enumerated here matches the paper's arithmetic: a circuit
of 1000 two-input gates has 6000 single stuck-at faults (2 per output
line + 2 per input pin), before collapsing brings the number to be
simulated down to "about 3000".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


class SiteKind(enum.Enum):
    """SiteKind: see the module docstring for context."""
    STEM = "stem"
    BRANCH = "branch"


@dataclass(frozen=True)
class Fault:
    """One single stuck-at fault.

    ``net`` is the affected net.  For a branch fault, ``gate`` and
    ``pin`` identify which reader's input line is stuck; for a stem
    fault both are ``None`` and the net itself (the driver's output or
    the primary input) is stuck.
    """

    net: str
    value: int  # 0 => stuck-at-0, 1 => stuck-at-1
    gate: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        if (self.gate is None) != (self.pin is None):
            raise ValueError("branch faults need both gate and pin")

    @property
    def kind(self) -> SiteKind:
        """Whether this is a stem or branch fault site."""
        return SiteKind.STEM if self.gate is None else SiteKind.BRANCH

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        if self.gate is None:
            return f"{self.net}/SA{self.value}"
        return f"{self.gate}.in{self.pin}({self.net})/SA{self.value}"

    def __str__(self) -> str:
        return self.name


def stuck_at_0(net: str) -> Fault:
    """Stuck at 0."""
    return Fault(net, 0)


def stuck_at_1(net: str) -> Fault:
    """Stuck at 1."""
    return Fault(net, 1)


def all_faults(circuit: Circuit, include_flip_flops: bool = True) -> List[Fault]:
    """Enumerate the complete uncollapsed single stuck-at universe.

    Two faults per primary input stem, per gate output stem, and per
    gate input branch.  Constant generators get output faults only.
    """
    faults: List[Fault] = []
    for net in circuit.inputs:
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for gate in circuit.gates:
        if gate.kind is GateType.DFF and not include_flip_flops:
            continue
        faults.append(Fault(gate.output, 0))
        faults.append(Fault(gate.output, 1))
        for pin, net in enumerate(gate.inputs):
            faults.append(Fault(net, 0, gate=gate.name, pin=pin))
            faults.append(Fault(net, 1, gate=gate.name, pin=pin))
    return faults


def fault_universe_size(circuit: Circuit) -> int:
    """Size of the uncollapsed fault universe (cheap, no enumeration)."""
    total = 2 * len(circuit.inputs)
    for gate in circuit.gates:
        total += 2 + 2 * gate.fanin
    return total


def multiple_fault_combinations(num_nets: int) -> int:
    """All good/SA0/SA1 combinations over N nets: ``3**N - 1`` faulty.

    The paper's §I-A argument: a 100-net network has ~5e47 multiple
    fault combinations, which is why industry clings to the *single*
    stuck-at assumption.
    """
    return 3 ** num_nets - 1
