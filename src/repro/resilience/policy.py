"""Failure policies, retry/backoff schedules, and failure records.

The paper argues a system is only trustworthy when its failure modes
are *designed*: enumerated, bounded, observable.  This module gives the
execution stack (sharded fault simulation, campaign orchestration) the
vocabulary for that design:

* :class:`FailurePolicy` — what a layer does with a fault that survives
  every retry: ``raise`` (propagate, the conservative default),
  ``quarantine`` (narrow the failure to the smallest unit, exclude it,
  and report it in the run manifest's ``failures`` section), or
  ``degrade`` (exclude the whole failing unit without narrowing).
* :class:`RetryPolicy` — bounded retries with jittered exponential
  backoff.  Delays are a pure function of ``(seed, site, attempt)`` so
  runs are reproducible, and the ``sleep``/``clock`` hooks are
  injectable so tests never actually wait.
* :class:`FailureRecord` — the manifest-ready description of one
  permanent failure (site, error class, traceback digest, attempts,
  action taken), the row format validated by
  :func:`repro.telemetry.validate_manifest`.
"""

from __future__ import annotations

import enum
import hashlib
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

__all__ = [
    "FailurePolicy",
    "RetryPolicy",
    "FailureRecord",
    "failure_record",
    "traceback_digest",
]


class FailurePolicy(enum.Enum):
    """What to do with a unit of work that fails deterministically.

    ``RAISE`` propagates the error (fail the whole run — the default
    everywhere, so opting into degradation is always explicit).
    ``QUARANTINE`` narrows the failure to the smallest failing subset
    (bisection where the unit is divisible), excludes only that, and
    records it.  ``DEGRADE`` excludes the whole failing unit without
    narrowing — cheaper, coarser.
    """

    RAISE = "raise"
    QUARANTINE = "quarantine"
    DEGRADE = "degrade"

    @classmethod
    def coerce(cls, value: Union[str, "FailurePolicy"]) -> "FailurePolicy":
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown failure policy {value!r}; "
                f"available: {[p.value for p in cls]}"
            ) from None


@dataclass
class RetryPolicy:
    """Bounded retries with deterministic jittered exponential backoff.

    ``max_retries`` is the number of *re*-attempts after the first try
    (0 disables retrying).  The delay before re-attempt ``attempt``
    (0-based) is ``min(max_delay_s, base_delay_s * multiplier**attempt)``
    scaled by a jitter factor in ``[1 - jitter, 1]`` drawn from an RNG
    seeded with ``(seed, site, attempt)`` — a pure function of its
    inputs, so two runs of the same campaign back off identically while
    distinct sites still decorrelate.

    ``sleep`` is injectable: tests pass a recording no-op so retry
    schedules are asserted, not waited for.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay_for(self, site: str, attempt: int) -> float:
        """The backoff delay (seconds) before re-attempt ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(
            self.max_delay_s, self.base_delay_s * (self.multiplier ** attempt)
        )
        if not self.jitter:
            return raw
        rng = random.Random(f"{self.seed}:{site}:{attempt}")
        return raw * (1.0 - self.jitter * rng.random())

    def wait(self, site: str, attempt: int) -> float:
        """Sleep the backoff delay for ``(site, attempt)``; returns it."""
        delay = self.delay_for(site, attempt)
        self.sleep(delay)
        return delay

    def wait_until(
        self, site: str, attempt: int, deadline: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> bool:
        """Deadline-bounded backoff: sleep, but never past ``deadline``.

        The service client's reconnect loop uses this: retries are
        bounded by a wall-clock budget (a restarting daemon can take
        seconds, so a fixed attempt count is the wrong unit), while the
        delays themselves stay the policy's deterministic jittered
        schedule.  ``deadline`` is a ``clock()`` timestamp.  Returns
        False — without sleeping — when the deadline has already
        passed; otherwise sleeps ``min(delay, time remaining)`` and
        returns True.
        """
        remaining = deadline - clock()
        if remaining <= 0:
            return False
        self.sleep(min(self.delay_for(site, attempt), remaining))
        return True


def traceback_digest(exc: BaseException) -> str:
    """Short stable digest of an exception's formatted traceback.

    Lets two failures be recognized as "the same crash" across runs and
    machines without shipping multi-kilobyte tracebacks into manifests.
    """
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass
class FailureRecord:
    """Manifest-ready description of one permanent failure.

    ``site`` names the failing unit (``"shard:3"``, ``"cell:c17:..."``),
    ``action`` is what the failure policy did (``"quarantine"`` /
    ``"degrade"``), ``attempts`` counts every try including the first,
    and ``detail`` carries unit-specific context (quarantined fault
    names, shard index, ...).
    """

    site: str
    error: str
    message: str
    digest: str
    attempts: int
    action: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe row for the manifest ``failures`` section."""
        return {
            "site": self.site,
            "error": self.error,
            "message": self.message,
            "digest": self.digest,
            "attempts": self.attempts,
            "action": self.action,
            "detail": dict(self.detail),
        }


def failure_record(
    site: str,
    exc: BaseException,
    attempts: int,
    action: str,
    detail: Optional[Dict[str, Any]] = None,
) -> FailureRecord:
    """Build a :class:`FailureRecord` from a caught exception."""
    return FailureRecord(
        site=site,
        error=type(exc).__name__,
        message=str(exc),
        digest=traceback_digest(exc),
        attempts=attempts,
        action=action,
        detail=dict(detail or {}),
    )
