"""Chaos injection: deliberately break the execution stack, on a seed.

The paper's fault-model philosophy — you only trust a tester you have
watched detect injected faults — applied to this repo's own software.
A :class:`ChaosConfig` describes *which* faults to inject and *how
often*; every decision is a pure function of ``(seed, site, attempt)``,
so a chaos run is exactly reproducible and a failing seed is a
permanent regression test.

Fault kinds:

* **worker crash** — the forked shard worker calls ``os._exit`` (the
  supervisor must see EOF on the result pipe and retry);
* **worker hang** — the worker sleeps past the supervision timeout
  (the supervisor must terminate it and retry);
* **worker exception** — the shard task raises :class:`ChaosError`
  (must travel back over the pipe and trigger a retry);
* **poisoned faults / cells** — a named fault or campaign cell fails
  *deterministically*, in workers and in-process alike (exercises
  bisection and quarantine, the paths retries cannot heal);
* **file corruption** — a just-written store artifact or campaign
  checkpoint is truncated mid-JSON (the reader must quarantine or
  rebuild, never crash);
* **service faults** (the ``repro.service`` daemon's own failure
  modes): a client connection dropped mid-stream (the client must
  resume by ``job_id`` + last-seen ``seq``), a lane's cell worker
  killed or hung (one retry-budget attempt, charged once), the daemon
  SIGKILLed between cells (restart recovery must replay the job
  journal), and the job journal's tail torn mid-line (replay must skip
  it with a counter, never raise).

By default rates apply only to a site's *first* attempt
(``first_attempt_only=True``), so retries heal every transient fault
and end-to-end chaos tests can assert results bit-identical to the
fault-free run.  Set ``first_attempt_only=False`` to keep failing
through the retry budget and exercise the in-process fallback.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Tuple, Union

from .. import telemetry

__all__ = [
    "ChaosError",
    "PoisonedFaultError",
    "ChaosConfig",
    "corrupt_json_file",
    "corrupt_tail",
]


class ChaosError(RuntimeError):
    """A deliberately injected failure."""


class PoisonedFaultError(ChaosError):
    """An injected *deterministic* failure tied to a fault or cell."""


def corrupt_json_file(
    path: Union[str, Path], seed: int = 0, mode: str = "truncate"
) -> None:
    """Corrupt a JSON file in place (torn write / bit-rot simulation).

    ``truncate`` cuts the file at a seed-chosen interior byte (the
    classic power-loss torn write); ``garbage`` overwrites it with
    non-JSON bytes.  Missing files are ignored — the race where the
    victim disappeared first is itself a valid chaos outcome.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return
    rng = random.Random(f"{seed}:{path.name}")
    if mode == "truncate":
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
        path.write_bytes(data[:cut])
    elif mode == "garbage":
        path.write_bytes(b"\x00chaos\xff" + bytes(rng.randrange(256) for _ in range(16)))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_tail(path: Union[str, Path], seed: int = 0) -> bool:
    """Tear the *final line* of a journal file (power-loss mid-append).

    Cuts a seed-chosen number of bytes off the end of the last line so
    earlier lines stay intact — exactly the failure a crash during an
    ``O_APPEND`` write leaves behind.  Returns False (no-op) when the
    file is missing or has no final line to tear.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return False
    stripped = data.rstrip(b"\n")
    if not stripped:
        return False
    last_start = stripped.rfind(b"\n") + 1
    last_line = stripped[last_start:]
    if len(last_line) < 2:
        return False
    rng = random.Random(f"{seed}:tail:{path.name}")
    keep = rng.randrange(1, len(last_line))
    path.write_bytes(stripped[:last_start] + last_line[:keep])
    return True


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded description of which software faults to inject, where.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    ``(seed, site, attempt)``; with ``first_attempt_only`` (default)
    they apply only to ``attempt == 0`` so every injected transient
    fault is healed by one retry.  ``poison_faults`` / ``poison_cells``
    name units that fail deterministically on every attempt.

    The ``drop_client_rate`` / ``lane_kill_rate`` / ``lane_hang_rate``
    / ``daemon_kill_after_cells`` / ``corrupt_journal_rate`` knobs
    target the :mod:`repro.service` daemon itself — see the module doc
    and :mod:`repro.service.server` for where each one bites.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    corrupt_store_rate: float = 0.0
    corrupt_checkpoint_rate: float = 0.0
    hang_s: float = 30.0
    first_attempt_only: bool = True
    poison_faults: Tuple[str, ...] = ()
    poison_cells: Tuple[str, ...] = ()
    #: Drop (abort) a client connection mid-stream with this
    #: probability, decided per ``(job, seq, drop-attempt)``; with
    #: ``first_attempt_only`` a job is dropped at most once, so a
    #: resuming client always gets through on the retry.
    drop_client_rate: float = 0.0
    #: Kill a lane's cell worker (``os._exit`` in a process backend,
    #: an exception in the inline path) on the cell's first attempt.
    lane_kill_rate: float = 0.0
    #: Hang a lane's cell worker past the service's cell deadline.
    lane_hang_rate: float = 0.0
    #: SIGKILL the daemon (``os._exit(137)``) after this many cold
    #: cells complete — the "power loss between cells" scenario the
    #: job journal must recover from.  None disables.
    daemon_kill_after_cells: Optional[int] = None
    #: Tear the jobs-journal tail mid-line after an append with this
    #: probability (decided per append sequence number).
    corrupt_journal_rate: float = 0.0

    # ------------------------------------------------------------------
    # Decisions (pure functions of seed/site/attempt)
    # ------------------------------------------------------------------
    def _rng(self, site: str, attempt: int) -> random.Random:
        return random.Random(f"{self.seed}:{site}:{attempt}")

    def decide(self, site: str, attempt: int) -> Optional[str]:
        """Which worker fault (if any) to inject at this site/attempt.

        Draws are made in a fixed order (crash, hang, exception) so a
        given seed always injects the same fault at the same site.
        """
        if self.first_attempt_only and attempt > 0:
            return None
        rng = self._rng(site, attempt)
        for kind, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("exception", self.exception_rate),
        ):
            if rate and rng.random() < rate:
                return kind
        return None

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def inject_worker(self, site: str, attempt: int) -> None:
        """Maybe crash/hang/raise — called inside a *forked worker* only.

        Never call this from the orchestrating process: the crash kind
        is a real ``os._exit``.
        """
        kind = self.decide(site, attempt)
        if kind is None:
            return
        if kind == "crash":
            os._exit(23)
        if kind == "hang":
            time.sleep(self.hang_s)
            return
        raise ChaosError(f"injected worker exception at {site} attempt {attempt}")

    def inject_inline(self, site: str, attempt: int) -> None:
        """Maybe raise :class:`ChaosError` — safe in the parent process.

        Crash/hang rates are folded into exceptions here: an inline
        site can only fail by raising (the retry loop above it is what
        is under test).
        """
        kind = self.decide(site, attempt)
        if kind is not None:
            raise ChaosError(
                f"injected {kind} (as exception) at {site} attempt {attempt}"
            )

    def check_poison_faults(self, faults: Iterable[Any]) -> None:
        """Raise if any fault in the list is poisoned (deterministic)."""
        if not self.poison_faults:
            return
        for fault in faults:
            name = getattr(fault, "name", str(fault))
            if name in self.poison_faults:
                raise PoisonedFaultError(f"poisoned fault {name}")

    def check_poison_cell(self, cell_id: str) -> None:
        """Raise if the campaign cell is poisoned (deterministic)."""
        if cell_id in self.poison_cells:
            raise PoisonedFaultError(f"poisoned cell {cell_id}")

    def maybe_corrupt(
        self, site: str, path: Union[str, Path], rate: float, attempt: int = 0
    ) -> bool:
        """Corrupt ``path`` with probability ``rate`` for this site.

        Returns True when corruption was injected (also counted as
        ``chaos.corrupted`` so harness activity is observable).
        """
        if self.first_attempt_only and attempt > 0:
            return False
        if not rate or self._rng(f"corrupt:{site}", attempt).random() >= rate:
            return False
        corrupt_json_file(path, seed=self.seed)
        telemetry.incr("chaos.corrupted")
        return True

    # ------------------------------------------------------------------
    # Service (daemon) faults
    # ------------------------------------------------------------------
    def decide_lane(self, site: str, attempt: int) -> Optional[str]:
        """Which lane-worker fault (if any) to inject for this cell.

        Draw order is fixed (kill, hang) so a seed's injections are
        stable; ``first_attempt_only`` heals every injection on the
        cell's first retry.
        """
        if self.first_attempt_only and attempt > 0:
            return None
        rng = self._rng(f"lane:{site}", attempt)
        for kind, rate in (
            ("kill", self.lane_kill_rate),
            ("hang", self.lane_hang_rate),
        ):
            if rate and rng.random() < rate:
                return kind
        return None

    def inject_lane_worker(self, site: str, attempt: int) -> None:
        """Kill/hang the *cell worker child* — never call in the daemon."""
        kind = self.decide_lane(site, attempt)
        if kind is None:
            return
        if kind == "kill":
            os._exit(23)
        time.sleep(self.hang_s)

    def inject_lane_inline(self, site: str, attempt: int) -> None:
        """Lane fault as an exception — for cells run in the lane thread."""
        kind = self.decide_lane(site, attempt)
        if kind is not None:
            raise ChaosError(
                f"injected lane {kind} (as exception) at {site} "
                f"attempt {attempt}"
            )

    def decide_drop_client(self, job_id: str, seq: int, attempt: int) -> bool:
        """Abort the client connection before streaming event ``seq``?

        ``attempt`` counts how often this job's stream has already been
        dropped, so with ``first_attempt_only`` the post-resume replay
        of the very same ``(job, seq)`` is never dropped again.
        """
        if self.first_attempt_only and attempt > 0:
            return False
        if not self.drop_client_rate:
            return False
        rng = self._rng(f"drop:{job_id}:{seq}", attempt)
        return rng.random() < self.drop_client_rate

    def maybe_corrupt_journal(
        self, path: Union[str, Path], sequence: int
    ) -> bool:
        """Tear the journal tail with probability ``corrupt_journal_rate``.

        ``sequence`` is the append number, so each journal write rolls
        its own independent dice.  Returns True when a tear happened
        (counted as ``chaos.corrupted``).
        """
        rate = self.corrupt_journal_rate
        if not rate or self._rng(f"journal:{sequence}", 0).random() >= rate:
            return False
        if corrupt_tail(path, seed=self.seed):
            telemetry.incr("chaos.corrupted")
            return True
        return False

    def maybe_corrupt_store(self, key: str, path: Union[str, Path]) -> bool:
        """Store-artifact corruption hook (rate ``corrupt_store_rate``)."""
        return self.maybe_corrupt(f"store:{key[:12]}", path, self.corrupt_store_rate)

    def maybe_corrupt_checkpoint(
        self, path: Union[str, Path], sequence: int
    ) -> bool:
        """Checkpoint corruption hook (rate ``corrupt_checkpoint_rate``).

        ``sequence`` is the write number, so each of a campaign's many
        checkpoint rewrites rolls its own independent dice.
        """
        return self.maybe_corrupt(
            f"checkpoint:{sequence}", path, self.corrupt_checkpoint_rate
        )
