"""Chaos injection: deliberately break the execution stack, on a seed.

The paper's fault-model philosophy — you only trust a tester you have
watched detect injected faults — applied to this repo's own software.
A :class:`ChaosConfig` describes *which* faults to inject and *how
often*; every decision is a pure function of ``(seed, site, attempt)``,
so a chaos run is exactly reproducible and a failing seed is a
permanent regression test.

Fault kinds:

* **worker crash** — the forked shard worker calls ``os._exit`` (the
  supervisor must see EOF on the result pipe and retry);
* **worker hang** — the worker sleeps past the supervision timeout
  (the supervisor must terminate it and retry);
* **worker exception** — the shard task raises :class:`ChaosError`
  (must travel back over the pipe and trigger a retry);
* **poisoned faults / cells** — a named fault or campaign cell fails
  *deterministically*, in workers and in-process alike (exercises
  bisection and quarantine, the paths retries cannot heal);
* **file corruption** — a just-written store artifact or campaign
  checkpoint is truncated mid-JSON (the reader must quarantine or
  rebuild, never crash).

By default rates apply only to a site's *first* attempt
(``first_attempt_only=True``), so retries heal every transient fault
and end-to-end chaos tests can assert results bit-identical to the
fault-free run.  Set ``first_attempt_only=False`` to keep failing
through the retry budget and exercise the in-process fallback.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Tuple, Union

from .. import telemetry

__all__ = [
    "ChaosError",
    "PoisonedFaultError",
    "ChaosConfig",
    "corrupt_json_file",
]


class ChaosError(RuntimeError):
    """A deliberately injected failure."""


class PoisonedFaultError(ChaosError):
    """An injected *deterministic* failure tied to a fault or cell."""


def corrupt_json_file(
    path: Union[str, Path], seed: int = 0, mode: str = "truncate"
) -> None:
    """Corrupt a JSON file in place (torn write / bit-rot simulation).

    ``truncate`` cuts the file at a seed-chosen interior byte (the
    classic power-loss torn write); ``garbage`` overwrites it with
    non-JSON bytes.  Missing files are ignored — the race where the
    victim disappeared first is itself a valid chaos outcome.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return
    rng = random.Random(f"{seed}:{path.name}")
    if mode == "truncate":
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
        path.write_bytes(data[:cut])
    elif mode == "garbage":
        path.write_bytes(b"\x00chaos\xff" + bytes(rng.randrange(256) for _ in range(16)))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded description of which software faults to inject, where.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    ``(seed, site, attempt)``; with ``first_attempt_only`` (default)
    they apply only to ``attempt == 0`` so every injected transient
    fault is healed by one retry.  ``poison_faults`` / ``poison_cells``
    name units that fail deterministically on every attempt.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    corrupt_store_rate: float = 0.0
    corrupt_checkpoint_rate: float = 0.0
    hang_s: float = 30.0
    first_attempt_only: bool = True
    poison_faults: Tuple[str, ...] = ()
    poison_cells: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Decisions (pure functions of seed/site/attempt)
    # ------------------------------------------------------------------
    def _rng(self, site: str, attempt: int) -> random.Random:
        return random.Random(f"{self.seed}:{site}:{attempt}")

    def decide(self, site: str, attempt: int) -> Optional[str]:
        """Which worker fault (if any) to inject at this site/attempt.

        Draws are made in a fixed order (crash, hang, exception) so a
        given seed always injects the same fault at the same site.
        """
        if self.first_attempt_only and attempt > 0:
            return None
        rng = self._rng(site, attempt)
        for kind, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("exception", self.exception_rate),
        ):
            if rate and rng.random() < rate:
                return kind
        return None

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def inject_worker(self, site: str, attempt: int) -> None:
        """Maybe crash/hang/raise — called inside a *forked worker* only.

        Never call this from the orchestrating process: the crash kind
        is a real ``os._exit``.
        """
        kind = self.decide(site, attempt)
        if kind is None:
            return
        if kind == "crash":
            os._exit(23)
        if kind == "hang":
            time.sleep(self.hang_s)
            return
        raise ChaosError(f"injected worker exception at {site} attempt {attempt}")

    def inject_inline(self, site: str, attempt: int) -> None:
        """Maybe raise :class:`ChaosError` — safe in the parent process.

        Crash/hang rates are folded into exceptions here: an inline
        site can only fail by raising (the retry loop above it is what
        is under test).
        """
        kind = self.decide(site, attempt)
        if kind is not None:
            raise ChaosError(
                f"injected {kind} (as exception) at {site} attempt {attempt}"
            )

    def check_poison_faults(self, faults: Iterable[Any]) -> None:
        """Raise if any fault in the list is poisoned (deterministic)."""
        if not self.poison_faults:
            return
        for fault in faults:
            name = getattr(fault, "name", str(fault))
            if name in self.poison_faults:
                raise PoisonedFaultError(f"poisoned fault {name}")

    def check_poison_cell(self, cell_id: str) -> None:
        """Raise if the campaign cell is poisoned (deterministic)."""
        if cell_id in self.poison_cells:
            raise PoisonedFaultError(f"poisoned cell {cell_id}")

    def maybe_corrupt(
        self, site: str, path: Union[str, Path], rate: float, attempt: int = 0
    ) -> bool:
        """Corrupt ``path`` with probability ``rate`` for this site.

        Returns True when corruption was injected (also counted as
        ``chaos.corrupted`` so harness activity is observable).
        """
        if self.first_attempt_only and attempt > 0:
            return False
        if not rate or self._rng(f"corrupt:{site}", attempt).random() >= rate:
            return False
        corrupt_json_file(path, seed=self.seed)
        telemetry.incr("chaos.corrupted")
        return True

    def maybe_corrupt_store(self, key: str, path: Union[str, Path]) -> bool:
        """Store-artifact corruption hook (rate ``corrupt_store_rate``)."""
        return self.maybe_corrupt(f"store:{key[:12]}", path, self.corrupt_store_rate)

    def maybe_corrupt_checkpoint(
        self, path: Union[str, Path], sequence: int
    ) -> bool:
        """Checkpoint corruption hook (rate ``corrupt_checkpoint_rate``).

        ``sequence`` is the write number, so each of a campaign's many
        checkpoint rewrites rolls its own independent dice.
        """
        return self.maybe_corrupt(
            f"checkpoint:{sequence}", path, self.corrupt_checkpoint_rate
        )
