"""Fault-tolerant execution: supervision, retry/backoff, chaos injection.

The paper's thesis — faults must be controllable and observable *by
design* — applied to this repo's own execution stack.  Three layers:

* :mod:`~repro.resilience.policy` — :class:`FailurePolicy`
  (``raise`` / ``quarantine`` / ``degrade``), :class:`RetryPolicy`
  (bounded, jittered exponential backoff, injectable sleep), and
  :class:`FailureRecord` (the manifest-ready description of a permanent
  failure);
* :mod:`~repro.resilience.supervisor` — :func:`supervise`, the
  fork-based worker supervisor that detects crashes, hangs and raised
  exceptions, retries with backoff, and hands exhausted tasks back to
  the caller (used by
  :class:`repro.faultsim.sharded.ShardedFaultSimulator`);
* :mod:`~repro.resilience.chaos` — :class:`ChaosConfig`, the seeded
  chaos harness that injects worker crashes/hangs/exceptions, poisoned
  faults and cells, store/checkpoint corruption, and the service
  daemon's own failure modes (dropped client connections, killed/hung
  lane workers, SIGKILL between cells, torn journal tails), proving
  end-to-end (``tests/test_chaos.py``, ``tests/test_service_recovery
  .py``) that supervised and recovered runs stay bit-identical to
  fault-free ones.
"""

from .policy import (
    FailurePolicy,
    FailureRecord,
    RetryPolicy,
    failure_record,
    traceback_digest,
)
from .supervisor import (
    SupervisionOutcome,
    SupervisionPolicy,
    TaskFailure,
    supervise,
)
from .chaos import (
    ChaosConfig,
    ChaosError,
    PoisonedFaultError,
    corrupt_json_file,
    corrupt_tail,
)

__all__ = [
    "FailurePolicy",
    "FailureRecord",
    "RetryPolicy",
    "failure_record",
    "traceback_digest",
    "SupervisionOutcome",
    "SupervisionPolicy",
    "TaskFailure",
    "supervise",
    "ChaosConfig",
    "ChaosError",
    "PoisonedFaultError",
    "corrupt_json_file",
    "corrupt_tail",
]
