"""Fork-based worker supervision: timeouts, crash detection, retries.

The generic engine under the sharded fault simulator's fault tolerance.
:func:`supervise` runs one forked child process per task, watches every
child through a result pipe, and classifies each attempt's outcome:

* **ok** — the child sent its result back;
* **crash** — the child died without a result (``os._exit``, signal,
  interpreter abort): its pipe reads EOF / its exit code is non-zero;
* **hang** — no result within ``timeout_s``: the child is terminated
  (then killed) and the attempt counts as failed;
* **exception** — the child's task raised: the exception's class,
  message and traceback digest come back over the pipe (the traceback
  itself never needs to pickle).

Failed attempts are retried with the policy's jittered exponential
backoff up to ``retry.max_retries`` times; a task that exhausts its
budget lands in :attr:`SupervisionOutcome.failed` for the caller to
resolve (the sharded simulator falls back to in-process execution, then
applies its :class:`~repro.resilience.policy.FailurePolicy`).

State reaches the children by fork inheritance — ``task_fn`` is a
closure run after ``fork()``, so nothing but the result is ever
pickled.  Every retry, crash, hang and worker exception is counted
through :mod:`repro.telemetry` (``resilience.*`` counters), so
supervision activity is visible in run manifests, never silent.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from .. import telemetry
from .policy import RetryPolicy, traceback_digest

__all__ = [
    "SupervisionPolicy",
    "TaskFailure",
    "SupervisionOutcome",
    "supervise",
]

#: Exit code a child uses after successfully shipping its result.
_CHILD_OK_EXIT = 0

#: Attempt outcome kinds (also the telemetry counter suffixes).
OK, CRASH, HANG, EXCEPTION = "ok", "crash", "hang", "exception"


@dataclass
class SupervisionPolicy:
    """Knobs for :func:`supervise`.

    ``timeout_s`` is the per-attempt wall-clock budget (``None``
    disables hang detection).  ``retry`` schedules re-attempts after
    any crash/hang/exception.  ``poll_interval_s`` bounds how often the
    supervisor wakes to check deadlines; ``term_grace_s`` is how long a
    terminated (hung) child gets before being killed outright.
    """

    timeout_s: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    poll_interval_s: float = 0.05
    term_grace_s: float = 5.0


@dataclass
class TaskFailure:
    """A task that exhausted its retry budget."""

    task: Any
    kind: str  # crash / hang / exception (the *last* attempt's kind)
    error: str
    message: str
    digest: str
    attempts: int


@dataclass
class SupervisionOutcome:
    """Everything one :func:`supervise` call produced."""

    results: Dict[Any, Any]
    failed: Dict[Any, TaskFailure]
    retries: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)


class _Active:
    """One running child: process, pipe, identity, deadline."""

    __slots__ = ("process", "conn", "task", "attempt", "deadline")

    def __init__(self, process, conn, task, attempt, deadline) -> None:
        self.process = process
        self.conn = conn
        self.task = task
        self.attempt = attempt
        self.deadline = deadline


def _child_main(conn, task_fn, task, attempt) -> None:
    """Child-process entry: run the task, ship the outcome, exit hard.

    ``os._exit`` (not ``sys.exit``) keeps the forked child from
    flushing inherited stdio buffers or running the parent's atexit
    hooks twice.
    """
    telemetry.reset_in_child()
    try:
        result = task_fn(task, attempt)
    except BaseException as exc:  # noqa: BLE001 — everything must travel back
        try:
            conn.send(
                (EXCEPTION, type(exc).__name__, str(exc), traceback_digest(exc))
            )
            conn.close()
        finally:
            os._exit(_CHILD_OK_EXIT)
    try:
        conn.send((OK, result))
        conn.close()
    finally:
        os._exit(_CHILD_OK_EXIT)


def _reap(active: _Active, grace_s: float, kill: bool) -> None:
    """Join a finished child; terminate+kill first when ``kill``."""
    process = active.process
    if kill and process.is_alive():
        process.terminate()
        process.join(grace_s)
        if process.is_alive():
            process.kill()
            process.join(grace_s)
    else:
        process.join(grace_s)
    active.conn.close()


def _delegated_task(task_fn: Callable[[Any, int], Any], task: Any,
                    attempt: int) -> Any:
    """Adapter from the backend task signature to the supervisor's.

    Module-level so ``backend="spawn"`` delegation can pickle it (the
    wrapped ``task_fn`` must itself be picklable in that case).
    """
    return task_fn(task, attempt)


def supervise(
    tasks: Sequence[Hashable],
    task_fn: Callable[[Any, int], Any],
    workers: int,
    policy: Optional[SupervisionPolicy] = None,
    backend: Optional[Any] = None,
) -> SupervisionOutcome:
    """Run ``task_fn(task, attempt)`` in forked children, supervised.

    At most ``workers`` children run concurrently.  Each task is
    retried per ``policy.retry`` (with backoff between attempts) and
    ends up either in ``results[task]`` or ``failed[task]``.  Requires
    a platform with ``fork`` (callers gate on
    :func:`repro.faultsim.sharded.fork_available`) — unless ``backend``
    names a :mod:`repro.exec` backend, in which case execution is
    delegated there with identical outcome/retry/telemetry semantics
    (the fork backend itself comes straight back here).
    """
    if backend is not None:
        from ..exec.backends import ForkBackend, create_backend

        resolved = create_backend(backend)
        if not isinstance(resolved, ForkBackend):
            return resolved.map(
                _delegated_task, task_fn, list(tasks),
                workers=workers, policy=policy,
            )
    policy = policy or SupervisionPolicy()
    retry = policy.retry
    context = multiprocessing.get_context("fork")
    outcome = SupervisionOutcome(results={}, failed={})
    pending: List[tuple] = [(task, 0) for task in tasks]
    active: Dict[Any, _Active] = {}

    def launch(task: Any, attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main,
            args=(child_conn, task_fn, task, attempt),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + policy.timeout_s
            if policy.timeout_s is not None
            else None
        )
        active[parent_conn] = _Active(
            process, parent_conn, task, attempt, deadline
        )

    def settle(entry: _Active, kind: str, error: str, message: str,
               digest: str, result: Any = None) -> None:
        """Record one finished attempt; requeue or fail the task."""
        if kind == OK:
            outcome.results[entry.task] = result
            return
        telemetry.incr(f"resilience.worker_{kind}")
        attempts = entry.attempt + 1
        if entry.attempt < retry.max_retries:
            telemetry.incr("resilience.retry")
            outcome.retries += 1
            delay = retry.wait(f"task:{entry.task}", entry.attempt)
            outcome.events.append(
                {"task": entry.task, "attempt": entry.attempt, "kind": kind,
                 "error": error, "action": "retry", "delay_s": delay}
            )
            pending.append((entry.task, attempts))
        else:
            outcome.events.append(
                {"task": entry.task, "attempt": entry.attempt, "kind": kind,
                 "error": error, "action": "gave_up", "delay_s": 0.0}
            )
            outcome.failed[entry.task] = TaskFailure(
                task=entry.task, kind=kind, error=error, message=message,
                digest=digest, attempts=attempts,
            )

    try:
        while pending or active:
            while pending and len(active) < max(1, workers):
                task, attempt = pending.pop(0)
                launch(task, attempt)
            ready = connection.wait(
                list(active), timeout=policy.poll_interval_s
            )
            now = time.monotonic()
            for conn in list(active):
                entry = active.get(conn)
                if entry is None:
                    continue
                if conn in ready:
                    del active[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        _reap(entry, policy.term_grace_s, kill=False)
                        code = entry.process.exitcode
                        settle(
                            entry, CRASH, "WorkerCrash",
                            f"worker exited with code {code} before "
                            f"returning a result", "",
                        )
                        continue
                    _reap(entry, policy.term_grace_s, kill=False)
                    if message[0] == OK:
                        settle(entry, OK, "", "", "", result=message[1])
                    else:
                        _, error, text, digest = message
                        settle(entry, EXCEPTION, error, text, digest)
                elif entry.deadline is not None and now >= entry.deadline:
                    del active[conn]
                    _reap(entry, policy.term_grace_s, kill=True)
                    settle(
                        entry, HANG, "WorkerHang",
                        f"no result within {policy.timeout_s}s "
                        f"(worker terminated)", "",
                    )
    finally:
        # Never leak children (e.g. caller's FailurePolicy raised
        # mid-supervision from a settle callback — impossible today,
        # but cheap to guarantee).
        for entry in active.values():
            _reap(entry, policy.term_grace_s, kill=True)
    return outcome
