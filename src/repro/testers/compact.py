"""Compact testing: transition counting and ones counting (refs [58],
[60], [65]).

Parker's "Compact testing: testing with compressed data" [65] frames
the family: instead of storing every expected response, store one
small statistic per output.  The survey's Syndrome tester (ones count)
and Signature Analysis (LFSR residue) are members; Hayes' **transition
counting** [58], [60] is the third classic — count output *changes*
over the (ordered!) pattern sequence.

Transition counts, unlike syndromes, depend on pattern order, which
both helps (order can be chosen to maximize fault sensitivity) and
hurts (a fixed order can mask faults a count would catch in another
order) — the comparison benchmark quantifies the trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..sim.packed import PackedPatternSet, PackedSimulator
from .ate import TestOutcome

Pattern = Mapping[str, int]


def transition_count(bits: Sequence[int]) -> int:
    """Number of value changes in an output stream."""
    return sum(1 for a, b in zip(bits, bits[1:]) if a != b)


class TransitionCountTester:
    """Hayes' transition-count tester over a fixed ordered pattern set."""

    def __init__(self, patterns: Sequence[Pattern]) -> None:
        self.patterns = [dict(p) for p in patterns]
        self.reference: Dict[str, int] = {}

    def _counts(self, device: Circuit) -> Dict[str, int]:
        sim = PackedSimulator(device)
        packed = PackedPatternSet.from_patterns(
            list(device.inputs), self.patterns
        )
        words = sim.run(packed)
        counts = {}
        for net in device.outputs:
            word = words[net]
            stream = [(word >> i) & 1 for i in range(len(self.patterns))]
            counts[net] = transition_count(stream)
        return counts

    def characterize(self, good_device: Circuit) -> Dict[str, int]:
        """Record the good device's transition counts."""
        self.reference = self._counts(good_device)
        return dict(self.reference)

    def test(self, device: Circuit) -> TestOutcome:
        """Compare a device's counts against the reference."""
        if not self.reference:
            raise RuntimeError("characterize a good device first")
        counts = self._counts(device)
        bad = [
            net
            for net, want in self.reference.items()
            if counts.get(net) != want
        ]
        return TestOutcome(
            passed=not bad,
            patterns_applied=len(self.patterns),
            failing_outputs=bad,
            first_failure=None if not bad else 0,
        )


def compact_method_comparison(
    circuit: Circuit,
    patterns: Sequence[Pattern],
    faults,
) -> Dict[str, float]:
    """Fraction of faults each compact method exposes on one circuit.

    Methods: full response storage (the upper bound), ones counting
    (syndrome over the given set), transition counting, and a 16-bit
    signature.  All share the same ordered pattern list.
    """
    from ..faultsim.expand import expand_branches, fault_site_net
    from ..lfsr.signature import SignatureRegister

    faults = list(faults)
    expanded, branch_map = expand_branches(circuit)
    sim = PackedSimulator(expanded)
    packed = PackedPatternSet.from_patterns(list(circuit.inputs), patterns)
    good = sim.run(packed)
    count = len(patterns)

    def streams(words) -> Dict[str, List[int]]:
        """Unpack per-output bit streams from packed words."""
        return {
            net: [(words[net] >> i) & 1 for i in range(count)]
            for net in circuit.outputs
        }

    good_streams = streams(good)
    register = SignatureRegister(bits=16)
    good_stats = {
        net: (
            sum(stream),
            transition_count(stream),
            register.signature_of(stream),
        )
        for net, stream in good_streams.items()
    }

    exposed = {"full": 0, "ones": 0, "transitions": 0, "signature": 0}
    for fault in faults:
        site = fault_site_net(fault, branch_map)
        forced = packed.mask if fault.value else 0
        faulty = sim.run(packed, force={site: forced})
        faulty_streams = streams(faulty)
        full = any(
            faulty_streams[net] != good_streams[net]
            for net in circuit.outputs
        )
        ones = any(
            sum(faulty_streams[net]) != good_stats[net][0]
            for net in circuit.outputs
        )
        transitions = any(
            transition_count(faulty_streams[net]) != good_stats[net][1]
            for net in circuit.outputs
        )
        signature = any(
            register.signature_of(faulty_streams[net]) != good_stats[net][2]
            for net in circuit.outputs
        )
        exposed["full"] += full
        exposed["ones"] += ones
        exposed["transitions"] += transitions
        exposed["signature"] += signature
    total = max(1, len(faults))
    return {name: value / total for name, value in exposed.items()}
