"""Automatic test equipment (ATE) models.

The paper's techniques all terminate at a piece of test equipment:
a stored-pattern tester (edge-connector testing), the Signature
Analysis tool of Fig. 8, the Syndrome counter of Fig. 23, or the Walsh
up/down counter of Fig. 25.  These models close every flow end-to-end:
a device model goes in, a PASS/FAIL (and a bill for tester time) comes
out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..sim.logic import LogicSimulator
from ..sim.packed import PackedPatternSet, PackedSimulator
from ..lfsr.signature import SignatureRegister
from ..lfsr.polynomials import primitive_polynomial

Pattern = Mapping[str, int]


@dataclass
class TestOutcome:
    """Verdict of one tester session."""

    passed: bool
    patterns_applied: int
    first_failure: Optional[int] = None
    failing_outputs: List[str] = field(default_factory=list)
    tester_seconds: float = 0.0

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else f"FAIL@{self.first_failure}"
        return f"{verdict} after {self.patterns_applied} patterns"


class StoredPatternTester:
    """Classic ATE: stored stimulus/response pairs at a fixed rate."""

    def __init__(self, seconds_per_pattern: float = 1e-6) -> None:
        self.seconds_per_pattern = seconds_per_pattern

    def characterize(
        self, good_device: Circuit, patterns: Sequence[Pattern]
    ) -> List[Dict[str, int]]:
        """Record expected responses from a known-good device."""
        sim = LogicSimulator(good_device)
        return [sim.outputs(dict(p)) for p in patterns]

    def test(
        self,
        device: Circuit,
        patterns: Sequence[Pattern],
        expected: Sequence[Mapping[str, int]],
        stop_on_fail: bool = True,
    ) -> TestOutcome:
        """Apply the pattern set and compare against expectations."""
        sim = LogicSimulator(device)
        applied = 0
        for index, (pattern, want) in enumerate(zip(patterns, expected)):
            applied += 1
            got = sim.outputs(dict(pattern))
            bad = [net for net in want if got.get(net) != want[net]]
            if bad:
                return TestOutcome(
                    passed=False,
                    patterns_applied=applied,
                    first_failure=index,
                    failing_outputs=bad,
                    tester_seconds=applied * self.seconds_per_pattern,
                )
            if not stop_on_fail:
                continue
        return TestOutcome(
            passed=True,
            patterns_applied=applied,
            tester_seconds=applied * self.seconds_per_pattern,
        )


class SyndromeTester:
    """The Fig. 23 structure: pattern generator + ones counter + compare.

    Applies all ``2**n`` patterns and counts 1's per output; PASS when
    every count matches the reference.  Test data volume: one integer
    per output, which is the technique's whole selling point.
    """

    def __init__(self) -> None:
        self.reference: Dict[str, int] = {}

    def characterize(self, good_device: Circuit) -> Dict[str, int]:
        """Record expected responses from a known-good device."""
        sim = PackedSimulator(good_device)
        packed = PackedPatternSet.exhaustive(list(good_device.inputs))
        words = sim.run(packed)
        self.reference = {
            net: bin(words[net]).count("1") for net in good_device.outputs
        }
        return dict(self.reference)

    def test(self, device: Circuit) -> TestOutcome:
        """Apply the pattern set and compare against expectations."""
        if not self.reference:
            raise RuntimeError("characterize a good device first")
        sim = PackedSimulator(device)
        packed = PackedPatternSet.exhaustive(list(device.inputs))
        words = sim.run(packed)
        counts = {
            net: bin(words[net]).count("1") for net in device.outputs
        }
        bad = [net for net, want in self.reference.items() if counts.get(net) != want]
        return TestOutcome(
            passed=not bad,
            patterns_applied=packed.count,
            failing_outputs=bad,
            first_failure=None if not bad else 0,
        )


class WalshTester:
    """The Fig. 25 tester: driving counter, parity ``p``, up/down counter.

    Two passes of the driving counter measure ``C_all`` then ``C_0``:
    in the ``C_all`` pass the response counter counts up when the
    output agrees with the counter parity and down otherwise; in the
    ``C_0`` pass parity is ignored.
    """

    def __init__(self) -> None:
        self.reference: Dict[str, Tuple[int, int]] = {}

    @staticmethod
    def _measure(device: Circuit, output: str) -> Tuple[int, int]:
        sim = PackedSimulator(device)
        packed = PackedPatternSet.exhaustive(list(device.inputs))
        words = sim.run(packed)
        f_word = words[output]
        parity = 0
        for net in device.inputs:
            parity ^= packed.words[net]
        total = packed.count
        c0 = 2 * bin(f_word).count("1") - total
        c_all = 2 * bin((parity ^ f_word) & packed.mask).count("1") - total
        return c0, c_all

    def characterize(self, good_device: Circuit) -> Dict[str, Tuple[int, int]]:
        """Record expected responses from a known-good device."""
        self.reference = {
            net: self._measure(good_device, net) for net in good_device.outputs
        }
        return dict(self.reference)

    def test(self, device: Circuit) -> TestOutcome:
        """Apply the pattern set and compare against expectations."""
        if not self.reference:
            raise RuntimeError("characterize a good device first")
        bad = []
        patterns = 2 * (1 << len(device.inputs))  # two counter passes
        for net, want in self.reference.items():
            if self._measure(device, net) != want:
                bad.append(net)
        return TestOutcome(
            passed=not bad,
            patterns_applied=patterns,
            failing_outputs=bad,
            first_failure=None if not bad else 0,
        )
