"""Tester models: stored-pattern ATE, syndrome counter, Walsh counter."""

from .ate import TestOutcome, StoredPatternTester, SyndromeTester, WalshTester
from .compact import (
    TransitionCountTester,
    transition_count,
    compact_method_comparison,
)

__all__ = [
    "TransitionCountTester",
    "transition_count",
    "compact_method_comparison",
    "TestOutcome",
    "StoredPatternTester",
    "SyndromeTester",
    "WalshTester",
]
