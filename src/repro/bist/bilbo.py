"""Built-In Logic Block Observation — BILBO (§V-A, Figs. 19-21).

A BILBO register is a bank of system latches with mode controls B1 B2:

====  =========================================================
B1B2  behaviour
====  =========================================================
11    system register: latches load their Z inputs (Fig. 19(b))
00    linear shift register: scan path (Fig. 19(c))
10    multi-input LFSR: MISR / PRPG (Fig. 19(d))
01    reset
====  =========================================================

With its Z inputs held constant, mode 10 free-runs as a maximal-length
pseudo-random pattern generator; with live Z inputs it is a signature
compactor.  Two BILBOs around two combinational networks therefore test
both networks at speed with no stored patterns (Figs. 20-21).

Both a behavioral model and a real gate netlist are provided; a test
asserts they agree clock for clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit
from ..lfsr.polynomials import primitive_polynomial, taps_from_polynomial
from ..sim.logic import LogicSimulator


class BilboMode(enum.Enum):
    """BilboMode: see the module docstring for context."""
    SYSTEM = (1, 1)
    SHIFT = (0, 0)
    LFSR = (1, 0)  # MISR / PRPG
    RESET = (0, 1)

    @property
    def b1(self) -> int:
        """B1 control line value for this mode."""
        return self.value[0]

    @property
    def b2(self) -> int:
        """B2 control line value for this mode."""
        return self.value[1]


class BilboRegister:
    """Behavioral BILBO of ``width`` latches.

    State bit ``i`` is latch ``L_{i+1}``; stage 1 receives the scan
    input (mode 00) or the tap feedback (mode 10).
    """

    def __init__(self, width: int, poly: Optional[int] = None) -> None:
        self.width = width
        self.poly = poly if poly is not None else primitive_polynomial(width)
        self.taps = taps_from_polynomial(self.poly)
        self.mode = BilboMode.SYSTEM
        self.state = 0

    @property
    def mask(self) -> int:
        """Bit mask covering the register width."""
        return (1 << self.width) - 1

    def set_mode(self, mode: BilboMode) -> None:
        """Switch the operating mode."""
        self.mode = mode

    def stage(self, number: int) -> int:
        """Value of one stage (1-based)."""
        return (self.state >> (number - 1)) & 1

    def stages(self) -> Tuple[int, ...]:
        """Current stage values, input side first."""
        return tuple(self.stage(i) for i in range(1, self.width + 1))

    def feedback(self) -> int:
        """XOR of the tapped stages (the LFSR feedback bit)."""
        bit = 0
        for tap in self.taps:
            bit ^= self.stage(tap)
        return bit

    def clock(self, z_word: int = 0, scan_in: int = 0) -> int:
        """One clock in the current mode; returns the scan-out bit.

        ``z_word`` packs the parallel inputs Z1..Zn (bit i-1 = Z_i).
        """
        scan_out = self.stage(self.width)
        if self.mode is BilboMode.SYSTEM:
            self.state = z_word & self.mask
        elif self.mode is BilboMode.RESET:
            self.state = 0
        elif self.mode is BilboMode.SHIFT:
            self.state = ((self.state << 1) | (scan_in & 1)) & self.mask
        elif self.mode is BilboMode.LFSR:
            first = self.feedback()
            shifted = ((self.state << 1) | first) & self.mask
            self.state = shifted ^ (z_word & self.mask)
        return scan_out

    def scan_out_all(self) -> List[int]:
        """Shift the whole signature out (mode 00), LSB-stage last."""
        self.set_mode(BilboMode.SHIFT)
        return [self.clock(scan_in=0) for _ in range(self.width)]

    def load(self, bits: Sequence[int]) -> None:
        """Shift a full register state in."""
        self.set_mode(BilboMode.SHIFT)
        for bit in reversed(list(bits)):
            self.clock(scan_in=bit)


@dataclass
class SelfTestSession:
    """Result of one BILBO self-test pass over a network."""

    network: str
    patterns_applied: int
    signature: int
    golden_signature: int

    @property
    def passed(self) -> bool:
        """True when the observed value matches the reference."""
        return self.signature == self.golden_signature


class BilboPair:
    """The Figs. 20-21 arrangement: BILBO1 -> CLN1 -> BILBO2 -> CLN2 -> BILBO1.

    ``network1`` maps BILBO1's outputs to BILBO2's inputs; ``network2``
    maps BILBO2's outputs back to BILBO1's inputs.  Networks are plain
    combinational circuits whose PIs/POs are matched positionally to
    register stages.
    """

    def __init__(
        self,
        network1: Circuit,
        network2: Circuit,
        width1: Optional[int] = None,
        width2: Optional[int] = None,
    ) -> None:
        self.network1 = network1
        self.network2 = network2
        self.sim1 = LogicSimulator(network1)
        self.sim2 = LogicSimulator(network2)
        w1 = width1 if width1 is not None else len(network1.inputs)
        w2 = width2 if width2 is not None else len(network2.outputs)
        self.bilbo1 = BilboRegister(w1)
        self.bilbo2 = BilboRegister(max(w2, len(network1.outputs)))
        self._fault_force: Dict[str, Tuple[str, int]] = {}

    # -- fault injection hooks (for the benchmarks) ----------------------
    def inject_fault(self, network: str, net: str, value: int) -> None:
        """Inject a fault for subsequent runs."""
        self._fault_force[network] = (net, value)

    def clear_faults(self) -> None:
        """Remove every injected fault."""
        self._fault_force.clear()

    def _run_network(self, which: str, input_bits: Sequence[int]) -> List[int]:
        network = self.network1 if which == "n1" else self.network2
        sim = self.sim1 if which == "n1" else self.sim2
        assignment = {
            net: (input_bits[i] if i < len(input_bits) else 0)
            for i, net in enumerate(network.inputs)
        }
        values = self._run_with_force(sim, network, assignment, which)
        return [values[net] for net in network.outputs]

    def _run_with_force(self, sim, network, assignment, which) -> Dict[str, int]:
        force = self._fault_force.get(which)
        if force is None:
            return sim.run(assignment)
        from ..netlist.gates import evaluate

        net_values = {}
        for net in sim.free_nets:
            net_values[net] = assignment.get(net, 0)
        if force[0] in net_values:
            net_values[force[0]] = force[1]
        for gate in network.topological_order():
            value = evaluate(gate.kind, tuple(net_values[n] for n in gate.inputs))
            if gate.output == force[0]:
                value = force[1]
            net_values[gate.output] = value
        return net_values

    # -- the self-test protocol ------------------------------------------
    def test_network1(self, patterns: int, seed: int = 1) -> int:
        """BILBO1 as PRPG, BILBO2 as MISR; returns BILBO2's signature."""
        with telemetry.span(
            "bist.bilbo.session", network=self.network1.name
        ):
            telemetry.incr("bist.bilbo.patterns", patterns)
            self.bilbo1.state = seed & self.bilbo1.mask
            self.bilbo1.set_mode(BilboMode.LFSR)  # Z held at 0: PRPG
            self.bilbo2.state = 0
            self.bilbo2.set_mode(BilboMode.LFSR)
            for _ in range(patterns):
                stimulus = self.bilbo1.stages()
                response = self._run_network("n1", stimulus)
                z_word = 0
                for i, bit in enumerate(response):
                    if bit:
                        z_word |= 1 << i
                self.bilbo2.clock(z_word=z_word)
                self.bilbo1.clock(z_word=0)
            return self.bilbo2.state

    def test_network2(self, patterns: int, seed: int = 1) -> int:
        """Roles reversed (Fig. 21): BILBO2 generates, BILBO1 compacts."""
        with telemetry.span(
            "bist.bilbo.session", network=self.network2.name
        ):
            telemetry.incr("bist.bilbo.patterns", patterns)
            self.bilbo2.state = seed & self.bilbo2.mask
            self.bilbo2.set_mode(BilboMode.LFSR)
            self.bilbo1.state = 0
            self.bilbo1.set_mode(BilboMode.LFSR)
            for _ in range(patterns):
                stimulus = self.bilbo2.stages()
                response = self._run_network("n2", stimulus)
                z_word = 0
                for i, bit in enumerate(response):
                    if bit:
                        z_word |= 1 << i
                self.bilbo1.clock(z_word=z_word)
                self.bilbo2.clock(z_word=0)
            return self.bilbo1.state

    def self_test(
        self, patterns: int, golden: Optional[Tuple[int, int]] = None, seed: int = 1
    ) -> Tuple[SelfTestSession, SelfTestSession]:
        """Full two-phase self-test; golden signatures computed on the
        fault-free pair when not supplied."""
        if golden is None:
            saved = dict(self._fault_force)
            self._fault_force = {}
            golden = (
                self.test_network1(patterns, seed),
                self.test_network2(patterns, seed),
            )
            self._fault_force = saved
        sig1 = self.test_network1(patterns, seed)
        sig2 = self.test_network2(patterns, seed)
        return (
            SelfTestSession(self.network1.name, patterns, sig1, golden[0]),
            SelfTestSession(self.network2.name, patterns, sig2, golden[1]),
        )


def bilbo_netlist(width: int, poly: Optional[int] = None) -> Circuit:
    """Gate-level BILBO register (Fig. 19(a)).

    Inputs: ``B1``, ``B2``, ``SIN``, ``Z1..Zn``; outputs ``Q1..Qn`` and
    ``SOUT``.  Mode decoding per latch is AND-OR logic; the flip-flops
    are the system latches.  The behavioral :class:`BilboRegister` and
    this netlist agree clock-for-clock (asserted in the test suite).
    """
    c = Circuit(f"bilbo{width}")
    c.add_input("B1")
    c.add_input("B2")
    c.add_input("SIN")
    for i in range(1, width + 1):
        c.add_input(f"Z{i}")
    c.not_("B1", "B1N")
    c.not_("B2", "B2N")
    c.and_(["B1", "B2"], "M_SYS")
    c.and_(["B1N", "B2N"], "M_SHIFT")
    c.and_(["B1", "B2N"], "M_LFSR")
    actual_poly = poly if poly is not None else primitive_polynomial(width)
    taps = taps_from_polynomial(actual_poly)
    tap_nets = [f"Q{t}" for t in taps]
    if len(tap_nets) == 1:
        c.buf(tap_nets[0], "FB")
    else:
        c.xor(tap_nets, "FB")
    for i in range(1, width + 1):
        previous = "SIN" if i == 1 else f"Q{i - 1}"
        lfsr_src = "FB" if i == 1 else f"Q{i - 1}"
        c.xor([lfsr_src, f"Z{i}"], f"LX{i}")
        c.and_(["M_SYS", f"Z{i}"], f"T_SYS{i}")
        c.and_(["M_SHIFT", previous], f"T_SH{i}")
        c.and_(["M_LFSR", f"LX{i}"], f"T_LF{i}")
        c.or_([f"T_SYS{i}", f"T_SH{i}", f"T_LF{i}"], f"D{i}")
        c.dff(f"D{i}", f"Q{i}", name=f"L{i}")
        c.add_output(f"Q{i}")
    c.buf(f"Q{width}", "SOUT")
    c.add_output("SOUT")
    c.validate()
    return c
