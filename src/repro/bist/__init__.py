"""Self-test and built-in test: BILBO, random theory, Syndrome, Walsh,
Autonomous testing."""

from .bilbo import (
    BilboMode,
    BilboRegister,
    BilboPair,
    SelfTestSession,
    bilbo_netlist,
)
from .random_theory import (
    detection_probability,
    detection_profile,
    expected_random_test_length,
    escape_probability,
    profile_test_length,
    pla_term_activation_probability,
    pla_random_resistance,
    RandomTestPrediction,
    predict_random_testability,
)
from .syndrome import (
    SyndromeAnalyzer,
    SyndromeFixReport,
    make_syndrome_testable,
)
from .walsh import WalshAnalyzer, input_stuck_fault_theorem
from .weights import (
    structural_weights,
    detection_weights,
    expected_coverage_gain,
)
from .autonomous import (
    LfsrModuleMode,
    ReconfigurableLfsrModule,
    SubnetworkPartition,
    AutonomousTestResult,
    run_autonomous_test,
    multiplexer_partition,
    sensitized_partitions_74181,
    sensitized_partitions_74181_compact,
)

__all__ = [
    "structural_weights",
    "detection_weights",
    "expected_coverage_gain",
    "BilboMode",
    "BilboRegister",
    "BilboPair",
    "SelfTestSession",
    "bilbo_netlist",
    "detection_probability",
    "detection_profile",
    "expected_random_test_length",
    "escape_probability",
    "profile_test_length",
    "pla_term_activation_probability",
    "pla_random_resistance",
    "RandomTestPrediction",
    "predict_random_testability",
    "SyndromeAnalyzer",
    "SyndromeFixReport",
    "make_syndrome_testable",
    "WalshAnalyzer",
    "input_stuck_fault_theorem",
    "LfsrModuleMode",
    "ReconfigurableLfsrModule",
    "SubnetworkPartition",
    "AutonomousTestResult",
    "run_autonomous_test",
    "multiplexer_partition",
    "sensitized_partitions_74181",
    "sensitized_partitions_74181_compact",
]
