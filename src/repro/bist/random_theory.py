"""Random-pattern testability theory (§V-A and Fig. 22).

The quantitative backbone of BILBO-style self-test:

* a fault's **detection probability** ``p`` is the fraction of the
  input space that detects it (computable exactly for small cones);
* the expected pseudo-random **test length** to catch it with
  confidence ``c`` is ``ln(1-c) / ln(1-p)``;
* a PLA product term of fan-in ``k`` is activated by a random pattern
  with probability ``2**-k`` — at ``k = 20`` that is the paper's
  "1/2**20", which is why "there are some known networks which are not
  susceptible to random patterns";
* random logic with fan-in <= 4 "can do quite well" — the benchmark
  quantifies both halves of that sentence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..atpg.boolean_difference import detecting_minterms
from ..circuits.pla import Pla


def detection_probability(circuit: Circuit, fault: Fault) -> float:
    """Exact fraction of input patterns detecting the fault."""
    minterms = detecting_minterms(circuit, fault)
    return len(minterms) / float(1 << len(circuit.inputs))


def detection_profile(
    circuit: Circuit, faults: Sequence[Fault]
) -> Dict[Fault, float]:
    """Detection probability per fault — the testability fingerprint."""
    return {fault: detection_probability(circuit, fault) for fault in faults}


def expected_random_test_length(p: float, confidence: float = 0.95) -> float:
    """Patterns needed to detect a fault of probability ``p``.

    Solves ``1 - (1-p)**N >= confidence`` — the random-testing planning
    equation (Shedletsky [66]).
    """
    if not 0 < p <= 1:
        return math.inf
    if p == 1.0:
        return 1.0
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return math.log(1.0 - confidence) / math.log(1.0 - p)


def escape_probability(p: float, patterns: int) -> float:
    """Chance a fault of detection probability ``p`` survives N patterns."""
    if p <= 0:
        return 1.0
    return (1.0 - p) ** patterns


def profile_test_length(
    profile: Dict[Fault, float], confidence: float = 0.95
) -> float:
    """Patterns needed for the *hardest* fault (the sizing rule)."""
    hardest = min((p for p in profile.values() if p > 0), default=0.0)
    if hardest == 0:
        return math.inf
    return expected_random_test_length(hardest, confidence)


def pla_term_activation_probability(pla: Pla) -> List[float]:
    """Per-product-term random activation probability: ``2**-fanin``."""
    return [term.detection_probability() for term in pla.terms]


def pla_random_resistance(pla: Pla, confidence: float = 0.95) -> float:
    """Patterns needed to activate every product term once (expected).

    The Fig. 22 argument in one number: grows like ``2**max_fanin``.
    """
    worst = min(
        (term.detection_probability() for term in pla.terms), default=1.0
    )
    return expected_random_test_length(worst, confidence)


@dataclass
class RandomTestPrediction:
    """Predicted vs measured random-test behaviour of a circuit."""

    circuit_name: str
    hardest_fault: Optional[Fault]
    hardest_probability: float
    predicted_length_95: float
    measured_coverage: Optional[float] = None
    measured_patterns: Optional[int] = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.circuit_name}: hardest fault p={self.hardest_probability:.2e}",
            f"predicted N(95%)={self.predicted_length_95:.0f}",
        ]
        if self.measured_coverage is not None:
            parts.append(
                f"measured {self.measured_coverage:.1%} with "
                f"{self.measured_patterns} patterns"
            )
        return ", ".join(parts)


def predict_random_testability(
    circuit: Circuit, faults: Sequence[Fault], confidence: float = 0.95
) -> RandomTestPrediction:
    """Exact hardest-fault analysis for a (small) combinational circuit."""
    profile = detection_profile(circuit, faults)
    detectable = {f: p for f, p in profile.items() if p > 0}
    if not detectable:
        return RandomTestPrediction(circuit.name, None, 0.0, math.inf)
    hardest = min(detectable, key=lambda f: detectable[f])
    p = detectable[hardest]
    return RandomTestPrediction(
        circuit.name, hardest, p, expected_random_test_length(p, confidence)
    )
