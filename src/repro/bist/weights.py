"""Weighted random pattern optimization (Schnurmann et al. [95], §IV-A).

"The weighted random test pattern generation": instead of a fair coin
per input, bias each input's 1-probability so that random-resistant
structures (deep AND/OR cones) see their hard values more often.

Two weight sources are implemented:

* :func:`structural_weights` — a SCOAP-driven heuristic: an input
  feeding logic that is much harder to set to 1 than to 0 gets a
  1-probability above one half, and vice versa;
* :func:`detection_weights` — an exact (small circuits only) method
  that maximizes the minimum fault detection probability via coordinate
  ascent on the per-input probabilities.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..testability.scoap import analyze


def structural_weights(
    circuit: Circuit, strength: float = 0.35
) -> Dict[str, float]:
    """Per-input 1-probabilities from the controllability imbalance.

    For each input, compare the average cc1 vs cc0 of the nets in its
    fanout cone: a cone that is expensive to drive to 1 wants its
    inputs biased toward 1.  ``strength`` bounds how far from 0.5 the
    weights move.
    """
    report = analyze(circuit)
    weights: Dict[str, float] = {}
    for net in circuit.inputs:
        cone = circuit.output_cone(net)
        cc1 = [
            report.measures[n].cc1
            for n in cone
            if report.measures[n].cc1 != math.inf
        ]
        cc0 = [
            report.measures[n].cc0
            for n in cone
            if report.measures[n].cc0 != math.inf
        ]
        if not cc1 or not cc0:
            weights[net] = 0.5
            continue
        hard1 = sum(cc1) / len(cc1)
        hard0 = sum(cc0) / len(cc0)
        # Imbalance in [-1, 1]: positive means 1 is harder to reach.
        imbalance = (hard1 - hard0) / max(hard1 + hard0, 1e-9)
        weights[net] = min(0.95, max(0.05, 0.5 + strength * 2 * imbalance))
    return weights


def detection_weights(
    circuit: Circuit,
    faults: Sequence[Fault],
    iterations: int = 3,
    grid: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> Dict[str, float]:
    """Coordinate-ascent weights maximizing the worst fault's detection
    probability (exact, via the exhaustive detecting-minterm sets).

    Only feasible for small input counts; used to calibrate and test
    the structural heuristic.
    """
    from ..atpg.boolean_difference import detecting_minterms

    inputs = list(circuit.inputs)
    n = len(inputs)
    minterm_sets = {
        fault: detecting_minterms(circuit, fault) for fault in faults
    }
    minterm_sets = {f: ms for f, ms in minterm_sets.items() if ms}

    def worst_probability(weights: Dict[str, float]) -> float:
        """Worst probability."""
        worst = 1.0
        for minterms in minterm_sets.values():
            probability = 0.0
            for minterm in minterms:
                p = 1.0
                for position, net in enumerate(inputs):
                    bit = (minterm >> position) & 1
                    p *= weights[net] if bit else 1.0 - weights[net]
                probability += p
            worst = min(worst, probability)
        return worst

    weights = {net: 0.5 for net in inputs}
    for _ in range(iterations):
        for net in inputs:
            best_value, best_score = weights[net], worst_probability(weights)
            for candidate in grid:
                weights[net] = candidate
                score = worst_probability(weights)
                if score > best_score:
                    best_value, best_score = candidate, score
            weights[net] = best_value
    return weights


def expected_coverage_gain(
    circuit: Circuit,
    faults: Sequence[Fault],
    weights: Dict[str, float],
    patterns: int,
) -> float:
    """Predicted detected-fraction after N weighted patterns (exact)."""
    from ..atpg.boolean_difference import detecting_minterms

    inputs = list(circuit.inputs)
    detected_expectation = 0.0
    total = 0
    for fault in faults:
        minterms = detecting_minterms(circuit, fault)
        if not minterms:
            continue
        total += 1
        probability = 0.0
        for minterm in minterms:
            p = 1.0
            for position, net in enumerate(inputs):
                bit = (minterm >> position) & 1
                p *= weights[net] if bit else 1.0 - weights[net]
            probability += p
        detected_expectation += 1.0 - (1.0 - probability) ** patterns
    return detected_expectation / max(1, total)
