"""Syndrome testing (§V-B; Savir [115], [116]).

Definition 1 of the paper: the syndrome of a Boolean function is
``S = K / 2**n`` with ``K`` the number of minterms.  Testing applies
all ``2**n`` patterns and *counts the ones* on each output; a fault is
syndrome-testable when the faulty count differs from the good count.
The appeal is the vanishing test-data volume: one count per output.

Not every fault is syndrome-testable in every network; Savir's fix
adds a control input (holding it 1 in one pass, 0 in another, or
simply widening a gate) to split the offending symmetry.  The paper
reports "real networks" like the SN74181 need at most one extra input
(<= 5 %) and two gates (<= 4 %) — the benchmark reproduces that
experiment with :func:`make_syndrome_testable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from ..faultsim.expand import expand_branches, fault_site_net
from ..sim.packed import PackedPatternSet, PackedSimulator

MAX_SYNDROME_INPUTS = 20


def _popcount(word: int) -> int:
    return bin(word).count("1")


class SyndromeAnalyzer:
    """Exhaustive syndrome computation for a combinational circuit."""

    def __init__(self, circuit: Circuit) -> None:
        if not circuit.is_combinational:
            raise NetlistError("syndrome testing is combinational")
        if len(circuit.inputs) > MAX_SYNDROME_INPUTS:
            raise NetlistError(
                f"{len(circuit.inputs)} inputs exceed the exhaustive limit"
            )
        self.circuit = circuit
        with telemetry.span(
            "bist.syndrome.analyze", circuit=circuit.name
        ):
            self.expanded, self._branch_map = expand_branches(circuit)
            self._sim = PackedSimulator(self.expanded)
            self._packed = PackedPatternSet.exhaustive(list(circuit.inputs))
            # One good-machine pass on the compiled core; every faulty
            # machine afterwards re-evaluates only the fault's cached cone.
            self._injector = self._sim.injector(self._packed)
            self._good = self._injector.program.words_to_dict(self._injector.good)
            telemetry.incr("bist.syndrome.patterns", self._packed.count)

    @property
    def pattern_count(self) -> int:
        """Number of patterns this object implies."""
        return self._packed.count

    def syndrome(self, output: Optional[str] = None) -> Fraction:
        """Good-machine syndrome of one output (default: the first)."""
        net = output if output is not None else self.circuit.outputs[0]
        return Fraction(_popcount(self._good[net]), self.pattern_count)

    def syndromes(self) -> Dict[str, Fraction]:
        """Good-machine syndrome for every primary output."""
        return {
            net: Fraction(_popcount(self._good[net]), self.pattern_count)
            for net in self.circuit.outputs
        }

    def _faulty_outputs(self, fault: Fault) -> Dict[str, int]:
        telemetry.incr("bist.syndrome.fault_evals")
        site = fault_site_net(fault, self._branch_map)
        forced = self._packed.mask if fault.value else 0
        return self._injector.faulty_output_words(
            self._injector.site_index(site), forced
        )

    def faulty_counts(self, fault: Fault) -> Dict[str, int]:
        """Per-output ones-counts of the faulty machine."""
        faulty = self._faulty_outputs(fault)
        return {net: _popcount(faulty[net]) for net in self.circuit.outputs}

    def is_syndrome_testable(self, fault: Fault) -> bool:
        """Does the 1s-count differ on at least one output?"""
        good_counts = {
            net: _popcount(self._good[net]) for net in self.circuit.outputs
        }
        return self.faulty_counts(fault) != good_counts

    def untestable_faults(
        self, faults: Optional[Sequence[Fault]] = None
    ) -> List[Fault]:
        """Faults whose counts match the good machine on every output."""
        if faults is None:
            faults = collapse_faults(self.circuit)
        return [f for f in faults if not self.is_syndrome_testable(f)]

    # -- multi-pass (constrained) syndrome testing, Savir [116] ---------
    def constrained_counts(
        self, held: Dict[str, int], fault: Optional[Fault] = None
    ) -> Dict[str, int]:
        """Ones-counts with some primary inputs held constant.

        The [116] extension: hold inputs, apply all ``2**k`` patterns to
        the rest, count.  Patterns with held inputs at other values are
        masked out of the count (equivalent to sweeping only the free
        inputs).
        """
        select = self._packed.mask
        for net, value in held.items():
            word = self._packed.words[net]
            select &= word if value else (~word & self._packed.mask)
        if fault is None:
            words = self._good
        else:
            words = self._faulty_outputs(fault)
        return {
            net: _popcount(words[net] & select)
            for net in self.circuit.outputs
        }

    def testable_with_passes(
        self, fault: Fault, passes: Sequence[Dict[str, int]]
    ) -> bool:
        """Does any pass (a held-input assignment) expose the fault?"""
        for held in passes:
            if self.constrained_counts(held, fault) != self.constrained_counts(held):
                return True
        return False

    def plan_multipass(
        self,
        faults: Optional[Sequence[Fault]] = None,
        max_extra_passes: int = 8,
    ) -> Tuple[List[Dict[str, int]], List[Fault]]:
        """Greedy pass selection (Savir [116]).

        Starts with the unconstrained pass; while untestable faults
        remain, adds the single-held-input pass covering the most of
        them.  Returns (passes, still-untestable faults).
        """
        if faults is None:
            faults = collapse_faults(self.circuit)
        passes: List[Dict[str, int]] = [{}]
        remaining = [
            f for f in faults if not self.testable_with_passes(f, passes)
        ]
        candidates = [
            {net: value}
            for net in self.circuit.inputs
            for value in (0, 1)
        ]
        for _ in range(max_extra_passes):
            if not remaining:
                break
            best_pass = None
            best_covered: List[Fault] = []
            for held in candidates:
                covered = [
                    f
                    for f in remaining
                    if self.testable_with_passes(f, [held])
                ]
                if len(covered) > len(best_covered):
                    best_covered = covered
                    best_pass = held
            if best_pass is None:
                break
            passes.append(best_pass)
            remaining = [f for f in remaining if f not in best_covered]
        return passes, remaining


@dataclass
class SyndromeFixReport:
    """Outcome of the make-testable procedure."""

    circuit: Circuit
    extra_inputs: List[str]
    extra_gates: int
    remaining_untestable: List[Fault]

    @property
    def input_overhead(self) -> float:
        """Extra inputs as a fraction of the original input count."""
        base = len(self.circuit.inputs) - len(self.extra_inputs)
        return len(self.extra_inputs) / base if base else 0.0

    @property
    def gate_overhead(self) -> float:
        """Extra gates as a fraction of the original gate count."""
        base = len(self.circuit) - self.extra_gates
        return self.extra_gates / base if base else 0.0


def make_syndrome_testable(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]] = None,
    max_extra_inputs: int = 2,
) -> SyndromeFixReport:
    """Savir-style modification: add control inputs until testable.

    Greedy search: for each candidate internal net, trial-insert an OR
    (or AND) gate with a fresh control input held at the non-dominant
    value during normal operation, and keep the modification that
    clears the most untestable faults.  Matches the paper's reported
    overheads on the 74181-class networks (<= 1 input, <= 2 gates).
    """
    current = circuit
    extra_inputs: List[str] = []
    extra_gates = 0
    for round_index in range(max_extra_inputs):
        analyzer = SyndromeAnalyzer(current)
        untestable = analyzer.untestable_faults(faults if current is circuit else None)
        if not untestable:
            break
        best: Optional[Tuple[int, Circuit, str]] = None
        candidates = _candidate_nets(current, untestable)
        for net, mode in candidates:
            control = f"SYN{round_index}"
            try:
                trial = _insert_control(current, net, control, mode)
            except NetlistError:
                continue
            trial_analyzer = SyndromeAnalyzer(trial)
            remaining = trial_analyzer.untestable_faults()
            score = len(remaining)
            if best is None or score < best[0]:
                best = (score, trial, control)
            if score == 0:
                break
        if best is None:
            break
        current = best[1]
        extra_inputs.append(best[2])
    final_analyzer = SyndromeAnalyzer(current)
    return SyndromeFixReport(
        circuit=current,
        extra_inputs=extra_inputs,
        extra_gates=len(current) - len(circuit),
        remaining_untestable=final_analyzer.untestable_faults(),
    )


def _candidate_nets(
    circuit: Circuit, untestable: Sequence[Fault]
) -> List[Tuple[str, str]]:
    """Nets worth trying: fault sites and their immediate fanin/fanout."""
    nets: List[Tuple[str, str]] = []
    seen = set()
    for fault in untestable:
        for net in _neighborhood(circuit, fault.net):
            for mode in ("or", "and"):
                key = (net, mode)
                if key not in seen:
                    seen.add(key)
                    nets.append(key)
    return nets


def _neighborhood(circuit: Circuit, net: str) -> List[str]:
    result = [net]
    driver = circuit.driver_of(net)
    if driver is not None:
        result.extend(driver.inputs)
    for gate in circuit.fanout_of(net):
        result.append(gate.output)
    return [n for n in result if not circuit.is_input(n)]


def _insert_control(
    circuit: Circuit, net: str, control: str, mode: str
) -> Circuit:
    """Rewire readers of ``net`` through OR(net, ctrl) / AND(net, ~ctrl).

    With the control held 0 the function is unchanged; exhaustive
    syndrome testing sweeps it like any other input, splitting the
    symmetry that hid the fault.
    """
    if circuit.is_input(net) or net not in circuit:
        raise NetlistError(f"cannot instrument {net!r}")
    modified = Circuit(f"{circuit.name}+{control}")
    for pi in circuit.inputs:
        modified.add_input(pi)
    modified.add_input(control)
    replaced = f"__{net}_{control}"
    for gate in circuit.gates:
        inputs = [replaced if n == net else n for n in gate.inputs]
        modified.add_gate(gate.kind, inputs, gate.output, gate.name)
    if mode == "or":
        modified.or_([net, control], replaced)
    else:
        modified.not_(control, f"__{control}_b")
        modified.and_([net, f"__{control}_b"], replaced)
    for po in circuit.outputs:
        modified.add_output(replaced if po == net else po)
    modified.validate()
    return modified
