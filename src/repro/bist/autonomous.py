"""Autonomous testing (§V-D; McCluskey & Bozorgui-Nesbat [118]).

Autonomous testing applies *all* input patterns to (sub)networks and
compares every output against the good machine, so it detects any fault
that leaves the network combinational — no fault model needed.  The
enablers:

* a **reconfigurable LFSR module** (Figs. 26-29) that is a normal
  register, an input generator (PRPG), or a signature analyzer;
* **partitioning**, because 2**100 patterns is not a plan:

  - *multiplexer partitioning* (Figs. 30-32): muxes route a chosen
    subnetwork's inputs to the generator and its outputs to the
    analyzer, so each subnetwork is verified exhaustively;
  - *sensitized partitioning* (Figs. 33-34): no muxes — hold select
    lines so existing paths sensitize a subnetwork's outputs through
    the rest of the logic; the 74181 splits into four N1 slices and
    one N2 combine network this way.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faults.collapse import collapse_faults
from ..faultsim.parallel_pattern import FaultSimulator
from ..faultsim.coverage import CoverageReport
from ..lfsr.lfsr import Lfsr
from ..lfsr.signature import Misr


class LfsrModuleMode(enum.Enum):
    """LfsrModuleMode: see the module docstring for context."""
    NORMAL = "normal"            # N = 1 (Fig. 27)
    SIGNATURE = "signature"      # N = 0, S = 1 (Fig. 28)
    GENERATOR = "generator"      # N = 0, S = 0 (Fig. 29)


class ReconfigurableLfsrModule:
    """The Figs. 26-29 building block: register / PRPG / signature analyzer."""

    def __init__(self, width: int = 3) -> None:
        self.width = width
        self.mode = LfsrModuleMode.NORMAL
        self._lfsr = Lfsr.maximal(width, state=1)
        self._misr = Misr(width)
        self.state = 0

    def set_mode(self, mode: LfsrModuleMode) -> None:
        """Switch the operating mode."""
        self.mode = mode
        if mode is LfsrModuleMode.GENERATOR:
            self._lfsr.state = self.state if self.state else 1
        elif mode is LfsrModuleMode.SIGNATURE:
            self._misr.state = self.state

    def clock(self, data_word: int = 0) -> int:
        """One clock; returns the module's parallel output word."""
        if self.mode is LfsrModuleMode.NORMAL:
            self.state = data_word & ((1 << self.width) - 1)
        elif self.mode is LfsrModuleMode.GENERATOR:
            self._lfsr.step()
            self.state = self._lfsr.state
        else:  # SIGNATURE
            self._misr.clock(data_word)
            self.state = self._misr.state
        return self.state

    def output_bits(self) -> List[int]:
        """Output bits."""
        return [(self.state >> i) & 1 for i in range(self.width)]


@dataclass
class SubnetworkPartition:
    """One autonomously-tested subnetwork: its support and observation."""

    name: str
    support: List[str]        # primary inputs exercised exhaustively
    held: Dict[str, int]      # primary inputs held constant (sensitization)
    observed: List[str]       # outputs carrying the subnetwork's responses

    @property
    def pattern_count(self) -> int:
        """Number of patterns this object implies."""
        return 1 << len(self.support)

    def patterns(self) -> List[Dict[str, int]]:
        """The expanded pattern list."""
        result = []
        for bits in itertools.product((0, 1), repeat=len(self.support)):
            pattern = dict(self.held)
            pattern.update(dict(zip(self.support, bits)))
            result.append(pattern)
        return result


@dataclass
class AutonomousTestResult:
    """Outcome of an autonomous test plan."""

    circuit_name: str
    partitions: List[SubnetworkPartition]
    total_patterns: int
    exhaustive_patterns: int
    coverage: CoverageReport

    @property
    def pattern_reduction(self) -> float:
        """Pattern reduction."""
        return self.exhaustive_patterns / self.total_patterns

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name}: {len(self.partitions)} partitions, "
            f"{self.total_patterns} patterns vs {self.exhaustive_patterns} "
            f"exhaustive ({self.pattern_reduction:.1f}x fewer), "
            f"coverage {self.coverage.coverage:.1%}"
        )


def run_autonomous_test(
    circuit: Circuit,
    partitions: Sequence[SubnetworkPartition],
    faults: Optional[Sequence[Fault]] = None,
) -> AutonomousTestResult:
    """Apply every partition's exhaustive pattern set; fault-simulate.

    Coverage is measured over the whole circuit's collapsed stuck-at
    list (autonomous testing claims more — any non-sequentializing
    fault — but stuck-at coverage is the comparable yardstick).
    """
    all_patterns: List[Dict[str, int]] = []
    for partition in partitions:
        all_patterns.extend(partition.patterns())
    simulator = FaultSimulator(circuit, faults=faults)
    coverage = simulator.run(all_patterns)
    return AutonomousTestResult(
        circuit_name=circuit.name,
        partitions=list(partitions),
        total_patterns=len(all_patterns),
        exhaustive_patterns=1 << len(circuit.inputs),
        coverage=coverage,
    )


def multiplexer_partition(
    circuit: Circuit, groups: Sequence[Sequence[str]]
) -> Tuple[Circuit, List[SubnetworkPartition]]:
    """Fig. 30 style: physically multiplex input groups.

    ``groups`` lists primary-input subsets; the returned circuit has a
    test-select input per group routing a shared generator bus ``GEN*``
    onto that group's inputs.  Each group becomes a partition tested
    from the (narrow) generator bus while other groups hold 0 —
    demonstrating the paper's gate-overhead warning along the way.
    """
    widths = [len(g) for g in groups]
    bus_width = max(widths) if widths else 0
    modified = Circuit(f"{circuit.name}_muxpart")
    for pi in circuit.inputs:
        modified.add_input(pi)
    selects = []
    for index in range(len(groups)):
        selects.append(modified.add_input(f"TSEL{index}"))
    gen_bus = [modified.add_input(f"GEN{i}") for i in range(bus_width)]
    replaced: Dict[str, str] = {}
    for index, group in enumerate(groups):
        sel = selects[index]
        sel_b = f"__tselb{index}"
        modified.not_(sel, sel_b)
        for position, net in enumerate(group):
            new_net = f"__{net}_mux"
            modified.and_([net, sel_b], f"__{net}_sys")
            modified.and_([gen_bus[position], sel], f"__{net}_gen")
            modified.or_([f"__{net}_sys", f"__{net}_gen"], new_net)
            replaced[net] = new_net
    for gate in circuit.gates:
        inputs = [replaced.get(n, n) for n in gate.inputs]
        modified.add_gate(gate.kind, inputs, gate.output, gate.name)
    for po in circuit.outputs:
        modified.add_output(replaced.get(po, po))
    modified.validate()

    partitions = []
    for index, group in enumerate(groups):
        held = {f"TSEL{i}": 1 if i == index else 0 for i in range(len(groups))}
        held.update({net: 0 for net in circuit.inputs})
        support = [f"GEN{i}" for i in range(len(group))]
        partitions.append(
            SubnetworkPartition(
                name=f"group{index}",
                support=support,
                held=held,
                observed=list(circuit.outputs),
            )
        )
    return modified, partitions


def sensitized_partitions_74181() -> List[SubnetworkPartition]:
    """The paper's Figs. 33-34 plan for the SN74181.

    * All ``L_i`` slice outputs: hold S2 = S3 = 0 (every ``H_i`` pins
      to 1, a non-controlling value), logic mode M = 1 so
      ``F_i = L_i`` — sweep S0, S1 and all A/B bits.
    * All ``H_i`` slice outputs: hold S0 = S1 = 1 (every ``L_i`` pins
      to 0), M = 1 so ``F_i = NOT(H_i)`` — sweep S2, S3 and A/B.
    * The N2 carry/combine network: arithmetic mode sweeps that drive
      the g/p rails through their combinations (S = 1001 add and
      S = 0110 subtract with both carries and boundary operands).

    Total patterns: far under the 2**14 exhaustive count.
    """
    ab_nets = [f"A{i}" for i in range(4)] + [f"B{i}" for i in range(4)]
    partitions = [
        SubnetworkPartition(
            name="N1-L-outputs",
            support=["S0", "S1"] + ab_nets,
            held={"S2": 0, "S3": 0, "M": 1, "CN": 1},
            observed=["F0", "F1", "F2", "F3"],
        ),
        SubnetworkPartition(
            name="N1-H-outputs",
            support=["S2", "S3"] + ab_nets,
            held={"S0": 1, "S1": 1, "M": 1, "CN": 1},
            observed=["F0", "F1", "F2", "F3"],
        ),
        SubnetworkPartition(
            name="N2-carry-add",
            support=ab_nets + ["CN"],
            held={"S0": 1, "S1": 0, "S2": 0, "S3": 1, "M": 0},
            observed=["F0", "F1", "F2", "F3", "CN4", "PBAR", "GBAR", "AEQB"],
        ),
    ]
    return partitions


def sensitized_partitions_74181_compact() -> List[SubnetworkPartition]:
    """A pattern-lean variant: the slice sweeps exploit the four
    identical N1 slices being exercised *in parallel* (each L_i/H_i
    depends only on its own A_i, B_i and the shared selects), so the
    A/B space is swept with matched bits instead of independently."""
    partitions = []
    # L outputs: S0,S1 x per-slice (A,B) — drive all slices with the
    # same (A,B) pair: 4 selects x 4 operand combos = 16 patterns.
    for s01 in range(4):
        for ab in range(4):
            held = {
                "S0": s01 & 1,
                "S1": (s01 >> 1) & 1,
                "S2": 0,
                "S3": 0,
                "M": 1,
                "CN": 1,
            }
            for i in range(4):
                held[f"A{i}"] = ab & 1
                held[f"B{i}"] = (ab >> 1) & 1
            partitions.append(
                SubnetworkPartition(
                    name=f"L-s{s01}-ab{ab}",
                    support=[],
                    held=held,
                    observed=["F0", "F1", "F2", "F3"],
                )
            )
    for s23 in range(4):
        for ab in range(4):
            held = {
                "S0": 1,
                "S1": 1,
                "S2": s23 & 1,
                "S3": (s23 >> 1) & 1,
                "M": 1,
                "CN": 1,
            }
            for i in range(4):
                held[f"A{i}"] = ab & 1
                held[f"B{i}"] = (ab >> 1) & 1
            partitions.append(
                SubnetworkPartition(
                    name=f"H-s{s23}-ab{ab}",
                    support=[],
                    held=held,
                    observed=["F0", "F1", "F2", "F3"],
                )
            )
    return partitions
