"""Testing by verifying Walsh coefficients (§V-C; Susskind [117]).

Map logical 0/1 to arithmetic -1/+1.  For an input subset ``S`` the
Walsh function ``W_S(x)`` is the product of the chosen inputs' ±1
values, and the coefficient ``C_S = Σ_x W_S(x)·F(x)`` over all 2**n
patterns.  Susskind's scheme measures just two coefficients:

* ``C_0`` (W_0 = 1) — equal in magnitude to the syndrome scaled by
  2**n (``C_0 = 2K - 2**n``);
* ``C_all`` — the coefficient of the all-inputs Walsh function; if
  ``C_all != 0`` every primary-input stuck-at fault forces
  ``C_all = 0`` and is therefore caught by measuring it.

The tester (Fig. 25) is a driving counter plus an up/down response
counter steered by the counter's parity — modeled in
:mod:`repro.testers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faultsim.expand import expand_branches, fault_site_net
from ..sim.packed import PackedPatternSet, PackedSimulator

MAX_WALSH_INPUTS = 20


def _popcount(word: int) -> int:
    return bin(word).count("1")


class WalshAnalyzer:
    """Exhaustive Walsh-coefficient computation (bit-parallel)."""

    def __init__(self, circuit: Circuit) -> None:
        if not circuit.is_combinational:
            raise NetlistError("Walsh testing is combinational")
        n = len(circuit.inputs)
        if n > MAX_WALSH_INPUTS:
            raise NetlistError(f"{n} inputs exceed the exhaustive limit")
        self.circuit = circuit
        with telemetry.span("bist.walsh.analyze", circuit=circuit.name):
            self.expanded, self._branch_map = expand_branches(circuit)
            self._sim = PackedSimulator(self.expanded)
            self._packed = PackedPatternSet.exhaustive(list(circuit.inputs))
            # One good-machine pass on the compiled core; faulty machines
            # re-evaluate only the fault's cached cone.
            self._injector = self._sim.injector(self._packed)
            self._good = self._injector.program.words_to_dict(self._injector.good)
            telemetry.incr("bist.walsh.patterns", self._packed.count)
        self._n = n

    @property
    def pattern_count(self) -> int:
        """Number of patterns this object implies."""
        return 1 << self._n

    def _parity_word(self, subset: Sequence[str]) -> int:
        word = 0
        for net in subset:
            word ^= self._packed.words[net]
        return word

    def _coefficient_from_words(
        self, parity: int, f_word: int, subset_size: int
    ) -> int:
        # W_S = prod (2x_i - 1) = (-1)^(#zeros in S).  With p the XOR of
        # the subset bits ((-1)^#ones == +1 iff p == 0):
        # W = (-1)^|S| * (+1 if p == 0 else -1), and F± = 2f - 1, so the
        # per-pattern product is +1 iff p XOR f == 1, all times (-1)^|S|.
        agree = _popcount((parity ^ f_word) & self._packed.mask)
        value = 2 * agree - self.pattern_count
        return -value if subset_size % 2 else value

    def coefficient(
        self, subset: Sequence[str], output: Optional[str] = None
    ) -> int:
        """``C_S`` of one output over the given input subset."""
        net = output if output is not None else self.circuit.outputs[0]
        return self._coefficient_from_words(
            self._parity_word(subset), self._good[net], len(subset)
        )

    def c0(self, output: Optional[str] = None) -> int:
        """C0."""
        return self.coefficient([], output)

    def c_all(self, output: Optional[str] = None) -> int:
        """C all."""
        return self.coefficient(list(self.circuit.inputs), output)

    def faulty_coefficients(
        self, fault: Fault, output: Optional[str] = None
    ) -> Tuple[int, int]:
        """(C_0, C_all) of the faulty machine."""
        telemetry.incr("bist.walsh.fault_evals")
        net = output if output is not None else self.circuit.outputs[0]
        site = fault_site_net(fault, self._branch_map)
        forced = self._packed.mask if fault.value else 0
        faulty = self._injector.faulty_output_words(
            self._injector.site_index(site), forced
        )
        f_word = faulty[net]
        inputs = list(self.circuit.inputs)
        return (
            self._coefficient_from_words(0, f_word, 0),
            self._coefficient_from_words(
                self._parity_word(inputs), f_word, len(inputs)
            ),
        )

    def detects(self, fault: Fault, output: Optional[str] = None) -> bool:
        """Would measuring (C_0, C_all) expose the fault?"""
        good = (self.c0(output), self.c_all(output))
        return self.faulty_coefficients(fault, output) != good

    def walsh_table(self, output: Optional[str] = None) -> List[Dict[str, int]]:
        """Per-minterm table in the paper's Table I layout."""
        net = output if output is not None else self.circuit.outputs[0]
        inputs = list(self.circuit.inputs)
        rows = []
        f_word = self._good[net]
        all_parity = self._parity_word(inputs)
        sign = -1 if len(inputs) % 2 else 1
        for minterm in range(self.pattern_count):
            f_bit = (f_word >> minterm) & 1
            w_all = sign * (1 - 2 * ((all_parity >> minterm) & 1))
            rows.append(
                {
                    "minterm": minterm,
                    "F": f_bit,
                    "W_all": w_all,
                    "W_all*F": w_all * (2 * f_bit - 1),
                }
            )
        return rows


def input_stuck_fault_theorem(analyzer: WalshAnalyzer, output: Optional[str] = None) -> bool:
    """Check the §V-C theorem on a circuit: if C_all != 0, every
    primary-input stuck fault zeroes C_all (and is thus detected).

    Returns True when the theorem's conclusion holds for this circuit.
    """
    if analyzer.c_all(output) == 0:
        return True  # theorem's hypothesis fails; nothing to check
    for net in analyzer.circuit.inputs:
        for value in (0, 1):
            fault = Fault(net, value)
            _, c_all_faulty = analyzer.faulty_coefficients(fault, output)
            if c_all_faulty != 0:
                return False
    return True
