"""repro: Design for Testability — a working reproduction of the 1982 survey.

The package implements the full menu of Williams & Parker's *Design for
Testability — A Survey*: fault modeling, logic/fault simulation, ATPG,
testability measures, the ad hoc board techniques, the structured scan
disciplines (LSSD, Scan Path, Scan/Set, Random-Access Scan), and the
self-test schemes (BILBO, Syndrome, Walsh, Autonomous testing), plus the
economics models behind the paper's cost arguments.

Quick start::

    from repro import circuits
    from repro.atpg import generate_tests
    from repro.faultsim import fault_coverage

    c = circuits.c17()
    result = generate_tests(c)
    report = fault_coverage(c, result.patterns)
    print(report)
"""

__version__ = "1.0.0"

from . import telemetry
from . import netlist
from . import circuits
from . import sim
from . import faults
from . import faultsim
from . import atpg
from . import testability
from . import lfsr
from . import economics
from . import adhoc
from . import scan
from . import bist
from . import testers
from . import store
from . import campaign
from . import bench_trajectory

__all__ = [
    "telemetry",
    "netlist",
    "circuits",
    "sim",
    "faults",
    "faultsim",
    "atpg",
    "testability",
    "lfsr",
    "economics",
    "adhoc",
    "scan",
    "bist",
    "testers",
    "store",
    "campaign",
    "__version__",
]
