"""Polynomial arithmetic over GF(2) and primitive polynomial tables.

Signature analysis is "the remainder of the data stream after division
by an irreducible polynomial" (§III-D); maximal-length LFSRs need
*primitive* polynomials, which the paper says designers obtain "by
consulting tables [8]" (Peterson & Weldon).  This module is that
consultation: a verified table for common degrees plus the machinery
(irreducibility and primitivity tests) to check or extend it.

A polynomial is an int: bit ``i`` is the coefficient of ``x**i``;
e.g. ``x**3 + x + 1`` is ``0b1011`` = 11.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

#: Primitive polynomials (Peterson & Weldon table conventions), one per
#: degree.  Bit i = coefficient of x^i.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    1: 0b11,                 # x + 1
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10000011,           # x^7 + x + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,  # x^17 + x^3 + 1
    18: 0b1000000000010000001,  # x^18 + x^7 + 1
    19: 0b10000000000000100111,  # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,  # x^20 + x^3 + 1
    24: 0b1000000000000000010000111,  # x^24 + x^7 + x^2 + x + 1
    32: 0b100000000010000000000000000000111,  # x^32+x^22+x^2+x+1
}


def degree(poly: int) -> int:
    """Degree of a GF(2) polynomial (−1 for the zero polynomial)."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less multiplication over GF(2)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod(a: int, modulus: int) -> int:
    """Remainder of ``a`` divided by ``modulus`` over GF(2)."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    d = degree(modulus)
    while degree(a) >= d:
        a ^= modulus << (degree(a) - d)
    return a


def poly_divmod(a: int, modulus: int) -> tuple:
    """(quotient, remainder) of GF(2) polynomial division."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    d = degree(modulus)
    quotient = 0
    while degree(a) >= d:
        shift = degree(a) - d
        quotient |= 1 << shift
        a ^= modulus << shift
    return quotient, a


def poly_mulmod(a: int, b: int, modulus: int) -> int:
    """(a * b) mod modulus over GF(2)."""
    return poly_mod(poly_mul(a, b), modulus)


def poly_powmod(base: int, exponent: int, modulus: int) -> int:
    """base**exponent mod modulus over GF(2), square-and-multiply."""
    result = 1
    base = poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def poly_gcd(a: int, b: int) -> int:
    """GCD of two GF(2) polynomials."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test over GF(2)."""
    n = degree(poly)
    if n <= 0:
        return False
    if n == 1:
        return True
    if not poly & 1:
        return False  # divisible by x
    x = 0b10
    # x^(2^n) == x (mod poly), and for each prime p | n,
    # gcd(x^(2^(n/p)) - x, poly) == 1.
    for p in _prime_factors(n):
        h = poly_powmod(x, 1 << (n // p), poly) ^ x
        if poly_gcd(h, poly) != 1:
            return False
    return poly_powmod(x, 1 << n, poly) == x


def is_primitive(poly: int) -> bool:
    """True when ``x`` generates the full multiplicative group mod poly."""
    n = degree(poly)
    if not is_irreducible(poly):
        return False
    order = (1 << n) - 1
    x = 0b10
    if poly_powmod(x, order, poly) != 1:
        return False
    for p in _prime_factors(order):
        if poly_powmod(x, order // p, poly) == 1:
            return False
    return True


def primitive_polynomial(n: int) -> int:
    """Look up (or search for) a primitive polynomial of degree ``n``."""
    if n in PRIMITIVE_POLYNOMIALS:
        return PRIMITIVE_POLYNOMIALS[n]
    for candidate in range((1 << n) + 1, 1 << (n + 1), 2):
        if is_primitive(candidate):
            return candidate
    raise ValueError(f"no primitive polynomial of degree {n} found")


def taps_from_polynomial(poly: int) -> List[int]:
    """Stage numbers to XOR for a Fibonacci LFSR with this polynomial.

    For ``p(x) = x^n + c_{n-1} x^{n-1} + ... + c_1 x + 1``, the feedback
    into stage 1 is the XOR of stages ``i`` where ``c_{n-i} = 1`` plus
    stage ``n`` (reciprocal-tap convention: stage i holds the bit that
    will exit after n - i more shifts).
    """
    n = degree(poly)
    taps = []
    for i in range(1, n + 1):
        if (poly >> (n - i)) & 1:
            taps.append(i)
    return taps


def polynomial_from_taps(taps: List[int], n: int) -> int:
    """Inverse of :func:`taps_from_polynomial`."""
    poly = 1 << n
    for tap in taps:
        poly |= 1 << (n - tap)
    return poly


def _prime_factors(value: int) -> List[int]:
    factors = []
    candidate = 2
    remaining = value
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            factors.append(candidate)
            while remaining % candidate == 0:
                remaining //= candidate
        candidate += 1 if candidate == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return factors
