"""Signature registers: SISR, MISR, and aliasing theory (§III-D, §V-A).

A single-input signature register (SISR) compresses a bit stream into
an n-bit *signature*; the paper describes it as "the remainder of the
data stream after division by an irreducible polynomial."  The Galois
implementation here makes that literal: after shifting in a stream, the
register state equals ``stream(x) * x^n mod p(x)``-style residue, and
two streams collide (*alias*) exactly when their XOR-difference
polynomial is divisible by ``p(x)``.

The multiple-input variant (MISR) is the compactor inside a BILBO
register (§V-A): each clock XORs a whole parallel word into the state.

Aliasing: of the ``2**L - 1`` nonzero error streams of length ``L``,
``2**(L-n) - 1`` alias (those divisible by ``p``), so the escape
probability approaches ``2**-n`` — the paper's "with a 16-bit linear
feedback shift register, the probability of detecting one or more
errors is extremely high" (1 - 2^-16 ≈ 99.998%).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .polynomials import degree, poly_mod, primitive_polynomial


class SignatureRegister:
    """Single-input signature register (Galois form).

    Shifting in stream bits MSB-first computes the polynomial residue
    of the stream modulo the characteristic polynomial.
    """

    def __init__(self, poly: Optional[int] = None, bits: int = 16) -> None:
        self.poly = poly if poly is not None else primitive_polynomial(bits)
        self.length = degree(self.poly)
        self.state = 0

    def reset(self) -> None:
        """Reset to the initial (all-clear) state."""
        self.state = 0

    def shift(self, bit: int) -> None:
        """Clock one stream bit into the register."""
        self.state = (self.state << 1) | (bit & 1)
        if self.state >> self.length:
            self.state ^= self.poly
        self.state &= (1 << self.length) - 1

    def shift_stream(self, bits: Iterable[int]) -> int:
        """Clock a whole bit stream in; returns the signature."""
        for bit in bits:
            self.shift(bit)
        return self.state

    @property
    def signature(self) -> int:
        """Current compacted signature value."""
        return self.state

    def signature_of(self, bits: Sequence[int]) -> int:
        """Signature of a stream from a clean start (convenience)."""
        self.reset()
        return self.shift_stream(bits)


def stream_residue(bits: Sequence[int], poly: int) -> int:
    """Direct polynomial-division view: stream(x) mod p(x).

    ``bits[0]`` is the highest-order coefficient (first bit shifted
    in).  :class:`SignatureRegister` computes exactly this — asserted
    by the property tests.
    """
    value = 0
    for bit in bits:
        value = (value << 1) | (bit & 1)
    return poly_mod(value, poly)


class Misr:
    """Multiple-input signature register of ``width`` parallel inputs.

    Galois core of ``width`` bits: each clock shifts once and XORs the
    input word in.  This is the BILBO register's ``B1 B2 = 10`` mode
    (paper Fig. 19(d)).
    """

    def __init__(self, width: int, poly: Optional[int] = None) -> None:
        self.width = width
        self.poly = poly if poly is not None else primitive_polynomial(width)
        if degree(self.poly) != width:
            raise ValueError("polynomial degree must equal the MISR width")
        self.state = 0

    def reset(self) -> None:
        """Reset to the initial (all-clear) state."""
        self.state = 0

    def clock(self, word: int) -> None:
        """Shift once and absorb an input word (bit i -> stage i)."""
        out = (self.state >> (self.width - 1)) & 1
        self.state = (self.state << 1) & ((1 << self.width) - 1)
        if out:
            self.state ^= self.poly & ((1 << self.width) - 1)
        self.state ^= word & ((1 << self.width) - 1)

    def clock_bits(self, bits: Sequence[int]) -> None:
        """Clock a list of parallel input bits in (bit i -> stage i)."""
        word = 0
        for index, bit in enumerate(bits):
            if bit:
                word |= 1 << index
        self.clock(word)

    def absorb(self, words: Iterable[int]) -> int:
        """Clock a sequence of words into the MISR; returns the signature."""
        for word in words:
            self.clock(word)
        return self.state

    @property
    def signature(self) -> int:
        """Current compacted signature value."""
        return self.state


def aliasing_probability(stream_length: int, signature_bits: int) -> float:
    """Exact aliasing probability over uniform nonzero error streams.

    Of the ``2**L - 1`` possible nonzero error polynomials of length
    ``L >= n``, exactly ``2**(L-n) - 1`` are multiples of the degree-n
    characteristic polynomial and therefore alias to the good signature.
    """
    if stream_length < signature_bits:
        return 0.0
    numerator = float(2 ** (stream_length - signature_bits) - 1)
    denominator = float(2 ** stream_length - 1)
    return numerator / denominator


def detection_probability(stream_length: int, signature_bits: int) -> float:
    """1 - aliasing probability (the paper's 'extremely high')."""
    return 1.0 - aliasing_probability(stream_length, signature_bits)


def measure_aliasing(
    poly: int, stream_length: int, trials: int, seed: int = 0
) -> float:
    """Monte-Carlo aliasing rate: random nonzero error streams that
    leave the signature unchanged."""
    import random

    rng = random.Random(seed)
    register = SignatureRegister(poly)
    aliased = 0
    for _ in range(trials):
        error = 0
        while error == 0:
            error = rng.getrandbits(stream_length)
        bits = [(error >> (stream_length - 1 - i)) & 1 for i in range(stream_length)]
        if register.signature_of(bits) == 0:
            aliased += 1
    return aliased / trials
