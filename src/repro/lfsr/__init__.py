"""LFSRs, GF(2) polynomials, signature registers, aliasing theory."""

from .polynomials import (
    PRIMITIVE_POLYNOMIALS,
    degree,
    poly_mul,
    poly_mod,
    poly_divmod,
    poly_mulmod,
    poly_powmod,
    poly_gcd,
    is_irreducible,
    is_primitive,
    primitive_polynomial,
    taps_from_polynomial,
    polynomial_from_taps,
)
from .lfsr import Lfsr, GaloisLfsr, pseudo_random_patterns
from .signature import (
    SignatureRegister,
    Misr,
    stream_residue,
    aliasing_probability,
    detection_probability,
    measure_aliasing,
)

__all__ = [
    "PRIMITIVE_POLYNOMIALS",
    "degree",
    "poly_mul",
    "poly_mod",
    "poly_divmod",
    "poly_mulmod",
    "poly_powmod",
    "poly_gcd",
    "is_irreducible",
    "is_primitive",
    "primitive_polynomial",
    "taps_from_polynomial",
    "polynomial_from_taps",
    "Lfsr",
    "GaloisLfsr",
    "pseudo_random_patterns",
    "SignatureRegister",
    "Misr",
    "stream_residue",
    "aliasing_probability",
    "detection_probability",
    "measure_aliasing",
]
