"""Behavioral linear feedback shift registers (paper Fig. 7).

Two canonical forms:

* :class:`Lfsr` — **Fibonacci** (external-XOR): the tapped stage
  outputs are XORed into the first stage; this is the form drawn in the
  paper's Fig. 7 (Q2 ⊕ Q3 feeds Q1, everything shifts right).
* :class:`GaloisLfsr` — internal-XOR; same sequence properties, and
  the state *is* a running polynomial remainder, which makes the
  signature-as-residue theorem (§III-D) directly visible.

With a primitive characteristic polynomial both forms cycle through all
``2**n - 1`` nonzero states (maximal length) — the "counting
capabilities" the paper's figure tabulates.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .polynomials import (
    degree,
    polynomial_from_taps,
    primitive_polynomial,
    taps_from_polynomial,
)


class Lfsr:
    """Fibonacci LFSR with stages numbered 1..n (stage 1 receives feedback).

    ``taps`` are stage numbers whose outputs are XORed into stage 1 —
    the paper's 3-bit example is ``Lfsr(taps=(2, 3))``.
    """

    def __init__(
        self,
        taps: Sequence[int],
        length: Optional[int] = None,
        state: int = 0b1,
    ) -> None:
        if not taps:
            raise ValueError("an LFSR needs at least one tap")
        self.length = length if length is not None else max(taps)
        if max(taps) > self.length or min(taps) < 1:
            raise ValueError("taps must be stage numbers within the register")
        self.taps = tuple(sorted(taps))
        self.state = state & self.mask

    @classmethod
    def maximal(cls, length: int, state: int = 0b1) -> "Lfsr":
        """A maximal-length LFSR from the primitive polynomial table."""
        poly = primitive_polynomial(length)
        return cls(taps_from_polynomial(poly), length, state)

    @property
    def mask(self) -> int:
        """Bit mask covering the register width."""
        return (1 << self.length) - 1

    @property
    def characteristic_polynomial(self) -> int:
        """Characteristic polynomial implied by the tap set."""
        return polynomial_from_taps(list(self.taps), self.length)

    def stage(self, number: int) -> int:
        """Current value of stage ``number`` (1-based, 1 = input side)."""
        if not 1 <= number <= self.length:
            raise IndexError(f"no stage {number}")
        return (self.state >> (number - 1)) & 1

    def stages(self) -> Tuple[int, ...]:
        """All stage values (Q1, Q2, ..., Qn)."""
        return tuple(self.stage(i) for i in range(1, self.length + 1))

    def feedback_bit(self) -> int:
        """XOR of the tapped stages (next stage-1 input)."""
        bit = 0
        for tap in self.taps:
            bit ^= self.stage(tap)
        return bit

    def step(self) -> int:
        """One shift; returns the bit leaving stage ``n``."""
        out = self.stage(self.length)
        feedback = self.feedback_bit()
        self.state = ((self.state << 1) | feedback) & self.mask
        return out

    def run(self, cycles: int) -> List[int]:
        """Shift ``cycles`` times; returns the output bit stream."""
        return [self.step() for _ in range(cycles)]

    def sequence_of_states(self, cycles: int) -> List[Tuple[int, ...]]:
        """State snapshots (like the table in the paper's Fig. 7)."""
        snapshots = [self.stages()]
        for _ in range(cycles):
            self.step()
            snapshots.append(self.stages())
        return snapshots

    def period(self, max_steps: Optional[int] = None) -> int:
        """Cycle length from the current state (0 for the stuck state)."""
        if self.state == 0:
            return 0
        start = self.state
        limit = max_steps if max_steps is not None else (1 << self.length)
        for count in range(1, limit + 1):
            self.step()
            if self.state == start:
                return count
        raise RuntimeError("period exceeds max_steps")

    def is_maximal_length(self) -> bool:
        """True when the register cycles through all 2^n - 1 states."""
        saved = self.state
        if saved == 0:
            self.state = 1
        period = self.period()
        self.state = saved
        return period == (1 << self.length) - 1


class GaloisLfsr:
    """Galois (internal-XOR) LFSR defined by its characteristic polynomial."""

    def __init__(self, poly: int, state: int = 0b1) -> None:
        self.poly = poly
        self.length = degree(poly)
        if self.length < 1:
            raise ValueError("polynomial degree must be >= 1")
        self.state = state & self.mask

    @property
    def mask(self) -> int:
        """Bit mask covering the register width."""
        return (1 << self.length) - 1

    def step(self) -> int:
        """One shift; returns the bit that left the register."""
        out = (self.state >> (self.length - 1)) & 1
        self.state = (self.state << 1) & self.mask
        if out:
            self.state ^= self.poly & self.mask
        return out

    def run(self, cycles: int) -> List[int]:
        """Run and collect the results."""
        return [self.step() for _ in range(cycles)]

    def period(self) -> int:
        """Cycle length from the current state."""
        if self.state == 0:
            return 0
        start = self.state
        for count in range(1, (1 << self.length) + 1):
            self.step()
            if self.state == start:
                return count
        raise RuntimeError("unreachable")


def pseudo_random_patterns(
    length: int, count: int, width: int, seed_state: int = 1
) -> List[List[int]]:
    """``count`` pseudo-random ``width``-bit patterns from a maximal LFSR.

    This is the PN-sequence source a BILBO register becomes when its
    inputs are held fixed (§V-A): successive register states, truncated
    to ``width`` bits.
    """
    lfsr = Lfsr.maximal(length, state=seed_state)
    patterns = []
    for _ in range(count):
        state = lfsr.stages()
        patterns.append(list(state[:width]))
        lfsr.step()
    return patterns
