"""Structural identity for circuits: the cache's addressing primitive.

The paper's cost argument (§II, Eq. 1) is that test generation and fault
simulation are paid over and over across a design's life.  Re-paying
them for the *same* netlist is pure waste — but "same" must mean the
same *structure*, not the same Python object: :attr:`Circuit.version`
is a per-object mutation counter (perfect for in-process staleness
checks, useless across processes), while the content-addressed result
store (:mod:`repro.store`) needs an identity that survives process
restarts, insertion-order differences, and object copies.

:func:`structural_hash` provides that identity: a SHA-256 over a
canonical form of the netlist — sorted primary inputs, sorted primary
outputs, and the gate set sorted by gate name, each gate recorded as
``(name, type, input nets in pin order, output net)``.  Two circuits
built by inserting the same gates in any order hash equal; changing a
single gate type, rewiring a single pin, or re-homing a flip-flop's
data/output net changes the hash.  Because the digest is SHA-256 over
canonical JSON (not Python's randomized ``hash()``), it is stable
across processes and platforms — the golden values pinned in
``tests/test_hashing.py`` hold on every machine.

:func:`cache_key` layers the *run* identity on top: circuit structure
plus circuit name (coverage reports carry the name; structurally equal
but differently named circuits must not share cache rows), engine,
seed, and a canonical JSON encoding of the flow parameters.  Anything
that can change a flow's deterministic output belongs in ``params``;
anything guaranteed not to (e.g. ``workers`` — sharded execution is
bit-identical by contract) must stay out, so warm caches are shared
across parallelism settings.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

from .circuit import Circuit

__all__ = [
    "HASH_SCHEMA",
    "CACHE_KEY_SCHEMA",
    "canonical_form",
    "structural_hash",
    "cache_key",
]

#: Version tag folded into every structural hash; bump on any change to
#: the canonical form so stale store entries can never alias new ones.
HASH_SCHEMA = "repro.structural-hash/1"

#: Version tag folded into every cache key.  v2 added the fault-model
#: axis: keys now include ``fault_model`` unconditionally, so rows
#: written for different models can never alias (and pre-v2 rows are
#: naturally orphaned rather than mis-served).
CACHE_KEY_SCHEMA = "repro.cache-key/2"


def canonical_form(circuit: Circuit) -> Dict[str, Any]:
    """Insertion-order-independent description of a netlist's structure.

    Primary inputs and outputs are sorted sets of net names; gates are
    sorted by gate name, each contributing its type, its input nets in
    pin order (pin order is fault-relevant: branch faults are named per
    pin, and asymmetric reconvergence makes pin swaps structural
    changes), and its output net.  The circuit's *name* is deliberately
    excluded — it is display metadata, not structure.
    """
    gates: List[List[Any]] = sorted(
        [gate.name, gate.kind.value, list(gate.inputs), gate.output]
        for gate in circuit.gates
    )
    return {
        "schema": HASH_SCHEMA,
        "inputs": sorted(circuit.inputs),
        "outputs": sorted(circuit.outputs),
        "gates": gates,
    }


def _digest(payload: Dict[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def structural_hash(circuit: Circuit) -> str:
    """SHA-256 hex digest of the circuit's canonical structure.

    Deterministic across processes and platforms, independent of object
    identity and of the order gates/inputs/outputs were inserted in.
    Any single gate-type change, connectivity (pin wiring) change, or
    flip-flop data/output change yields a different digest.  This is
    the cross-process identity the result store keys on;
    :attr:`Circuit.version` remains the *in-process* staleness counter.
    """
    return _digest(canonical_form(circuit))


def cache_key(
    circuit: Circuit,
    engine: Any,
    seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    fault_model: Any = "stuck_at",
) -> str:
    """Content address for one deterministic run over ``circuit``.

    ``engine`` may be a :class:`repro.faultsim.Engine` member or its
    string value.  ``params`` must be JSON-serializable and should hold
    every knob that can change the run's deterministic output (flow
    name, ATPG method, random-phase budget, fault limits, ...); a
    non-serializable value raises ``ValueError`` rather than silently
    producing an unstable key.  ``fault_model`` (a
    :class:`repro.faults.FaultModel` member or its string value) is a
    first-class axis of run identity — the same circuit graded under
    different models produces different results — and is folded in
    unconditionally, so the default-model key is byte-for-byte the
    explicit ``"stuck_at"`` key.  Keys are equal exactly when
    structure, circuit name, engine, seed, fault model, and params all
    agree.
    """
    engine_name = getattr(engine, "value", engine)
    model_name = getattr(fault_model, "value", fault_model)
    payload = {
        "schema": CACHE_KEY_SCHEMA,
        "structure": structural_hash(circuit),
        "circuit": circuit.name,
        "engine": str(engine_name),
        "seed": seed,
        "fault_model": str(model_name),
        "params": dict(params) if params else {},
    }
    try:
        return _digest(payload)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"cache_key params must be JSON-serializable: {exc}"
        ) from exc
