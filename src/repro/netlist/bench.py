"""Reader/writer for the ISCAS-85/89 ``.bench`` netlist format.

The bench format is the lingua franca of the test-generation literature
that grew out of the era this paper surveys::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = DFF(G10)

Gate names equal their output net names, which matches the convention of
:meth:`repro.netlist.circuit.Circuit.add_gate`.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from .circuit import Circuit, NetlistError
from .gates import GateType

_LINE_RE = re.compile(
    r"^\s*(?P<out>[^\s=]+)\s*=\s*(?P<kind>[A-Za-z01]+)\s*\(\s*(?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<dir>INPUT|OUTPUT)\s*\(\s*(?P<net>[^)\s]+)\s*\)\s*$")

_KIND_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse bench-format ``text`` into a :class:`Circuit`."""
    circuit = Circuit(name)
    pending_outputs: List[str] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            if io_match.group("dir") == "INPUT":
                circuit.add_input(io_match.group("net"))
            else:
                pending_outputs.append(io_match.group("net"))
            continue
        gate_match = _LINE_RE.match(line)
        if gate_match:
            kind_name = gate_match.group("kind").upper()
            kind = _KIND_ALIASES.get(kind_name)
            if kind is None:
                raise NetlistError(
                    f"line {line_number}: unknown gate type {kind_name!r}"
                )
            args = [a.strip() for a in gate_match.group("args").split(",") if a.strip()]
            circuit.add_gate(kind, args, gate_match.group("out"))
            continue
        raise NetlistError(f"line {line_number}: cannot parse {raw!r}")
    for net in pending_outputs:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def load_bench(path: str, name: str = "") -> Circuit:
    """Load a ``.bench`` file from disk."""
    with open(path) as handle:
        text = handle.read()
    return parse_bench(text, name or path)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit back to bench format."""
    lines: List[str] = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    for gate in circuit.topological_order():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.kind.value}({args})")
    for flop in circuit.flip_flops:
        lines.append(f"{flop.output} = DFF({flop.inputs[0]})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w") as handle:
        handle.write(write_bench(circuit))
