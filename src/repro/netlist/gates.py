"""Gate primitives for the netlist model.

The paper's techniques are all defined over simple gate-level networks:
AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF combinational primitives plus clocked
storage (D flip-flops in Scan Path, shift-register latches in LSSD,
addressable latches in Random-Access Scan).  The core netlist keeps a
single generic ``DFF`` storage primitive; the scan disciplines in
:mod:`repro.scan` refine it into their specific latch structures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from . import values as V


class GateType(enum.Enum):
    """Primitive gate types understood by every engine in the toolkit."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    DFF = "DFF"

    @property
    def is_sequential(self) -> bool:
        """Is sequential."""
        return self is GateType.DFF

    @property
    def is_inverting(self) -> bool:
        """True for gates whose output inverts the reduced input term."""
        return self in _INVERTING

    @property
    def min_inputs(self) -> int:
        """Min inputs."""
        return _MIN_INPUTS[self]

    @property
    def max_inputs(self) -> int:
        """Maximum input count (a large sentinel for unbounded gates)."""
        return _MAX_INPUTS[self]


_INVERTING = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}

_UNBOUNDED = 1 << 30

_MIN_INPUTS = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 1,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.DFF: 1,
}

_MAX_INPUTS = {
    GateType.AND: _UNBOUNDED,
    GateType.NAND: _UNBOUNDED,
    GateType.OR: _UNBOUNDED,
    GateType.NOR: _UNBOUNDED,
    GateType.XOR: _UNBOUNDED,
    GateType.XNOR: _UNBOUNDED,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.DFF: 1,
}

# Controlling value c and inversion i per gate type, in the classic
# (c, i) characterization: output = (any input == c) ? c^i : (~c)^i.
# XOR-family and constants have no controlling value (None).
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

INVERSION_PARITY = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 1,
    GateType.XOR: 0,
    GateType.XNOR: 1,
    GateType.NOT: 1,
    GateType.BUF: 0,
    GateType.DFF: 0,
}


@dataclass(frozen=True)
class Gate:
    """One gate instance: a named primitive driving exactly one net.

    ``inputs`` are net names in pin order; ``output`` is the driven net.
    The gate's name doubles as a stable identity for fault bookkeeping
    (faults are named ``<gate>/<pin>/SA<v>``).
    """

    name: str
    kind: GateType
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        n = len(self.inputs)
        if n < self.kind.min_inputs or n > self.kind.max_inputs:
            raise ValueError(
                f"gate {self.name}: {self.kind.value} cannot take {n} input(s)"
            )

    @property
    def fanin(self) -> int:
        """Number of input pins."""
        return len(self.inputs)


def evaluate(kind: GateType, input_values: Tuple[int, ...]) -> int:
    """Evaluate a combinational gate in the five-valued calculus.

    ``DFF`` is rejected here: storage elements are handled by the
    sequential simulators, which decide when a flip-flop samples.
    """
    if kind is GateType.AND:
        return V.v_and_all(input_values)
    if kind is GateType.NAND:
        return V.v_not(V.v_and_all(input_values))
    if kind is GateType.OR:
        return V.v_or_all(input_values)
    if kind is GateType.NOR:
        return V.v_not(V.v_or_all(input_values))
    if kind is GateType.XOR:
        return V.v_xor_all(input_values)
    if kind is GateType.XNOR:
        return V.v_not(V.v_xor_all(input_values))
    if kind is GateType.NOT:
        return V.v_not(input_values[0])
    if kind is GateType.BUF:
        return input_values[0]
    if kind is GateType.CONST0:
        return V.ZERO
    if kind is GateType.CONST1:
        return V.ONE
    raise ValueError(f"cannot combinationally evaluate gate type {kind}")


def evaluate_bool(kind: GateType, input_bits: Tuple[int, ...]) -> int:
    """Evaluate a combinational gate over plain 0/1 ints (fast path)."""
    if kind is GateType.AND:
        result = 1
        for bit in input_bits:
            result &= bit
        return result
    if kind is GateType.NAND:
        result = 1
        for bit in input_bits:
            result &= bit
        return result ^ 1
    if kind is GateType.OR:
        result = 0
        for bit in input_bits:
            result |= bit
        return result
    if kind is GateType.NOR:
        result = 0
        for bit in input_bits:
            result |= bit
        return result ^ 1
    if kind is GateType.XOR:
        result = 0
        for bit in input_bits:
            result ^= bit
        return result
    if kind is GateType.XNOR:
        result = 0
        for bit in input_bits:
            result ^= bit
        return result ^ 1
    if kind is GateType.NOT:
        return input_bits[0] ^ 1
    if kind is GateType.BUF:
        return input_bits[0]
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return 1
    raise ValueError(f"cannot combinationally evaluate gate type {kind}")
