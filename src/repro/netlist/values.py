"""Logic value systems used throughout the toolkit.

Three value systems appear in the paper's world:

* **Two-valued** Boolean logic (plain ``0``/``1`` ints) — used by the
  pattern-packed simulators where a Python int carries one bit per pattern.
* **Three-valued** logic (``0``, ``1``, ``X``) — used when a net may be
  unknown, e.g. before a sequential machine is initialized (Section II of
  the paper discusses predictability: CLEAR/PRESET test points exist
  precisely to remove ``X`` states).
* **Five-valued D-calculus** (``0``, ``1``, ``X``, ``D``, ``D'``) — Roth's
  calculus [93], the backbone of the D-algorithm and PODEM.  ``D`` means
  "1 in the good machine, 0 in the faulty machine"; ``DBAR`` the reverse.

The five-valued system subsumes the other two, so a single algebra is
implemented here and shared by all the reasoning engines.  Values are small
ints; gate functions are dense lookup tables, which keeps the inner loops of
the ATPG engines cheap.
"""

from __future__ import annotations

from typing import Iterable, Tuple

# Five-valued encoding.  Each value is a (good-machine, faulty-machine) pair
# of three-valued components; X3 marks "unknown" in a component.
ZERO = 0
ONE = 1
X = 2
D = 3  # good = 1, faulty = 0
DBAR = 4  # good = 0, faulty = 1

VALUES = (ZERO, ONE, X, D, DBAR)

_NAMES = {ZERO: "0", ONE: "1", X: "X", D: "D", DBAR: "D'"}
_FROM_NAME = {"0": ZERO, "1": ONE, "X": X, "x": X, "D": D, "D'": DBAR, "DBAR": DBAR}

# Three-valued component encoding used internally to build the tables.
_C0, _C1, _CX = 0, 1, 2

# (good, faulty) components per five-valued value.
_COMPONENTS = {
    ZERO: (_C0, _C0),
    ONE: (_C1, _C1),
    X: (_CX, _CX),
    D: (_C1, _C0),
    DBAR: (_C0, _C1),
}

_FROM_COMPONENTS = {comps: val for val, comps in _COMPONENTS.items()}


def value_name(value: int) -> str:
    """Render a five-valued logic value as its conventional name."""
    return _NAMES[value]


def value_from_name(name: str) -> int:
    """Parse ``"0"``, ``"1"``, ``"X"``, ``"D"`` or ``"D'"`` into a value."""
    try:
        return _FROM_NAME[name]
    except KeyError:
        raise ValueError(f"unknown logic value name: {name!r}") from None


def _and3(a: int, b: int) -> int:
    if a == _C0 or b == _C0:
        return _C0
    if a == _CX or b == _CX:
        return _CX
    return _C1


def _or3(a: int, b: int) -> int:
    if a == _C1 or b == _C1:
        return _C1
    if a == _CX or b == _CX:
        return _CX
    return _C0


def _not3(a: int) -> int:
    if a == _CX:
        return _CX
    return _C1 - a


def _xor3(a: int, b: int) -> int:
    if a == _CX or b == _CX:
        return _CX
    return a ^ b


def _lift2(op3, a: int, b: int) -> int:
    ag, af = _COMPONENTS[a]
    bg, bf = _COMPONENTS[b]
    pair = (op3(ag, bg), op3(af, bf))
    # Pairs with one unknown component (e.g. X AND D = (X, 0)) collapse
    # to X: the classic conservatism of the 5-valued calculus (a 9-valued
    # calculus would keep them distinct).
    if pair not in _FROM_COMPONENTS:
        return X
    return _FROM_COMPONENTS[pair]


def _build_table2(op3) -> Tuple[Tuple[int, ...], ...]:
    return tuple(
        tuple(_lift2(op3, a, b) for b in VALUES) for a in VALUES
    )


AND_TABLE = _build_table2(_and3)
OR_TABLE = _build_table2(_or3)
XOR_TABLE = _build_table2(_xor3)
NOT_TABLE = tuple(
    _FROM_COMPONENTS[(_not3(_COMPONENTS[a][0]), _not3(_COMPONENTS[a][1]))]
    for a in VALUES
)


def v_and(a: int, b: int) -> int:
    """Five-valued AND."""
    return AND_TABLE[a][b]


def v_or(a: int, b: int) -> int:
    """Five-valued OR."""
    return OR_TABLE[a][b]


def v_xor(a: int, b: int) -> int:
    """Five-valued XOR."""
    return XOR_TABLE[a][b]


def v_not(a: int) -> int:
    """Five-valued NOT."""
    return NOT_TABLE[a]


def v_and_all(values: Iterable[int]) -> int:
    """Five-valued AND reduced over an iterable of values."""
    result = ONE
    for value in values:
        result = AND_TABLE[result][value]
        if result == ZERO:
            return ZERO
    return result


def v_or_all(values: Iterable[int]) -> int:
    """Five-valued OR reduced over an iterable of values."""
    result = ZERO
    for value in values:
        result = OR_TABLE[result][value]
        if result == ONE:
            return ONE
    return result


def v_xor_all(values: Iterable[int]) -> int:
    """Five-valued XOR reduced over an iterable of values."""
    result = ZERO
    for value in values:
        result = XOR_TABLE[result][value]
    return result


def is_known(value: int) -> bool:
    """True when the value carries no unknown component (not ``X``)."""
    return value != X


def has_fault_effect(value: int) -> bool:
    """True when good and faulty machines differ (``D`` or ``D'``)."""
    return value == D or value == DBAR


def good_value(value: int) -> int:
    """Good-machine component of a five-valued value (``0``/``1``/``X``)."""
    comp = _COMPONENTS[value][0]
    return X if comp == _CX else comp


def faulty_value(value: int) -> int:
    """Faulty-machine component of a five-valued value (``0``/``1``/``X``)."""
    comp = _COMPONENTS[value][1]
    return X if comp == _CX else comp


def invert(value: int) -> int:
    """Alias for :func:`v_not`; reads better in fault-propagation code."""
    return NOT_TABLE[value]


def from_bool(bit: bool) -> int:
    """Map a Python bool onto ``ZERO``/``ONE``."""
    return ONE if bit else ZERO
