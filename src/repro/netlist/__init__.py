"""Gate-level netlist substrate: values, gates, circuits, bench I/O."""

from .values import (
    ZERO,
    ONE,
    X,
    D,
    DBAR,
    VALUES,
    value_name,
    value_from_name,
    v_and,
    v_or,
    v_xor,
    v_not,
    good_value,
    faulty_value,
    has_fault_effect,
)
from .gates import Gate, GateType, evaluate, evaluate_bool
from .circuit import Circuit, CircuitStats, NetlistError
from .bench import parse_bench, load_bench, write_bench, save_bench
from .hashing import canonical_form, structural_hash, cache_key

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "D",
    "DBAR",
    "VALUES",
    "value_name",
    "value_from_name",
    "v_and",
    "v_or",
    "v_xor",
    "v_not",
    "good_value",
    "faulty_value",
    "has_fault_effect",
    "Gate",
    "GateType",
    "evaluate",
    "evaluate_bool",
    "Circuit",
    "CircuitStats",
    "NetlistError",
    "parse_bench",
    "load_bench",
    "write_bench",
    "save_bench",
    "canonical_form",
    "structural_hash",
    "cache_key",
]
