"""The :class:`Circuit` netlist container.

A circuit is a set of named nets, each driven by exactly one source (a
primary input or a gate output), plus declared primary inputs and outputs.
Storage elements are ``DFF`` gates; their outputs are treated as
pseudo-primary-inputs and their inputs as pseudo-primary-outputs when the
combinational core is analyzed — exactly the decomposition that scan design
makes *physically real* (Fig. 9 of the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .gates import Gate, GateType


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, cycles, ...)."""


@dataclass
class CircuitStats:
    """Size summary used by the economics models and reports."""

    name: str
    num_gates: int
    num_combinational: int
    num_flip_flops: int
    num_inputs: int
    num_outputs: int
    num_nets: int
    max_level: int
    max_fanin: int
    max_fanout: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_gates} gates "
            f"({self.num_combinational} comb, {self.num_flip_flops} FF), "
            f"{self.num_inputs} PI, {self.num_outputs} PO, "
            f"depth {self.max_level}, max fanin {self.max_fanin}, "
            f"max fanout {self.max_fanout}"
        )


class Circuit:
    """A gate-level netlist with single-driver nets.

    The class is deliberately mutable-while-building and then analyzed
    lazily: structural queries (levels, fanout, cones) are computed on
    demand and cached; any mutation invalidates the caches.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._driver: Dict[str, Gate] = {}
        self._input_set: Set[str] = set()
        self._caches_valid = False
        self._version = 0
        self._topo_order: List[Gate] = []
        self._levels: Dict[str, int] = {}
        self._fanout: Dict[str, List[Gate]] = {}
        self._cyclic_gates: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare ``net`` as a primary input and return its name."""
        if net in self._input_set:
            raise NetlistError(f"duplicate primary input {net!r}")
        if net in self._driver:
            raise NetlistError(f"net {net!r} is already driven by a gate")
        self._inputs.append(net)
        self._input_set.add(net)
        self._invalidate()
        return net

    def add_inputs(self, nets: Iterable[str]) -> List[str]:
        """Declare several primary inputs, returning their names."""
        return [self.add_input(net) for net in nets]

    def add_output(self, net: str) -> str:
        """Declare ``net`` as a primary output (it may also feed logic)."""
        if net in self._outputs:
            raise NetlistError(f"duplicate primary output {net!r}")
        self._outputs.append(net)
        self._invalidate()
        return net

    def add_gate(
        self,
        kind: GateType,
        inputs: Sequence[str],
        output: str,
        name: Optional[str] = None,
    ) -> Gate:
        """Add a gate driving ``output`` from ``inputs``.

        Gate names default to the output net name, which matches the
        bench-format convention where a line reads ``out = AND(a, b)``.
        """
        gate_name = name if name is not None else output
        if gate_name in self._gates:
            raise NetlistError(f"duplicate gate name {gate_name!r}")
        if output in self._driver:
            raise NetlistError(f"net {output!r} already has a driver")
        if output in self._input_set:
            raise NetlistError(f"net {output!r} is a primary input")
        gate = Gate(gate_name, kind, tuple(inputs), output)
        self._gates[gate_name] = gate
        self._driver[output] = gate
        self._invalidate()
        return gate

    # Convenience wrappers keep example/circuit-generator code readable.
    def and_(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """And ."""
        return self.add_gate(GateType.AND, inputs, output, name)

    def nand(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """Add a NAND gate."""
        return self.add_gate(GateType.NAND, inputs, output, name)

    def or_(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """Or ."""
        return self.add_gate(GateType.OR, inputs, output, name)

    def nor(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """Add a NOR gate."""
        return self.add_gate(GateType.NOR, inputs, output, name)

    def xor(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """Add an XOR gate."""
        return self.add_gate(GateType.XOR, inputs, output, name)

    def xnor(self, inputs: Sequence[str], output: str, name: Optional[str] = None) -> Gate:
        """Add an XNOR gate."""
        return self.add_gate(GateType.XNOR, inputs, output, name)

    def not_(self, input_net: str, output: str, name: Optional[str] = None) -> Gate:
        """Not ."""
        return self.add_gate(GateType.NOT, [input_net], output, name)

    def buf(self, input_net: str, output: str, name: Optional[str] = None) -> Gate:
        """Add a buffer."""
        return self.add_gate(GateType.BUF, [input_net], output, name)

    def dff(self, data: str, output: str, name: Optional[str] = None) -> Gate:
        """Add a D flip-flop (implicit global clock)."""
        return self.add_gate(GateType.DFF, [data], output, name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input nets, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output nets, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """All gates, in insertion order."""
        return tuple(self._gates.values())

    def gate(self, name: str) -> Gate:
        """Look up a gate by name."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def has_gate(self, name: str) -> bool:
        """Has gate."""
        return name in self._gates

    def driver_of(self, net: str) -> Optional[Gate]:
        """Gate driving ``net``, or None when it is a primary input."""
        return self._driver.get(net)

    def is_input(self, net: str) -> bool:
        """Is input."""
        return net in self._input_set

    def nets(self) -> List[str]:
        """All net names: primary inputs first, then gate outputs."""
        return list(self._inputs) + [g.output for g in self._gates.values()]

    @property
    def flip_flops(self) -> List[Gate]:
        """Flip flops."""
        return [g for g in self._gates.values() if g.kind is GateType.DFF]

    @property
    def combinational_gates(self) -> List[Gate]:
        """Combinational gates."""
        return [g for g in self._gates.values() if g.kind is not GateType.DFF]

    @property
    def is_combinational(self) -> bool:
        """Is combinational."""
        return not any(g.kind is GateType.DFF for g in self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return net in self._input_set or net in self._driver

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, gates={len(self._gates)}, "
            f"inputs={len(self._inputs)}, outputs={len(self._outputs)})"
        )

    # ------------------------------------------------------------------
    # Structural analysis
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._caches_valid = False
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Incremented on every netlist mutation (gate/input/output added).
        External caches — most importantly the compiled evaluation
        programs in :mod:`repro.sim.compiled` — key on ``(circuit,
        version)`` so a mutated netlist can never be served a stale
        levelization or compiled program.
        """
        return self._version

    def _ensure_analyzed(self) -> None:
        if not self._caches_valid:
            self._analyze()

    def _analyze(self) -> None:
        self.validate()
        fanout: Dict[str, List[Gate]] = {net: [] for net in self.nets()}
        for gate in self._gates.values():
            for net in gate.inputs:
                fanout[net].append(gate)
        self._fanout = fanout

        # Levelize the combinational core; DFF outputs are level-0 sources
        # alongside primary inputs, DFFs themselves consume their D input
        # but do not propagate level (they cut the graph).
        levels: Dict[str, int] = {}
        for net in self._inputs:
            levels[net] = 0
        for gate in self._gates.values():
            if gate.kind is GateType.DFF:
                levels[gate.output] = 0

        in_degree: Dict[str, int] = {}
        ready: deque = deque()
        for gate in self._gates.values():
            if gate.kind is GateType.DFF:
                continue
            missing = sum(1 for net in gate.inputs if net not in levels)
            in_degree[gate.name] = missing
            if missing == 0:
                ready.append(gate)

        order: List[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            level = 1 + max((levels[n] for n in gate.inputs), default=0)
            levels[gate.output] = level
            for successor in fanout.get(gate.output, ()):
                if successor.kind is GateType.DFF:
                    continue
                in_degree[successor.name] -= 1
                if in_degree[successor.name] == 0:
                    ready.append(successor)

        # Gates left unplaced sit on combinational cycles (cross-coupled
        # latch structures are legitimate at the event-simulation level;
        # the levelized engines refuse them via topological_order()).
        self._cyclic_gates = sorted(
            name for name, deg in in_degree.items() if deg > 0
        )
        self._topo_order = order
        self._levels = levels
        self._caches_valid = True

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling input nets."""
        known = set(self._input_set)
        known.update(self._driver)
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self._outputs:
            if net not in known:
                raise NetlistError(f"primary output {net!r} is undriven")

    @property
    def cyclic_gates(self) -> List[str]:
        """Gates on combinational feedback loops (latch structures)."""
        self._ensure_analyzed()
        return list(self._cyclic_gates)

    @property
    def has_combinational_cycles(self) -> bool:
        """Has combinational cycles."""
        self._ensure_analyzed()
        return bool(self._cyclic_gates)

    def topological_order(self) -> List[Gate]:
        """Combinational gates in evaluation order (DFFs excluded).

        Raises for circuits with combinational feedback — those can only
        be handled by the event-driven simulator.
        """
        self._ensure_analyzed()
        if self._cyclic_gates:
            raise NetlistError(
                "combinational cycle involving gates: "
                + ", ".join(self._cyclic_gates[:10])
            )
        return list(self._topo_order)

    def level_of(self, net: str) -> int:
        """Logic depth of a net (0 for PIs and flip-flop outputs)."""
        self._ensure_analyzed()
        try:
            return self._levels[net]
        except KeyError:
            raise NetlistError(f"unknown net {net!r}") from None

    def depth(self) -> int:
        """Maximum combinational logic depth in the circuit."""
        self._ensure_analyzed()
        return max(self._levels.values(), default=0)

    def fanout_of(self, net: str) -> List[Gate]:
        """Gates reading ``net``."""
        self._ensure_analyzed()
        return list(self._fanout.get(net, ()))

    def fanout_count(self, net: str) -> int:
        """Fanout count."""
        self._ensure_analyzed()
        count = len(self._fanout.get(net, ()))
        if net in self._outputs:
            count += 1
        return count

    def is_fanout_stem(self, net: str) -> bool:
        """True when a net feeds more than one sink (fanout point)."""
        return self.fanout_count(net) > 1

    # ------------------------------------------------------------------
    # Cones and cuts
    # ------------------------------------------------------------------
    def input_cone(self, net: str) -> Set[str]:
        """All nets in the transitive fanin of ``net`` (inclusive).

        The backtrace stops at primary inputs and flip-flop outputs —
        the same rule NEC's Scan Path partitioner uses to carve the
        combinational logic into per-flip-flop partitions (Section IV-B).
        """
        self._ensure_analyzed()
        seen: Set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            driver = self._driver.get(current)
            if driver is None or driver.kind is GateType.DFF:
                continue
            stack.extend(driver.inputs)
        return seen

    def cone_inputs(self, net: str) -> List[str]:
        """Primary-input / FF-output sources feeding ``net``'s cone."""
        cone = self.input_cone(net)
        sources = []
        for candidate in cone:
            driver = self._driver.get(candidate)
            if driver is None or driver.kind is GateType.DFF:
                sources.append(candidate)
        return sorted(sources)

    def output_cone(self, net: str) -> Set[str]:
        """All nets in the transitive fanout of ``net`` (inclusive)."""
        self._ensure_analyzed()
        seen: Set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for gate in self._fanout.get(current, ()):
                if gate.kind is GateType.DFF:
                    continue
                stack.append(gate.output)
        return seen

    def extract_cone(self, net: str, name: Optional[str] = None) -> "Circuit":
        """Build a standalone circuit computing ``net`` from its cone."""
        cone = self.input_cone(net)
        sub = Circuit(name or f"{self.name}_cone_{net}")
        for source in self.cone_inputs(net):
            sub.add_input(source)
        for gate in self.topological_order():
            if gate.output in cone:
                sub.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
        sub.add_output(net)
        return sub

    # ------------------------------------------------------------------
    # Combinational view of a sequential circuit
    # ------------------------------------------------------------------
    def combinational_core(self, name: Optional[str] = None) -> "Circuit":
        """Cut every flip-flop, exposing PPIs and PPOs.

        Returns a purely combinational circuit in which each flip-flop
        ``f`` contributes a pseudo-primary-input named after its output
        net and a pseudo-primary-output named after its data net.  This
        is the network a scan-based ATPG targets (the reward of LSSD /
        Scan Path per Section IV: "the network can now be thought of as
        purely combinational").
        """
        core = Circuit(name or f"{self.name}_core")
        for net in self._inputs:
            core.add_input(net)
        for flop in self.flip_flops:
            core.add_input(flop.output)
        for gate in self.topological_order():
            core.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
        for net in self._outputs:
            core.add_output(net)
        for flop in self.flip_flops:
            data_net = flop.inputs[0]
            if data_net not in core._outputs:
                core.add_output(data_net)
        return core

    def pseudo_inputs(self) -> List[str]:
        """Flip-flop output nets (PPIs of the combinational core)."""
        return [flop.output for flop in self.flip_flops]

    def pseudo_outputs(self) -> List[str]:
        """Flip-flop data nets (PPOs of the combinational core)."""
        return [flop.inputs[0] for flop in self.flip_flops]

    # ------------------------------------------------------------------
    # Copying / renaming
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Structural copy (same nets and gate names)."""
        dup = Circuit(name or self.name)
        for net in self._inputs:
            dup.add_input(net)
        for gate in self._gates.values():
            dup.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
        for net in self._outputs:
            dup.add_output(net)
        return dup

    def renamed(self, prefix: str, name: Optional[str] = None) -> "Circuit":
        """Copy with every net/gate name prefixed (for stitching boards)."""
        dup = Circuit(name or f"{prefix}{self.name}")
        mapping = {net: prefix + net for net in self.nets()}
        for net in self._inputs:
            dup.add_input(mapping[net])
        for gate in self._gates.values():
            dup.add_gate(
                gate.kind,
                [mapping[n] for n in gate.inputs],
                mapping[gate.output],
                prefix + gate.name,
            )
        for net in self._outputs:
            dup.add_output(mapping[net])
        return dup

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> CircuitStats:
        """Size/shape summary of the netlist."""
        self._ensure_analyzed()
        fanouts = [self.fanout_count(net) for net in self.nets()]
        fanins = [gate.fanin for gate in self._gates.values()]
        return CircuitStats(
            name=self.name,
            num_gates=len(self._gates),
            num_combinational=len(self.combinational_gates),
            num_flip_flops=len(self.flip_flops),
            num_inputs=len(self._inputs),
            num_outputs=len(self._outputs),
            num_nets=len(self.nets()),
            max_level=self.depth(),
            max_fanin=max(fanins, default=0),
            max_fanout=max(fanouts, default=0),
        )
