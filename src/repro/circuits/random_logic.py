"""Seeded random circuit generators for scaling studies.

Equation (1) of the paper claims test generation plus fault simulation
run time grows like ``K * N**3`` (fault simulation alone like ``N**2``).
Regenerating that curve needs a *family* of circuits of increasing gate
count with comparable structure; these generators provide it,
deterministically from a seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType

_COMBINATIONAL_KINDS = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
)


def random_combinational(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    max_fanin: int = 4,
    num_outputs: Optional[int] = None,
    kinds: Sequence[GateType] = _COMBINATIONAL_KINDS,
) -> Circuit:
    """Random DAG of combinational gates with bounded fan-in.

    Every gate draws its inputs from earlier nets, guaranteeing
    acyclicity.  Nets left unread become primary outputs (plus extra
    sampled outputs up to ``num_outputs``), so no logic is dangling.
    """
    if num_inputs < 2:
        raise ValueError("need at least 2 inputs")
    rng = random.Random(seed)
    c = Circuit(f"rand_i{num_inputs}_g{num_gates}_s{seed}")
    nets: List[str] = [c.add_input(f"I{i}") for i in range(num_inputs)]
    read = set()
    for g in range(num_gates):
        kind = rng.choice(kinds)
        if kind is GateType.NOT:
            fanin = 1
        else:
            fanin = rng.randint(max(2, kind.min_inputs), min(max_fanin, len(nets)))
        sources = rng.sample(nets, fanin)
        out = f"N{g}"
        c.add_gate(kind, sources, out)
        read.update(sources)
        nets.append(out)
    dangling = [n for n in nets if n not in read and not c.is_input(n)]
    for net in dangling:
        c.add_output(net)
    if num_outputs is not None and len(dangling) < num_outputs:
        candidates = [
            n for n in nets if n not in dangling and not c.is_input(n)
        ]
        extra = rng.sample(
            candidates, min(num_outputs - len(dangling), len(candidates))
        )
        for net in extra:
            c.add_output(net)
    if not c.outputs:
        c.add_output(nets[-1])
    return c


def random_sequential(
    num_inputs: int,
    num_gates: int,
    num_flip_flops: int,
    seed: int = 0,
    max_fanin: int = 4,
) -> Circuit:
    """Random synchronous sequential circuit (Huffman model).

    Flip-flop outputs join the primary inputs as sources for a random
    combinational cloud; flip-flop data inputs are drawn from the cloud.
    This is the "general sequential machine" of the paper's Fig. 9,
    pre-scan: the circuit every structured technique exists to tame.
    """
    if num_flip_flops < 1:
        raise ValueError("need at least 1 flip-flop")
    rng = random.Random(seed)
    c = Circuit(f"seq_i{num_inputs}_g{num_gates}_f{num_flip_flops}_s{seed}")
    sources: List[str] = [c.add_input(f"I{i}") for i in range(num_inputs)]
    ff_outputs = [f"Q{i}" for i in range(num_flip_flops)]
    # Gate inputs may reference Q nets before the DFFs are added; the
    # netlist defers connectivity validation until validate().
    nets = sources + ff_outputs
    read = set()
    gate_nets: List[str] = []
    for g in range(num_gates):
        kind = rng.choice(_COMBINATIONAL_KINDS)
        fanin = 1 if kind is GateType.NOT else rng.randint(
            2, min(max_fanin, len(nets))
        )
        chosen = rng.sample(nets, fanin)
        out = f"N{g}"
        c.add_gate(kind, chosen, out)
        read.update(chosen)
        nets.append(out)
        gate_nets.append(out)
    for i in range(num_flip_flops):
        data = rng.choice(gate_nets)
        c.dff(data, ff_outputs[i], name=f"FF{i}")
        read.add(data)
    dangling = [n for n in gate_nets if n not in read]
    for net in dangling:
        c.add_output(net)
    if not c.outputs:
        c.add_output(gate_nets[-1])
    c.validate()
    return c
