"""ISCAS-85-scale synthetic benchmark circuits, via the bench format.

The ISCAS-85 netlists themselves are distribution-encumbered, so the
scaling studies use seeded random logic shaped like them: the profiles
below mirror the published input/output/gate counts of the classic
c432..c7552 suite (Brglez & Fujiwara, ISCAS 1985).  Each circuit is
generated deterministically (:func:`repro.circuits.random_logic.
random_combinational`), then **round-tripped through the ISCAS bench
format** (:mod:`repro.netlist.bench`) so every benchmark circuit also
exercises the parser/serializer path real netlists would take, and the
returned circuit carries the profile name (``r432``, ``r1908``, ...).

These are 10-100x the 74181 ALU (~62 gates) — the scale at which the
paper's Eq. (1) cost model starts to bite and where the wide engine's
lane batching is measured (``benchmarks/bench_faultsim_engines.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..netlist.bench import parse_bench, write_bench
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from .random_logic import random_combinational

#: name -> (inputs, gates, outputs, seed); input/output/gate counts
#: follow the ISCAS-85 circuit of the matching number.
ISCAS85_PROFILES: Dict[str, Tuple[int, int, int, int]] = {
    "r432": (36, 160, 7, 432),
    "r880": (60, 383, 26, 880),
    "r1355": (41, 546, 32, 1355),
    "r1908": (33, 880, 25, 1908),
    "r2670": (157, 1193, 64, 2670),
    "r3540": (50, 1669, 22, 3540),
    "r5315": (178, 2307, 123, 5315),
}


def _fold_gate_count(dangling: int, target: int) -> int:
    """Gates a fanin-4 XOR reduction needs to fold ``dangling`` nets
    down to exactly ``target`` outputs."""
    count = 0
    while dangling > target:
        take = min(4, dangling - target + 1)
        dangling -= take - 1
        count += 1
    return count


def _fold_outputs(cloud: Circuit, target: int, name: str) -> Circuit:
    """Rebuild ``cloud`` with its surplus outputs XOR-folded away.

    ``random_combinational`` promotes every unread net to a primary
    output, which at ISCAS scale yields far more outputs than the real
    circuits have.  Folding the surplus through a fanin-4 XOR tree keeps
    every net observable (XOR propagates any single fault difference)
    while pinning the PO count to the published profile figure.
    """
    folded = Circuit(name)
    folded.add_inputs(cloud.inputs)
    for gate in cloud.gates:
        folded.add_gate(gate.kind, gate.inputs, gate.output)
    queue = list(cloud.outputs)
    index = 0
    while len(queue) > target:
        take = min(4, len(queue) - target + 1)
        sources, queue = queue[:take], queue[take:]
        out = f"FOLD{index}"
        folded.add_gate(GateType.XOR, sources, out)
        queue.append(out)
        index += 1
    for net in queue:
        folded.add_output(net)
    return folded


def iscas85_like(profile: str = "r880", seed: int = 0) -> Circuit:
    """A deterministic ISCAS-85-scale circuit for the given profile.

    ``seed`` offsets the generator seed so several structurally distinct
    instances of one profile exist; ``seed=0`` is the canonical zoo
    member.  The primary input and output counts match the published
    profile exactly (surplus generator outputs are folded through XOR
    reduction gates), and the total gate count lands on the published
    figure whenever the fold-overhead iteration converges — always
    within a few gates.  The result has been serialized to bench format
    and parsed back, so it is exactly what
    :func:`repro.netlist.bench.load_bench` would return for the
    equivalent ``.bench`` file.
    """
    try:
        inputs, gates, outputs, base_seed = ISCAS85_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown ISCAS-85 profile {profile!r}; "
            f"known: {sorted(ISCAS85_PROFILES)}"
        ) from None
    # Reserve gate budget for the output fold so the total stays at the
    # published count.  The reserve depends on how many nets dangle,
    # which depends on the reserve — iterate to the fixed point.
    overhead = 0
    cloud = None
    for _ in range(8):
        cloud = random_combinational(
            max(2, inputs),
            max(1, gates - overhead),
            seed=base_seed + seed,
            max_fanin=4,
            num_outputs=outputs,
        )
        need = _fold_gate_count(len(cloud.outputs), outputs)
        if need == overhead:
            break
        overhead = need
    generated = _fold_outputs(cloud, outputs, profile)
    # Round-trip through the interchange format: benchmark circuits take
    # the same path as netlists loaded from disk.
    circuit = parse_bench(write_bench(generated), name=profile)
    circuit.name = profile if seed == 0 else f"{profile}_s{seed}"
    return circuit
