"""Small classic circuits used throughout the tests and benchmarks."""

from __future__ import annotations

from typing import List

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark: 6 NAND gates, 5 inputs, 2 outputs."""
    c = Circuit("c17")
    for net in ("G1", "G2", "G3", "G6", "G7"):
        c.add_input(net)
    c.nand(["G1", "G3"], "G10")
    c.nand(["G3", "G6"], "G11")
    c.nand(["G2", "G11"], "G16")
    c.nand(["G11", "G7"], "G19")
    c.nand(["G10", "G16"], "G22")
    c.nand(["G16", "G19"], "G23")
    c.add_output("G22")
    c.add_output("G23")
    return c


def and_gate(fanin: int = 2) -> Circuit:
    """The paper's Fig. 1 device under test: a single AND gate."""
    c = Circuit(f"and{fanin}")
    nets = [c.add_input(chr(ord("A") + i)) for i in range(fanin)]
    c.and_(nets, "Y")
    c.add_output("Y")
    return c


def inverter_chain(length: int) -> Circuit:
    """A chain of inverters; the simplest deep circuit."""
    c = Circuit(f"invchain{length}")
    previous = c.add_input("IN")
    for i in range(length):
        out = f"N{i}"
        c.not_(previous, out)
        previous = out
    c.add_output(previous)
    return c


def parity_tree(width: int) -> Circuit:
    """Balanced XOR tree computing the parity of ``width`` inputs.

    Parity trees are the classic random-pattern-friendly circuit: every
    input change flips the output, so any pattern detects half the faults.
    """
    if width < 2:
        raise ValueError("parity tree needs at least 2 inputs")
    c = Circuit(f"parity{width}")
    layer = [c.add_input(f"I{i}") for i in range(width)]
    counter = 0
    while len(layer) > 1:
        next_layer: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            out = f"X{counter}"
            counter += 1
            c.xor([layer[i], layer[i + 1]], out)
            next_layer.append(out)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
    c.buf(layer[0], "PARITY")
    c.add_output("PARITY")
    return c


def majority3() -> Circuit:
    """Three-input majority voter (carry function of a full adder)."""
    c = Circuit("majority3")
    a, b, ci = c.add_inputs(["A", "B", "C"])
    c.and_([a, b], "AB")
    c.and_([a, ci], "AC")
    c.and_([b, ci], "BC")
    c.or_(["AB", "AC", "BC"], "MAJ")
    c.add_output("MAJ")
    return c


def mux(select_bits: int) -> Circuit:
    """A ``2**select_bits``-to-1 multiplexer built from AND-OR logic."""
    n = 1 << select_bits
    c = Circuit(f"mux{n}")
    selects = [c.add_input(f"S{i}") for i in range(select_bits)]
    datas = [c.add_input(f"D{i}") for i in range(n)]
    select_bars = []
    for i, sel in enumerate(selects):
        bar = f"SB{i}"
        c.not_(sel, bar)
        select_bars.append(bar)
    terms = []
    for value in range(n):
        literals = [datas[value]]
        for bit in range(select_bits):
            literals.append(
                selects[bit] if (value >> bit) & 1 else select_bars[bit]
            )
        term = f"T{value}"
        c.and_(literals, term)
        terms.append(term)
    c.or_(terms, "Y")
    c.add_output("Y")
    return c


def decoder(select_bits: int, with_enable: bool = False) -> Circuit:
    """An N-to-2^N decoder; the paper's §III-B test-point controller.

    With ``with_enable`` the decoder models the dual-mode pin trick:
    one pin selects "system operation" vs "gate the N inputs to a
    decoder" whose ``2**N`` outputs force hard-to-reach nets.
    """
    n = 1 << select_bits
    c = Circuit(f"decoder{select_bits}to{n}")
    selects = [c.add_input(f"S{i}") for i in range(select_bits)]
    enable = c.add_input("EN") if with_enable else None
    select_bars = []
    for i, sel in enumerate(selects):
        bar = f"SB{i}"
        c.not_(sel, bar)
        select_bars.append(bar)
    for value in range(n):
        literals = []
        for bit in range(select_bits):
            literals.append(
                selects[bit] if (value >> bit) & 1 else select_bars[bit]
            )
        if enable is not None:
            literals.append(enable)
        out = f"Y{value}"
        c.and_(literals, out)
        c.add_output(out)
    return c


def comparator(width: int) -> Circuit:
    """Equality comparator: ``EQ = 1`` iff ``A == B`` bitwise."""
    c = Circuit(f"cmp{width}")
    eq_bits = []
    for i in range(width):
        a = c.add_input(f"A{i}")
        b = c.add_input(f"B{i}")
        bit = f"E{i}"
        c.xnor([a, b], bit)
        eq_bits.append(bit)
    if len(eq_bits) == 1:
        c.buf(eq_bits[0], "EQ")
    else:
        c.and_(eq_bits, "EQ")
    c.add_output("EQ")
    return c
