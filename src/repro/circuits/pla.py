"""Programmable Logic Array model (paper Fig. 22).

A PLA is an AND plane (product terms over input literals) feeding an OR
plane (sums of products).  The paper singles PLAs out as the known
random-pattern-resistant structure: a 20-input product term is exercised
by a random pattern with probability ``2**-20``, so BILBO-style random
testing fails (Section V-A).

:class:`Pla` is a symbolic description; :func:`Pla.to_circuit` lowers it
to the standard two-level gate netlist so every engine in the toolkit
(fault simulation, ATPG, syndrome analysis) can run on it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..netlist.circuit import Circuit


@dataclass(frozen=True)
class ProductTerm:
    """One AND-plane row: a cube mapping input index -> required literal.

    ``literals`` maps input position to ``1`` (true literal) or ``0``
    (complemented literal); inputs absent from the map are don't-cares.
    """

    literals: Tuple[Tuple[int, int], ...]

    @staticmethod
    def from_dict(literals: Dict[int, int]) -> "ProductTerm":
        """From dict."""
        return ProductTerm(tuple(sorted(literals.items())))

    @property
    def fanin(self) -> int:
        """Number of programmed literals in this term."""
        return len(self.literals)

    def evaluate(self, input_bits: Sequence[int]) -> int:
        """Evaluate for one input vector."""
        for index, polarity in self.literals:
            if input_bits[index] != polarity:
                return 0
        return 1

    def detection_probability(self) -> float:
        """Probability a uniform random pattern activates this term."""
        return 0.5 ** self.fanin


@dataclass
class Pla:
    """A PLA: named inputs, product terms, and OR-plane connections."""

    name: str
    num_inputs: int
    terms: List[ProductTerm] = field(default_factory=list)
    outputs: List[List[int]] = field(default_factory=list)  # term indices

    def add_term(self, literals: Dict[int, int]) -> int:
        """Add a product term; returns its index for OR-plane wiring."""
        for index in literals:
            if not 0 <= index < self.num_inputs:
                raise ValueError(f"literal index {index} out of range")
        self.terms.append(ProductTerm.from_dict(literals))
        return len(self.terms) - 1

    def add_output(self, term_indices: Sequence[int]) -> int:
        """Add an OR-plane output summing the given product terms."""
        for index in term_indices:
            if not 0 <= index < len(self.terms):
                raise ValueError(f"term index {index} out of range")
        self.outputs.append(list(term_indices))
        return len(self.outputs) - 1

    @property
    def max_term_fanin(self) -> int:
        """Max term fanin."""
        return max((t.fanin for t in self.terms), default=0)

    def evaluate(self, input_bits: Sequence[int]) -> List[int]:
        """Evaluate for one input vector."""
        term_values = [t.evaluate(input_bits) for t in self.terms]
        return [
            1 if any(term_values[i] for i in indices) else 0
            for indices in self.outputs
        ]

    def to_circuit(self) -> Circuit:
        """Lower to a two-level AND-OR netlist with explicit inverters."""
        c = Circuit(self.name)
        inputs = [c.add_input(f"I{i}") for i in range(self.num_inputs)]
        inverted: Dict[int, str] = {}
        for index in sorted(
            {i for term in self.terms for i, pol in term.literals if pol == 0}
        ):
            bar = f"NI{index}"
            c.not_(inputs[index], bar)
            inverted[index] = bar
        from ..netlist.gates import GateType

        for t_index, term in enumerate(self.terms):
            literals = [
                inputs[i] if polarity else inverted[i]
                for i, polarity in term.literals
            ]
            out = f"P{t_index}"
            if not literals:
                # A term with no programmed literals is always on (the
                # fully-grown fault case).
                c.add_gate(GateType.CONST1, [], out)
            elif len(literals) == 1:
                c.buf(literals[0], out)
            else:
                c.and_(literals, out)
        for o_index, indices in enumerate(self.outputs):
            nets = [f"P{i}" for i in indices]
            out = f"O{o_index}"
            if not nets:
                # An output with no connected terms is constant 0 (the
                # fully-disappeared fault case).
                c.add_gate(GateType.CONST0, [], out)
            elif len(nets) == 1:
                c.buf(nets[0], out)
            else:
                c.or_(nets, out)
            c.add_output(out)
        return c


def wide_and_pla(fanin: int) -> Pla:
    """Single product term of the given fan-in: the paper's worst case."""
    pla = Pla(f"pla_and{fanin}", fanin)
    term = pla.add_term({i: 1 for i in range(fanin)})
    pla.add_output([term])
    return pla


def random_pla(
    num_inputs: int,
    num_terms: int,
    num_outputs: int,
    term_fanin: int,
    seed: int = 0,
) -> Pla:
    """Random PLA with fixed per-term fan-in, for sweep experiments."""
    rng = random.Random(seed)
    pla = Pla(f"pla_r{num_inputs}x{num_terms}", num_inputs)
    for _ in range(num_terms):
        indices = rng.sample(range(num_inputs), min(term_fanin, num_inputs))
        pla.add_term({i: rng.randint(0, 1) for i in indices})
    for _ in range(num_outputs):
        count = rng.randint(1, max(1, num_terms // 2))
        pla.add_output(rng.sample(range(num_terms), count))
    return pla


def bcd_to_seven_segment() -> Pla:
    """A realistic PLA: BCD digit to 7-segment decoder (segments a-g)."""
    # Segment truth per digit 0-9 (a, b, c, d, e, f, g).
    segments = {
        "a": [0, 2, 3, 5, 6, 7, 8, 9],
        "b": [0, 1, 2, 3, 4, 7, 8, 9],
        "c": [0, 1, 3, 4, 5, 6, 7, 8, 9],
        "d": [0, 2, 3, 5, 6, 8, 9],
        "e": [0, 2, 6, 8],
        "f": [0, 4, 5, 6, 8, 9],
        "g": [2, 3, 4, 5, 6, 8, 9],
    }
    pla = Pla("bcd7seg", 4)
    term_for_digit = {}
    for digit in range(10):
        term_for_digit[digit] = pla.add_term(
            {bit: (digit >> bit) & 1 for bit in range(4)}
        )
    for name in "abcdefg":
        pla.add_output([term_for_digit[d] for d in segments[name]])
    return pla
