"""Gate-level SN74181 4-bit ALU / function generator.

The 74181 is the paper's canonical "real network": Savir's syndrome work
quotes it (§V-B, "SN74181, etc."), and McCluskey's Autonomous Testing
partitions it by *sensitized partitioning* (Figs. 33-34).  The netlist
here follows the device's documented AND-OR-INVERT bit-slice structure:

* Four identical slices ``N1`` (one per bit) compute two intermediate
  rails from ``A_i``, ``B_i`` and the function-select lines::

      L_i = NOR(A_i, S0·B_i, S1·~B_i)          (the paper's "L_i outputs")
      H_i = NOR(S2·A_i·~B_i, S3·A_i·B_i)       (the paper's "H_i outputs")

* A combine network ``N2`` forms the sum/function outputs
  ``F_i = L_i XOR H_i XOR c_i`` around an internal carry chain with
  generate ``g_i = NOT(H_i)`` and propagate ``p_i = NOT(L_i)``; mode
  ``M`` forces every internal carry to 1, collapsing the XOR into the
  pure logic functions.

Pin conventions match the active-high data sheet: the carry input ``CN``
and carry output ``CN4`` are active-low (``CN = 0`` injects a carry),
``PBAR``/``GBAR`` are the active-low group propagate/generate, and
``AEQB`` is the open-collector equality flag (all ``F_i`` high).

The paper's sensitized-partitioning facts hold structurally: with
``S2 = S3 = 0`` every ``H_i`` is pinned to 1 (non-controlling), exposing
all ``L_i``; with ``S0 = S1 = 1`` every ``L_i`` is pinned to 0, exposing
all ``H_i`` (Fig. 34).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netlist.circuit import Circuit

#: Input pin names in canonical order.
INPUT_PINS = (
    "A0", "A1", "A2", "A3",
    "B0", "B1", "B2", "B3",
    "S0", "S1", "S2", "S3",
    "M", "CN",
)

#: Output pin names in canonical order.
OUTPUT_PINS = ("F0", "F1", "F2", "F3", "CN4", "PBAR", "GBAR", "AEQB")

#: Nets of the per-bit slice subnetworks N1 (paper Figs. 33-34).
SLICE_OUTPUTS = ("L0", "L1", "L2", "L3", "H0", "H1", "H2", "H3")


def alu74181() -> Circuit:
    """Build the gate-level SN74181 netlist (61 gates, 14 PI, 8 PO)."""
    c = Circuit("alu74181")
    for pin in INPUT_PINS:
        c.add_input(pin)

    # --- N1: four identical bit slices ------------------------------
    for i in range(4):
        a, b = f"A{i}", f"B{i}"
        nb = f"NB{i}"
        c.not_(b, nb)
        c.and_(["S0", b], f"LT0_{i}")
        c.and_(["S1", nb], f"LT1_{i}")
        c.nor([a, f"LT0_{i}", f"LT1_{i}"], f"L{i}")
        c.and_(["S2", a, nb], f"HT0_{i}")
        c.and_(["S3", a, b], f"HT1_{i}")
        c.nor([f"HT0_{i}", f"HT1_{i}"], f"H{i}")

    # --- N2: carry chain, function outputs, group signals -----------
    for i in range(4):
        c.not_(f"L{i}", f"P{i}")  # propagate
        c.not_(f"H{i}", f"G{i}")  # generate

    # Internal true-carry rail; M = 1 (logic mode) forces carries to 1.
    c.not_("CN", "C0RAW")  # CN is active-low: CN = 0 means carry in
    c.or_(["M", "C0RAW"], "IC0")
    for i in range(3):
        c.and_([f"P{i}", f"IC{i}"], f"PC{i}")
        c.or_(["M", f"G{i}", f"PC{i}"], f"IC{i + 1}")

    for i in range(4):
        c.xor([f"L{i}", f"H{i}"], f"HS{i}")
        c.xor([f"HS{i}", f"IC{i}"], f"F{i}")
        c.add_output(f"F{i}")

    # Ripple/group carry out (active-low pin), computed without the M
    # forcing so it reflects the arithmetic lookahead.
    c.and_(["P3", "IC3"], "PC3X")
    c.or_(["G3", "PC3X"], "C4")
    c.not_("C4", "CN4")
    c.add_output("CN4")

    # Group propagate/generate, active low.
    c.nand(["P0", "P1", "P2", "P3"], "PBAR")
    c.add_output("PBAR")
    c.and_(["P3", "G2"], "GG2")
    c.and_(["P3", "P2", "G1"], "GG1")
    c.and_(["P3", "P2", "P1", "G0"], "GG0")
    c.nor(["G3", "GG2", "GG1", "GG0"], "GBAR")
    c.add_output("GBAR")

    c.and_(["F0", "F1", "F2", "F3"], "AEQB")
    c.add_output("AEQB")
    return c


# ----------------------------------------------------------------------
# Independent behavioral reference (from the data sheet function table)
# ----------------------------------------------------------------------

def _logic_ops() -> List:
    """Active-high logic-mode function table, indexed by S3S2S1S0."""
    mask = 0xF
    return [
        lambda a, b: ~a & mask,                # 0000: NOT A
        lambda a, b: ~(a | b) & mask,          # 0001: NOR
        lambda a, b: (~a & b) & mask,          # 0010: ~A AND B
        lambda a, b: 0,                        # 0011: logical 0
        lambda a, b: ~(a & b) & mask,          # 0100: NAND
        lambda a, b: ~b & mask,                # 0101: NOT B
        lambda a, b: (a ^ b) & mask,           # 0110: XOR
        lambda a, b: (a & ~b) & mask,          # 0111: A AND ~B
        lambda a, b: (~a | b) & mask,          # 1000: ~A OR B
        lambda a, b: ~(a ^ b) & mask,          # 1001: XNOR
        lambda a, b: b,                        # 1010: B
        lambda a, b: a & b,                    # 1011: AND
        lambda a, b: mask,                     # 1100: logical 1
        lambda a, b: (a | ~b) & mask,          # 1101: A OR ~B
        lambda a, b: a | b,                    # 1110: OR
        lambda a, b: a,                        # 1111: A
    ]


def _arith_ops() -> List:
    """Arithmetic-mode (M=0) operand sums, indexed by S3S2S1S0.

    Each entry returns an integer whose 4-bit truncation is F when
    ``CN = 1`` (no carry); ``CN = 0`` adds one.
    """
    mask = 0xF
    return [
        lambda a, b: a,                                  # 0000: A
        lambda a, b: a | b,                              # 0001: A OR B
        lambda a, b: a | (~b & mask),                    # 0010: A OR ~B
        lambda a, b: mask,                               # 0011: minus 1
        lambda a, b: a + (a & ~b & mask),                # 0100
        lambda a, b: (a | b) + (a & ~b & mask),          # 0101
        lambda a, b: a + (~b & mask),                    # 0110: A - B - 1
        lambda a, b: (a & ~b & mask) + mask,             # 0111
        lambda a, b: a + (a & b),                        # 1000
        lambda a, b: a + b,                              # 1001: A plus B
        lambda a, b: (a | (~b & mask)) + (a & b),        # 1010
        lambda a, b: (a & b) + mask,                     # 1011
        lambda a, b: a + a,                              # 1100: A plus A
        lambda a, b: (a | b) + a,                        # 1101
        lambda a, b: (a | (~b & mask)) + a,              # 1110
        lambda a, b: a + mask,                           # 1111: A minus 1
    ]


_LOGIC_OPS = _logic_ops()
_ARITH_OPS = _arith_ops()


def reference_alu(a: int, b: int, s: int, m: int, cn: int) -> Dict[str, int]:
    """Behavioral SN74181 from the data sheet table.

    Returns a dict with ``F`` (4-bit int) and ``AEQB``; in arithmetic
    mode also ``CN4`` (active-low carry out).  Inputs: ``a``, ``b`` are
    4-bit operands, ``s`` the 4-bit select (S3S2S1S0), ``m`` the mode
    (1 = logic), ``cn`` the active-low carry-in pin value.
    """
    if not (0 <= a <= 15 and 0 <= b <= 15 and 0 <= s <= 15):
        raise ValueError("a, b, s must be 4-bit values")
    result: Dict[str, int] = {}
    if m:
        f = _LOGIC_OPS[s](a, b)
        result["F"] = f
    else:
        total = _ARITH_OPS[s](a, b) + (0 if cn else 1)
        result["F"] = total & 0xF
        result["CN4"] = 0 if total > 0xF else 1
    result["AEQB"] = 1 if result["F"] == 0xF else 0
    return result


def pin_assignment(a: int, b: int, s: int, m: int, cn: int) -> Dict[str, int]:
    """Expand packed operands into per-pin input values for the netlist."""
    pins: Dict[str, int] = {"M": m & 1, "CN": cn & 1}
    for i in range(4):
        pins[f"A{i}"] = (a >> i) & 1
        pins[f"B{i}"] = (b >> i) & 1
        pins[f"S{i}"] = (s >> i) & 1
    return pins


def pack_f(outputs: Dict[str, int]) -> int:
    """Pack netlist output pins F0..F3 back into a 4-bit int."""
    return sum((outputs[f"F{i}"] & 1) << i for i in range(4))
