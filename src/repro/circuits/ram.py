"""Embedded RAM model and memory test algorithms.

§IV-A notes that "it is not practical to implement RAM with SRL
memory, so additional procedures are required to handle embedded RAM
circuitry" [20], and reference [59] (Hayes) covers pattern-sensitive
faults in RAMs.  This module supplies the substrate: a word-organized
RAM with injectable memory faults, plus the march tests that became
the standard "additional procedure":

* **MATS+** — detects all stuck-at cells (and address decoder faults
  in the simple model);
* **March C-** — additionally detects idempotent coupling faults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MemFaultKind(enum.Enum):
    """MemFaultKind: see the module docstring for context."""
    CELL_SA0 = "cell stuck-at-0"
    CELL_SA1 = "cell stuck-at-1"
    COUPLING_UP = "coupling: aggressor rise sets victim"
    COUPLING_DOWN = "coupling: aggressor fall clears victim"
    ADDRESS_ALIAS = "address decoder: two addresses share a cell"


@dataclass(frozen=True)
class MemoryFault:
    """MemoryFault: see the module docstring for context."""
    kind: MemFaultKind
    address: int               # victim cell address
    bit: int = 0               # victim bit position
    aggressor: Optional[int] = None  # coupling/alias partner address

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        extra = f" (aggr {self.aggressor})" if self.aggressor is not None else ""
        return f"{self.kind.value} @ {self.address}.{self.bit}{extra}"


class Ram:
    """Word-organized RAM with fault injection.

    ``read``/``write`` model the access port an embedded macro exposes;
    faults perturb behaviour exactly as their model dictates.
    """

    def __init__(self, words: int, width: int) -> None:
        if words < 2 or width < 1:
            raise ValueError("need at least 2 words and 1 bit")
        self.words = words
        self.width = width
        self._mask = (1 << width) - 1
        self._cells: List[int] = [0] * words
        self._faults: List[MemoryFault] = []

    # -- fault control -----------------------------------------------------
    def inject(self, fault: MemoryFault) -> None:
        """Add a memory fault for subsequent accesses."""
        if not (0 <= fault.address < self.words and 0 <= fault.bit < self.width):
            raise ValueError("fault site out of range")
        if fault.kind is MemFaultKind.ADDRESS_ALIAS and fault.aggressor is None:
            raise ValueError("address alias needs an aggressor address")
        self._faults.append(fault)

    def clear_faults(self) -> None:
        """Remove every injected fault."""
        self._faults.clear()

    # -- access with fault semantics ----------------------------------------
    def _resolve_address(self, address: int) -> int:
        for fault in self._faults:
            if (
                fault.kind is MemFaultKind.ADDRESS_ALIAS
                and address == fault.aggressor
            ):
                return fault.address
        return address

    def write(self, address: int, value: int) -> None:
        """Write a word, honouring injected fault semantics."""
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range")
        target = self._resolve_address(address)
        old = self._cells[target]
        new = value & self._mask
        self._cells[target] = new
        # Coupling faults: transitions on the aggressor disturb victims.
        for fault in self._faults:
            if fault.aggressor != target:
                continue
            if fault.kind is MemFaultKind.COUPLING_UP:
                rose = (~old & new) & self._mask
                if rose:  # any rising bit in the aggressor word
                    self._cells[fault.address] |= 1 << fault.bit
            elif fault.kind is MemFaultKind.COUPLING_DOWN:
                fell = (old & ~new) & self._mask
                if fell:
                    self._cells[fault.address] &= ~(1 << fault.bit)
        self._apply_stuck(target)

    def _apply_stuck(self, address: int) -> None:
        for fault in self._faults:
            if fault.address != address:
                continue
            if fault.kind is MemFaultKind.CELL_SA0:
                self._cells[address] &= ~(1 << fault.bit)
            elif fault.kind is MemFaultKind.CELL_SA1:
                self._cells[address] |= 1 << fault.bit

    def read(self, address: int) -> int:
        """Read a word, honouring injected fault semantics."""
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range")
        target = self._resolve_address(address)
        self._apply_stuck(target)
        return self._cells[target]


@dataclass
class MarchResult:
    """Outcome of a march test run."""

    algorithm: str
    passed: bool
    operations: int
    first_failure: Optional[Tuple[int, str]] = None  # (address, phase)

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else f"FAIL{self.first_failure}"
        return f"{self.algorithm}: {verdict} in {self.operations} ops"


def _march(ram: Ram, algorithm: str, phases) -> MarchResult:
    """Run a march description: phases of (direction, ops) where ops are
    ("r", expected) / ("w", value) pairs over the address space."""
    operations = 0
    all_ones = (1 << ram.width) - 1

    def expand(value):
        """Broadcast a 0/1 to the full word width."""
        return all_ones if value else 0

    for phase_index, (direction, ops) in enumerate(phases):
        addresses = range(ram.words) if direction >= 0 else range(
            ram.words - 1, -1, -1
        )
        for address in addresses:
            for op, value in ops:
                operations += 1
                if op == "w":
                    ram.write(address, expand(value))
                else:
                    got = ram.read(address)
                    if got != expand(value):
                        return MarchResult(
                            algorithm,
                            False,
                            operations,
                            (address, f"phase{phase_index}"),
                        )
    return MarchResult(algorithm, True, operations)


def mats_plus(ram: Ram) -> MarchResult:
    """MATS+: {⇕(w0); ⇑(r0, w1); ⇓(r1, w0)} — all stuck cells."""
    return _march(
        ram,
        "MATS+",
        [
            (+1, [("w", 0)]),
            (+1, [("r", 0), ("w", 1)]),
            (-1, [("r", 1), ("w", 0)]),
        ],
    )


def march_c_minus(ram: Ram) -> MarchResult:
    """March C-: {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}.

    Detects stuck-at, address decoder, and idempotent coupling faults.
    """
    return _march(
        ram,
        "March C-",
        [
            (+1, [("w", 0)]),
            (+1, [("r", 0), ("w", 1)]),
            (+1, [("r", 1), ("w", 0)]),
            (-1, [("r", 0), ("w", 1)]),
            (-1, [("r", 1), ("w", 0)]),
            (+1, [("r", 0)]),
        ],
    )


def march_coverage(
    words: int, width: int, algorithm, fault_list: List[MemoryFault]
) -> Tuple[int, int]:
    """(detected, total) for an algorithm over a fault list."""
    detected = 0
    for fault in fault_list:
        ram = Ram(words, width)
        ram.inject(fault)
        if not algorithm(ram).passed:
            detected += 1
    return detected, len(fault_list)


def standard_fault_list(words: int, width: int) -> List[MemoryFault]:
    """A representative injectable fault set for coverage studies."""
    faults: List[MemoryFault] = []
    for address in range(words):
        for bit in range(width):
            faults.append(MemoryFault(MemFaultKind.CELL_SA0, address, bit))
            faults.append(MemoryFault(MemFaultKind.CELL_SA1, address, bit))
    for victim in range(0, words, max(1, words // 4)):
        aggressor = (victim + 1) % words
        faults.append(
            MemoryFault(MemFaultKind.COUPLING_UP, victim, 0, aggressor)
        )
        faults.append(
            MemoryFault(MemFaultKind.COUPLING_DOWN, victim, 0, aggressor)
        )
    faults.append(MemoryFault(MemFaultKind.ADDRESS_ALIAS, 0, 0, words - 1))
    return faults
