"""Adder netlists: the workhorse datapath circuits for scaling studies.

The ripple-carry adder gives a linear-size family with a long sensitized
path (good for D-algorithm exercise); the carry-lookahead adder gives a
wide, shallow, reconvergent family (good for stressing fault collapse and
random-pattern analysis).
"""

from __future__ import annotations

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


def full_adder() -> Circuit:
    """One-bit full adder: SUM and COUT from A, B, CIN."""
    c = Circuit("full_adder")
    a, b, ci = c.add_inputs(["A", "B", "CIN"])
    c.xor([a, b], "AXB")
    c.xor(["AXB", ci], "SUM")
    c.and_([a, b], "AB")
    c.and_(["AXB", ci], "PC")
    c.or_(["AB", "PC"], "COUT")
    c.add_output("SUM")
    c.add_output("COUT")
    return c


def ripple_carry_adder(width: int) -> Circuit:
    """``width``-bit ripple-carry adder with carry in and carry out."""
    if width < 1:
        raise ValueError("adder width must be >= 1")
    c = Circuit(f"rca{width}")
    a_bits = [c.add_input(f"A{i}") for i in range(width)]
    b_bits = [c.add_input(f"B{i}") for i in range(width)]
    carry = c.add_input("CIN")
    for i in range(width):
        axb = f"AXB{i}"
        c.xor([a_bits[i], b_bits[i]], axb)
        c.xor([axb, carry], f"S{i}")
        c.add_output(f"S{i}")
        c.and_([a_bits[i], b_bits[i]], f"G{i}")
        c.and_([axb, carry], f"P{i}")
        next_carry = f"C{i + 1}"
        c.or_([f"G{i}", f"P{i}"], next_carry)
        carry = next_carry
    c.buf(carry, "COUT")
    c.add_output("COUT")
    return c


def carry_lookahead_adder(width: int) -> Circuit:
    """``width``-bit single-level carry-lookahead adder.

    Carries are flattened: ``c_{i+1} = g_i + p_i g_{i-1} + ... + p..p c_0``,
    which creates heavy reconvergent fanout from the low-order inputs —
    the connectivity effect the paper's footnote 1 blames for the
    N^3 test-generation cost.
    """
    if width < 1:
        raise ValueError("adder width must be >= 1")
    c = Circuit(f"cla{width}")
    a_bits = [c.add_input(f"A{i}") for i in range(width)]
    b_bits = [c.add_input(f"B{i}") for i in range(width)]
    cin = c.add_input("CIN")
    for i in range(width):
        c.and_([a_bits[i], b_bits[i]], f"G{i}")
        c.xor([a_bits[i], b_bits[i]], f"P{i}")
    carries = [cin]
    for i in range(width):
        terms = []
        # g_j propagated through p_{j+1}..p_i
        for j in range(i, -1, -1):
            literals = [f"G{j}"] + [f"P{k}" for k in range(j + 1, i + 1)]
            if len(literals) == 1:
                terms.append(literals[0])
            else:
                term = f"T{i}_{j}"
                c.and_(literals, term)
                terms.append(term)
        # carry-in propagated through p_0..p_i
        cin_literals = [cin] + [f"P{k}" for k in range(i + 1)]
        cin_term = f"T{i}_cin"
        c.and_(cin_literals, cin_term)
        terms.append(cin_term)
        next_carry = f"C{i + 1}"
        c.or_(terms, next_carry)
        carries.append(next_carry)
    for i in range(width):
        c.xor([f"P{i}", carries[i]], f"S{i}")
        c.add_output(f"S{i}")
    c.buf(carries[width], "COUT")
    c.add_output("COUT")
    return c


def subtractor(width: int) -> Circuit:
    """``A - B`` via two's complement: invert B, add with carry-in 1."""
    c = Circuit(f"sub{width}")
    a_bits = [c.add_input(f"A{i}") for i in range(width)]
    b_bits = [c.add_input(f"B{i}") for i in range(width)]
    c.add_gate(GateType.CONST1, [], "ONE")
    carry = "ONE"
    for i in range(width):
        nb = f"NB{i}"
        c.not_(b_bits[i], nb)
        axb = f"AXB{i}"
        c.xor([a_bits[i], nb], axb)
        c.xor([axb, carry], f"D{i}")
        c.add_output(f"D{i}")
        c.and_([a_bits[i], nb], f"G{i}")
        c.and_([axb, carry], f"P{i}")
        next_carry = f"C{i + 1}"
        c.or_([f"G{i}", f"P{i}"], next_carry)
        carry = next_carry
    c.buf(carry, "BOUT")
    c.add_output("BOUT")
    return c
