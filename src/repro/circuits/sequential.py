"""Sequential demonstration machines: counters, shift registers, FSMs.

These are the circuits the structured DFT techniques (Section IV) get
applied to in the examples and benchmarks.  All follow the synchronous
Huffman model with ``DFF`` storage; scan insertion transforms them.
"""

from __future__ import annotations

from typing import List

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


def binary_counter(width: int) -> Circuit:
    """Synchronous binary up-counter with ENABLE input and Q outputs.

    Next state: ``Q + EN`` (ripple increment).  Deep sequential state
    makes it a classic hard target for sequential ATPG: reaching count
    ``2**width - 1`` takes that many clocks — scan reaches it in
    ``width`` shifts.
    """
    c = Circuit(f"counter{width}")
    enable = c.add_input("EN")
    carry = enable
    for i in range(width):
        q = f"Q{i}"
        d = f"D{i}"
        c.xor([q, carry], d)
        c.dff(d, q, name=f"FF{i}")
        c.add_output(q)
        if i < width - 1:
            next_carry = f"CY{i}"
            c.and_([q, carry], next_carry)
            carry = next_carry
    return c


def shift_register(length: int) -> Circuit:
    """Serial-in serial-out shift register of DFFs."""
    c = Circuit(f"shiftreg{length}")
    previous = c.add_input("SIN")
    for i in range(length):
        q = f"Q{i}"
        c.dff(previous, q, name=f"FF{i}")
        previous = q
    c.add_output(previous)
    return c


def johnson_counter(width: int) -> Circuit:
    """Johnson (twisted-ring) counter: feedback is the inverted tail."""
    c = Circuit(f"johnson{width}")
    c.not_(f"Q{width - 1}", "FB")
    previous = "FB"
    for i in range(width):
        q = f"Q{i}"
        c.dff(previous, q, name=f"FF{i}")
        c.add_output(q)
        previous = q
    c.validate()
    return c


def sequence_detector() -> Circuit:
    """Mealy FSM detecting the serial input pattern ``101``.

    States (one-hot in two DFFs as a 2-bit code): S0 = idle, S1 = saw
    ``1``, S2 = saw ``10``; output DETECT pulses when ``101`` completes.
    """
    c = Circuit("detect101")
    x = c.add_input("X")
    c.not_(x, "NX")
    c.not_("Q0", "NQ0")
    c.not_("Q1", "NQ1")
    # State code: (Q1,Q0) = 00 idle, 01 saw1, 10 saw10.
    # next Q0 (saw1): any 1 means the newest char starts/extends a match.
    c.buf(x, "D0")
    # next Q1 (saw10): a 0 right after saw1.
    c.and_(["NQ1", "Q0"], "SAW1")
    c.and_(["SAW1", "NX"], "D1")
    c.dff("D0", "Q0", name="FF0")
    c.dff("D1", "Q1", name="FF1")
    # DETECT = saw10 & X (Mealy output: 101 just completed).
    c.and_(["Q1", "NQ0"], "SAW10")
    c.and_(["SAW10", "X"], "DETECT")
    c.add_output("DETECT")
    return c


def lfsr_circuit(taps: List[int], length: int) -> Circuit:
    """An LFSR *as a netlist* (not the behavioral model in repro.lfsr).

    Fibonacci style: stage 0 is fed by the XOR of the tapped stages.
    Used by the BIST benches to show a BILBO built from real gates
    matches the behavioral LFSR model bit-for-bit.
    """
    if not taps or max(taps) > length or min(taps) < 1:
        raise ValueError("taps must be stage numbers in 1..length")
    c = Circuit(f"lfsr{length}")
    stage_nets = [f"Q{i}" for i in range(1, length + 1)]
    tap_nets = [stage_nets[t - 1] for t in taps]
    if len(tap_nets) == 1:
        c.buf(tap_nets[0], "FB")
    else:
        c.xor(tap_nets, "FB")
    previous = "FB"
    for i, q in enumerate(stage_nets):
        c.dff(previous, q, name=f"FF{i + 1}")
        c.add_output(q)
        previous = q
    c.validate()
    return c


def registered_alu74181() -> Circuit:
    """The SN74181 ALU behind a 14-bit input register (pipeline stage).

    Every ALU input pin ``P`` is fed from a DFF ``REG_P`` whose data
    input is the new primary input ``P_D``, so the machine is genuinely
    sequential: a functional test must clock operands in through the
    register, while scan loads them in ``chain_length`` shifts.  This is
    the repo's standard "real network behind state" workload — the
    sequential-verification benchmark
    (``benchmarks/bench_faultsim_engines.py``) shards its scan-schedule
    fault simulation across worker processes on it.
    """
    from .alu74181 import INPUT_PINS, alu74181

    alu = alu74181()
    c = Circuit("alu74181_reg")
    for pin in INPUT_PINS:
        c.add_input(f"{pin}_D")
        c.dff(f"{pin}_D", pin, name=f"REG_{pin}")
    for gate in alu.gates:
        c.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
    for net in alu.outputs:
        c.add_output(net)
    c.validate()
    return c


def oscillator_driven_block(width: int = 3) -> Circuit:
    """A free-running-clock victim for the degating demo (paper Fig. 3).

    ``OSC`` models the oscillator output; it clocks nothing here (the
    netlist is clockless) but drives logic the tester cannot
    synchronize to.  The degating transform in :mod:`repro.adhoc`
    inserts the pseudo-clock path.
    """
    c = Circuit("osc_block")
    osc = c.add_input("OSC")
    data = [c.add_input(f"D{i}") for i in range(width)]
    for i, net in enumerate(data):
        gated = f"G{i}"
        c.and_([osc, net], gated)
        c.add_output(gated)
    return c
