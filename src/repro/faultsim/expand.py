"""Fanout-branch expansion: make every fault site a forceable net.

Stem faults are easy to inject (force one net); branch faults affect a
single reader's view of a net.  The uniform trick: insert an explicit
BUF on every gate-input pin whose net has fanout greater than one.  In
the expanded circuit every fault in the original maps to a stem force,
so one injection mechanism serves all simulators.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..faults.stuck_at import Fault

BranchMap = Dict[Tuple[str, int], str]


def expand_branches(circuit: Circuit) -> Tuple[Circuit, BranchMap]:
    """Insert BUFs on fanout branches; returns (expanded, branch map).

    ``branch_map[(gate_name, pin)]`` names the expanded circuit's net
    carrying that branch.  Pins on single-fanout nets are not expanded
    (their branch faults are equivalent to the stem fault).
    """
    expanded = Circuit(f"{circuit.name}__expanded")
    for net in circuit.inputs:
        expanded.add_input(net)

    multi_fanout = {
        net for net in circuit.nets() if circuit.fanout_count(net) > 1
    }
    branch_map: BranchMap = {}
    for gate in circuit.gates:
        new_inputs = []
        for pin, net in enumerate(gate.inputs):
            if net in multi_fanout:
                branch_net = f"{gate.name}__in{pin}"
                expanded.buf(net, branch_net, name=branch_net)
                branch_map[(gate.name, pin)] = branch_net
                new_inputs.append(branch_net)
            else:
                new_inputs.append(net)
        expanded.add_gate(gate.kind, new_inputs, gate.output, gate.name)
    for net in circuit.outputs:
        expanded.add_output(net)
    expanded.validate()
    return expanded, branch_map


def fault_site_net(fault: Fault, branch_map: BranchMap) -> str:
    """Net to force in the expanded circuit for the given fault."""
    if fault.gate is None:
        return fault.net
    return branch_map.get((fault.gate, fault.pin), fault.net)
