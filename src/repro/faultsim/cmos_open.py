"""Direct two-pattern CMOS stuck-open fault simulation (serial).

The independent oracle for the enable-gadget reduction in
:mod:`repro.faults.models`: a stuck-open transistor leaves the gate
output floating for some inputs, so the node *retains* its previous
value (§I-A — "the combinational patterns are no longer effective").
Detection therefore needs an ordered pattern **pair** (V1, V2):

1. V1 must *drive* the faulty gate's output (not float) — its value is
   what the node will retain;
2. under V2 the faulty gate must float, so its output stays at the
   retained V1 value;
3. that retained value must differ from the good V2 response at some
   primary output.

A pair where the output floats under V1 *too* retains an unknown value
and is conservatively scored undetected — the same rule the composite
gadget encodes with its ``NOT(float@V1)`` activation term, and the
reason the differential suite can hold the two implementations to
identical detected sets.

This simulator is deliberately fault-serial and pattern-serial (one
forced re-simulation per fault per pair) — the reference
implementation, like :class:`~repro.faultsim.serial.SerialFaultSimulator`
is for stuck-at.  Engine-parallel grading of the same model goes
through the reduction, where every engine works unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import evaluate_bool
from ..faults.cmos import (
    CmosStuckOpenFault,
    all_cmos_stuck_open_faults,
    stuck_open_floats,
)

Pattern = Mapping[str, int]
PatternPair = Tuple[Pattern, Pattern]

__all__ = ["CmosStuckOpenSimulator"]


class CmosStuckOpenSimulator:
    """Two-pattern serial grading of netlist-level stuck-open faults."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[CmosStuckOpenFault]] = None,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError(
                "CmosStuckOpenSimulator grades the combinational core"
            )
        self.circuit = circuit
        self.faults = (
            list(faults)
            if faults is not None
            else all_cmos_stuck_open_faults(circuit)
        )
        self._gates = {gate.name: gate for gate in circuit.gates}
        self._order = circuit.topological_order()

    def _evaluate(
        self,
        pattern: Pattern,
        force_net: Optional[str] = None,
        force_value: int = 0,
    ) -> Dict[str, int]:
        values: Dict[str, int] = {
            net: pattern.get(net, 0) for net in self.circuit.inputs
        }
        if force_net is not None and force_net in values:
            values[force_net] = force_value
        for gate in self._order:
            value = evaluate_bool(
                gate.kind, tuple(values[net] for net in gate.inputs)
            )
            if force_net == gate.output:
                value = force_value
            values[gate.output] = value
        return values

    def detects(self, v1: Pattern, v2: Pattern, fault: CmosStuckOpenFault) -> bool:
        """Does the ordered (V1, V2) pair detect the stuck-open fault?"""
        gate = self._gates[fault.gate]
        kind = gate.kind.value
        good1 = self._evaluate(v1)
        good2 = self._evaluate(v2)
        bits2 = [good2[net] for net in gate.inputs]
        if not stuck_open_floats(kind, bits2, fault):
            return False  # V2 drives the node: faulty value is the good one
        bits1 = [good1[net] for net in gate.inputs]
        if stuck_open_floats(kind, bits1, fault):
            return False  # unknown retained charge: conservatively missed
        retained = good1[gate.output]
        if retained == good2[gate.output]:
            return False
        faulty2 = self._evaluate(v2, force_net=gate.output, force_value=retained)
        return any(
            good2[net] != faulty2[net] for net in self.circuit.outputs
        )

    def detected_faults(self, v1: Pattern, v2: Pattern) -> List[CmosStuckOpenFault]:
        """All listed faults one pair detects."""
        return [f for f in self.faults if self.detects(v1, v2, f)]

    def run(self, pairs: Sequence[PatternPair]) -> Dict[CmosStuckOpenFault, int]:
        """First-detection index per detected fault over a pair sequence."""
        with telemetry.span(
            "faultsim.cmos_open.run", circuit=self.circuit.name
        ):
            telemetry.incr("faultsim.patterns_simulated", 2 * len(pairs))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            first_detection: Dict[CmosStuckOpenFault, int] = {}
            remaining = list(self.faults)
            for index, (v1, v2) in enumerate(pairs):
                if not remaining:
                    break
                still = []
                for fault in remaining:
                    if self.detects(v1, v2, fault):
                        first_detection[fault] = index
                    else:
                        still.append(fault)
                remaining = still
            return first_detection
