"""Fault simulators: serial, parallel-pattern, parallel-fault, deductive,
sequential (concurrent-style), plus coverage reporting.

All combinational engines share one API — construction
``(circuit, faults=None, collapse=True)`` plus ``run(patterns)``,
``detects(pattern, fault)`` and ``detected_faults(pattern)`` — and are
selectable by name through :class:`Engine` / :func:`create_simulator`.
The differential test suite (``tests/test_faultsim_differential.py``)
holds them to identical detected-fault sets on the circuits zoo; that
agreement is the contract any new or refactored engine must keep.
"""

import enum
from typing import Optional, Sequence, Union

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport, merge_reports, sample_fault_list
from .serial import SerialFaultSimulator
from .parallel_pattern import FaultSimulator, fault_coverage
from .parallel_fault import ParallelFaultSimulator
from .deductive import DeductiveFaultSimulator
from .sequential import SequentialFaultSimulator
from .wide import WideFaultSimulator, wide_coverage
from .diagnosis import FaultDictionary, DiagnosisResult
from .sharded import (
    SEQUENTIAL_ENGINE,
    ShardedFaultSimulator,
    fork_available,
    shard_faults,
    sharded_coverage,
)


class Engine(enum.Enum):
    """Selectable combinational fault-simulation engines.

    ``WIDE`` is the production engine (lane-batched union-cone grading
    over the compiled core; numpy arrays with a dependency-free big-int
    fallback); ``PARALLEL_PATTERN`` is the single-fault compiled-core
    engine it is differentially tested against; the others are
    independent implementations kept as cross-checks and for workloads
    that fit them better (e.g. ``DEDUCTIVE`` when every pattern's full
    fault list is wanted).
    """

    SERIAL = "serial"
    DEDUCTIVE = "deductive"
    PARALLEL_FAULT = "parallel_fault"
    PARALLEL_PATTERN = "parallel_pattern"
    WIDE = "wide"


ENGINE_CLASSES = {
    Engine.SERIAL: SerialFaultSimulator,
    Engine.DEDUCTIVE: DeductiveFaultSimulator,
    Engine.PARALLEL_FAULT: ParallelFaultSimulator,
    Engine.PARALLEL_PATTERN: FaultSimulator,
    Engine.WIDE: WideFaultSimulator,
}


def create_simulator(
    circuit: Circuit,
    engine: Union[str, Engine] = Engine.PARALLEL_PATTERN,
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    **kwargs,
):
    """Instantiate a fault simulator by engine name.

    ``engine`` is an :class:`Engine` or its string value.  Extra keyword
    arguments go to the engine constructor (e.g. ``compiled=False`` to
    get the pre-compiled-core parallel-pattern baseline).
    """
    selected = engine if isinstance(engine, Engine) else Engine(engine)
    cls = ENGINE_CLASSES[selected]
    return cls(circuit, faults=faults, collapse=collapse, **kwargs)


def engine_coverage(
    circuit: Circuit,
    patterns: Sequence[dict],
    engine: Union[str, Engine] = Engine.PARALLEL_PATTERN,
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    **kwargs,
) -> CoverageReport:
    """One-call fault simulation through a selectable engine."""
    return create_simulator(
        circuit, engine, faults=faults, collapse=collapse, **kwargs
    ).run(patterns)


__all__ = [
    "Engine",
    "ENGINE_CLASSES",
    "create_simulator",
    "engine_coverage",
    "FaultDictionary",
    "DiagnosisResult",
    "expand_branches",
    "fault_site_net",
    "CoverageReport",
    "merge_reports",
    "sample_fault_list",
    "SerialFaultSimulator",
    "FaultSimulator",
    "fault_coverage",
    "ParallelFaultSimulator",
    "DeductiveFaultSimulator",
    "WideFaultSimulator",
    "wide_coverage",
    "SequentialFaultSimulator",
    "SEQUENTIAL_ENGINE",
    "ShardedFaultSimulator",
    "fork_available",
    "shard_faults",
    "sharded_coverage",
]
