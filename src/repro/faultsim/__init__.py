"""Fault simulators: serial, parallel-pattern, parallel-fault, deductive,
sequential (concurrent-style), plus coverage reporting."""

from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport, merge_reports
from .serial import SerialFaultSimulator
from .parallel_pattern import FaultSimulator, fault_coverage
from .parallel_fault import ParallelFaultSimulator
from .deductive import DeductiveFaultSimulator
from .sequential import SequentialFaultSimulator
from .diagnosis import FaultDictionary, DiagnosisResult

__all__ = [
    "FaultDictionary",
    "DiagnosisResult",
    "expand_branches",
    "fault_site_net",
    "CoverageReport",
    "merge_reports",
    "SerialFaultSimulator",
    "FaultSimulator",
    "fault_coverage",
    "ParallelFaultSimulator",
    "DeductiveFaultSimulator",
    "SequentialFaultSimulator",
]
