"""Fault simulators: serial, parallel-pattern, parallel-fault, deductive,
sequential (concurrent-style), plus coverage reporting.

All combinational engines share one API — construction
``(circuit, faults=None, collapse=True)`` plus ``run(patterns)``,
``detects(pattern, fault)`` and ``detected_faults(pattern)`` — and are
selectable by name through :class:`Engine` / :func:`create_simulator`.
The differential test suite (``tests/test_faultsim_differential.py``)
holds them to identical detected-fault sets on the circuits zoo; that
agreement is the contract any new or refactored engine must keep.
"""

import enum
from typing import Any, Optional, Sequence, Union

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..faults.models import (
    FaultModel,
    FaultModelPlan,
    UnsupportedFaultModelError,
    plan_fault_model,
)
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport, merge_reports, sample_fault_list
from .serial import SerialFaultSimulator
from .parallel_pattern import FaultSimulator, fault_coverage
from .parallel_fault import ParallelFaultSimulator
from .deductive import DeductiveFaultSimulator
from .sequential import SequentialFaultSimulator
from .wide import WideFaultSimulator, wide_coverage
from .cmos_open import CmosStuckOpenSimulator
from .diagnosis import FaultDictionary, DiagnosisResult
from .sharded import (
    SEQUENTIAL_ENGINE,
    ShardedFaultSimulator,
    fork_available,
    shard_faults,
    sharded_coverage,
)


class Engine(enum.Enum):
    """Selectable combinational fault-simulation engines.

    ``WIDE`` is the production engine (lane-batched union-cone grading
    over the compiled core; numpy arrays with a dependency-free big-int
    fallback); ``PARALLEL_PATTERN`` is the single-fault compiled-core
    engine it is differentially tested against; the others are
    independent implementations kept as cross-checks and for workloads
    that fit them better (e.g. ``DEDUCTIVE`` when every pattern's full
    fault list is wanted).
    """

    SERIAL = "serial"
    DEDUCTIVE = "deductive"
    PARALLEL_FAULT = "parallel_fault"
    PARALLEL_PATTERN = "parallel_pattern"
    WIDE = "wide"


ENGINE_CLASSES = {
    Engine.SERIAL: SerialFaultSimulator,
    Engine.DEDUCTIVE: DeductiveFaultSimulator,
    Engine.PARALLEL_FAULT: ParallelFaultSimulator,
    Engine.PARALLEL_PATTERN: FaultSimulator,
    Engine.WIDE: WideFaultSimulator,
}


def create_simulator(
    circuit: Circuit,
    engine: Union[str, Engine] = Engine.PARALLEL_PATTERN,
    faults: Optional[Sequence[Any]] = None,
    collapse: bool = True,
    fault_model: Union[str, FaultModel] = FaultModel.STUCK_AT,
    **kwargs,
):
    """Instantiate a fault simulator by engine name.

    ``engine`` is an :class:`Engine` or its string value.  Extra keyword
    arguments go to the engine constructor (e.g. ``compiled=False`` to
    get the pre-compiled-core parallel-pattern baseline).

    ``fault_model`` selects the fault model (see
    :class:`repro.faults.FaultModel`).  Non-stuck-at models reduce to
    circuit rewrite + stuck-at grading
    (:func:`repro.faults.plan_fault_model`), so every engine works
    unchanged; the returned simulator carries the reduction as its
    ``fault_model_plan`` attribute, and ``faults`` must then be
    model-typed faults (``BridgingFault``/``TransitionFault``/
    ``CmosStuckOpenFault``) or ``None`` for the default universe.  For
    the two-frame models the simulator's patterns are (V1, V2) pairs
    over the composite inputs ``"{net}@1"``/``"{net}@2"``.
    """
    selected = engine if isinstance(engine, Engine) else Engine(engine)
    cls = ENGINE_CLASSES[selected]
    plan = plan_fault_model(circuit, fault_model, faults=faults, collapse=collapse)
    simulator = cls(
        plan.circuit, faults=plan.faults, collapse=collapse, **kwargs
    )
    simulator.fault_model_plan = plan
    return simulator


def engine_coverage(
    circuit: Circuit,
    patterns: Sequence[dict],
    engine: Union[str, Engine] = Engine.PARALLEL_PATTERN,
    faults: Optional[Sequence[Any]] = None,
    collapse: bool = True,
    fault_model: Union[str, FaultModel] = FaultModel.STUCK_AT,
    **kwargs,
) -> CoverageReport:
    """One-call fault simulation through a selectable engine."""
    return create_simulator(
        circuit,
        engine,
        faults=faults,
        collapse=collapse,
        fault_model=fault_model,
        **kwargs,
    ).run(patterns)


__all__ = [
    "Engine",
    "ENGINE_CLASSES",
    "FaultModel",
    "FaultModelPlan",
    "UnsupportedFaultModelError",
    "plan_fault_model",
    "create_simulator",
    "engine_coverage",
    "FaultDictionary",
    "DiagnosisResult",
    "expand_branches",
    "fault_site_net",
    "CoverageReport",
    "merge_reports",
    "sample_fault_list",
    "SerialFaultSimulator",
    "FaultSimulator",
    "fault_coverage",
    "ParallelFaultSimulator",
    "DeductiveFaultSimulator",
    "WideFaultSimulator",
    "wide_coverage",
    "CmosStuckOpenSimulator",
    "SequentialFaultSimulator",
    "SEQUENTIAL_ENGINE",
    "ShardedFaultSimulator",
    "fork_available",
    "shard_faults",
    "sharded_coverage",
]
