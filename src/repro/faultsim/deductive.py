"""Deductive fault simulation (Armstrong [100]).

One two-valued good-machine pass per pattern, during which each net
carries the *set of faults that would complement it*.  Set algebra per
gate deduces output lists from input lists:

* gates with a controlling value ``c`` (AND/OR/NAND/NOR): with ``S`` the
  inputs at ``c``,

  - ``S`` empty: any fault flipping any input flips the output —
    union of the input lists;
  - otherwise: a fault must flip *every* controlling input while
    flipping *no* non-controlling input — intersection over ``S``
    minus the union over the rest;

* XOR/XNOR: a fault flips the output iff it appears on an odd number of
  inputs — fold with symmetric difference;
* NOT/BUF: copy.

Exact under the single-fault assumption, and an independent oracle for
the bit-parallel engines in the cross-validation tests.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import CONTROLLING_VALUE, GateType
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from ..sim.compiled import compile_circuit
from .coverage import CoverageReport

Pattern = Mapping[str, int]


class DeductiveFaultSimulator:
    """Single-pattern deductive simulator for combinational circuits."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError("DeductiveFaultSimulator is combinational")
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self._fault_set = set(self.faults)
        # Index faults by site for quick activation lookup.
        self._stem_faults: Dict[str, List[Fault]] = {}
        self._branch_faults: Dict[tuple, List[Fault]] = {}
        for fault in self.faults:
            if fault.gate is None:
                self._stem_faults.setdefault(fault.net, []).append(fault)
            else:
                self._branch_faults.setdefault((fault.gate, fault.pin), []).append(fault)

    def fault_lists(self, pattern: Pattern) -> Dict[str, FrozenSet[Fault]]:
        """Per-net sets of faults that complement the net for ``pattern``."""
        # The good machine runs on the compiled core (one flat pass);
        # only the fault-list set algebra walks the gates in Python.
        program = compile_circuit(self.circuit)
        source_words = [
            1 if pattern.get(net, 0) else 0 for net in program.source_names
        ]
        words = program.eval_words(source_words, 1)
        index = program.index
        values: Dict[str, int] = {}
        lists: Dict[str, FrozenSet[Fault]] = {}
        for net in self.circuit.inputs:
            value = words[index[net]]
            values[net] = value
            lists[net] = self._activated_stem(net, value)
        for gate in self.circuit.topological_order():
            input_values = tuple(values[n] for n in gate.inputs)
            out_value = words[index[gate.output]]
            values[gate.output] = out_value
            input_lists = [
                self._branch_list(gate.name, pin, net, values[net], lists[net])
                for pin, net in enumerate(gate.inputs)
            ]
            propagated = _propagate(gate.kind, input_values, input_lists)
            stem = self._activated_stem(gate.output, out_value)
            lists[gate.output] = propagated | stem
        return lists

    def _activated_stem(self, net: str, value: int) -> FrozenSet[Fault]:
        activated = [
            f for f in self._stem_faults.get(net, ()) if f.value != value
        ]
        return frozenset(activated)

    def _branch_list(
        self,
        gate_name: str,
        pin: int,
        net: str,
        value: int,
        stem_list: FrozenSet[Fault],
    ) -> FrozenSet[Fault]:
        # Under the single-fault assumption, each listed fault flips its
        # line independently: the pin's list is the stem's list plus the
        # pin's own activated branch faults (a branch stuck at the
        # current value flips nothing and joins no list).
        branch = [
            f
            for f in self._branch_faults.get((gate_name, pin), ())
            if f.value != value
        ]
        return frozenset(set(stem_list) | set(branch))

    def detected_faults(self, pattern: Pattern) -> FrozenSet[Fault]:
        """Detected faults."""
        lists = self.fault_lists(pattern)
        detected: Set[Fault] = set()
        for net in self.circuit.outputs:
            detected |= lists[net]
        return frozenset(detected & self._fault_set)

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Does one pattern detect one fault?  (Engine-API hook; computes
        the full per-net fault lists for the pattern.)"""
        return fault in self.detected_faults(pattern)

    def run(self, patterns: Sequence[Pattern]) -> CoverageReport:
        """Run and collect the results."""
        with telemetry.span(
            "faultsim.run", engine="deductive", circuit=self.circuit.name
        ):
            telemetry.incr("faultsim.patterns_simulated", len(patterns))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            report = CoverageReport(
                self.circuit.name, len(patterns), list(self.faults)
            )
            for index, pattern in enumerate(patterns):
                for fault in self.detected_faults(pattern):
                    report.first_detection.setdefault(fault, index)
            return report


def _propagate(
    kind: GateType,
    input_values: Sequence[int],
    input_lists: Sequence[FrozenSet[Fault]],
) -> FrozenSet[Fault]:
    if kind in (GateType.NOT, GateType.BUF):
        return input_lists[0]
    if kind in (GateType.CONST0, GateType.CONST1):
        return frozenset()
    if kind in (GateType.XOR, GateType.XNOR):
        return reduce(lambda a, b: a ^ b, input_lists, frozenset())
    control = CONTROLLING_VALUE.get(kind)
    if control is None:
        raise NetlistError(f"no propagation rule for {kind}")
    controlling = [
        lst for value, lst in zip(input_values, input_lists) if value == control
    ]
    non_controlling = [
        lst for value, lst in zip(input_values, input_lists) if value != control
    ]
    if not controlling:
        return reduce(lambda a, b: a | b, input_lists, frozenset())
    intersection = reduce(lambda a, b: a & b, controlling)
    union_rest = reduce(lambda a, b: a | b, non_controlling, frozenset())
    return intersection - union_rest
