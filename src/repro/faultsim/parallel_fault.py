"""Parallel-fault single-pattern fault simulation (refs [102], [104]).

The historical dual of PPSF: one pattern at a time, but a machine word
carries one bit per *faulty machine* (bit 0 is the good machine).
Fault injection is a per-net mask applied as values propagate.  This is
the technique Chiang et al. compared against deductive simulation in
1974; it is implemented both for completeness and as an independent
cross-check of the PPSF engine in the test suite.

Evaluation routes through the compiled core
(:func:`repro.sim.compiled.compile_circuit`): the expanded circuit is
levelized once into a flat integer program and the per-net injection
masks become dense arrays applied as each word settles, so the inner
loop performs no name hashing at all.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from ..sim.compiled import CompiledCircuit, compile_circuit
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport

Pattern = Mapping[str, int]


class ParallelFaultSimulator:
    """Single-pattern simulator packing the good + faulty machines bitwise."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError("ParallelFaultSimulator is combinational")
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.expanded, self._branch_map = expand_branches(circuit)
        # Machine 0 = good; machine j (1-based) = fault j-1.
        self._machine_count = len(self.faults) + 1
        self._mask = (1 << self._machine_count) - 1
        # Per-site injection masks: bits to force to the stuck value.
        self._force_one: Dict[str, int] = {}
        self._force_zero: Dict[str, int] = {}
        for index, fault in enumerate(self.faults):
            site = fault_site_net(fault, self._branch_map)
            bit = 1 << (index + 1)
            if fault.value:
                self._force_one[site] = self._force_one.get(site, 0) | bit
            else:
                self._force_zero[site] = self._force_zero.get(site, 0) | bit
        # Dense per-net-index arrays for the compiled program, rebuilt
        # whenever the program is (program identity tracks mutation).
        self._mask_arrays: Optional[Tuple[CompiledCircuit, List[int], List[int]]] = None

    def _injection_arrays(self) -> Tuple[CompiledCircuit, List[int], List[int]]:
        program = compile_circuit(self.expanded)
        cached = self._mask_arrays
        if cached is not None and cached[0] is program:
            return cached
        or_masks = [0] * program.num_nets
        and_masks = [-1] * program.num_nets
        for site, bits in self._force_one.items():
            index = program.index.get(site)
            if index is not None:
                or_masks[index] |= bits
        for site, bits in self._force_zero.items():
            index = program.index.get(site)
            if index is not None:
                and_masks[index] &= ~bits
        self._mask_arrays = (program, or_masks, and_masks)
        return self._mask_arrays

    def simulate_pattern(self, pattern: Pattern) -> List[Fault]:
        """Simulate one pattern across all machines; returns detected faults."""
        program, or_masks, and_masks = self._injection_arrays()
        mask = self._mask
        source_words = [
            mask if pattern.get(net, 0) else 0
            for net in program.source_names
        ]
        words = program.eval_masked(source_words, mask, or_masks, and_masks)
        detected_bits = 0
        for out in program.output_indices:
            word = words[out]
            good = -(word & 1) & mask  # broadcast machine 0's bit
            detected_bits |= (word ^ good) & mask
        detected_bits >>= 1  # strip the good machine
        result = []
        index = 0
        while detected_bits:
            if detected_bits & 1:
                result.append(self.faults[index])
            detected_bits >>= 1
            index += 1
        return result

    def detected_faults(self, pattern: Pattern) -> List[Fault]:
        """Engine-API alias for :meth:`simulate_pattern`."""
        return self.simulate_pattern(pattern)

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Does one pattern detect one fault?"""
        return fault in self.simulate_pattern(pattern)

    def run(self, patterns: Sequence[Pattern]) -> CoverageReport:
        """Run and collect the results."""
        with telemetry.span(
            "faultsim.run", engine="parallel_fault", circuit=self.circuit.name
        ):
            telemetry.incr("faultsim.patterns_simulated", len(patterns))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            report = CoverageReport(
                self.circuit.name, len(patterns), list(self.faults)
            )
            for index, pattern in enumerate(patterns):
                for fault in self.simulate_pattern(pattern):
                    report.first_detection.setdefault(fault, index)
            return report
