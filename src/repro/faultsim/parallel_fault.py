"""Parallel-fault single-pattern fault simulation (refs [102], [104]).

The historical dual of PPSF: one pattern at a time, but a machine word
carries one bit per *faulty machine* (bit 0 is the good machine).
Fault injection is a per-net mask applied as values propagate.  This is
the technique Chiang et al. compared against deductive simulation in
1974; it is implemented both for completeness and as an independent
cross-check of the PPSF engine in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport

Pattern = Mapping[str, int]


class ParallelFaultSimulator:
    """Single-pattern simulator packing the good + faulty machines bitwise."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError("ParallelFaultSimulator is combinational")
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._order = self.expanded.topological_order()
        # Machine 0 = good; machine j (1-based) = fault j-1.
        self._machine_count = len(self.faults) + 1
        self._mask = (1 << self._machine_count) - 1
        # Per-net injection masks: bits to force to the stuck value.
        self._force_one: Dict[str, int] = {}
        self._force_zero: Dict[str, int] = {}
        for index, fault in enumerate(self.faults):
            site = fault_site_net(fault, self._branch_map)
            bit = 1 << (index + 1)
            if fault.value:
                self._force_one[site] = self._force_one.get(site, 0) | bit
            else:
                self._force_zero[site] = self._force_zero.get(site, 0) | bit

    def _inject(self, net: str, word: int) -> int:
        ones = self._force_one.get(net)
        if ones:
            word |= ones
        zeros = self._force_zero.get(net)
        if zeros:
            word &= ~zeros
        return word

    def simulate_pattern(self, pattern: Pattern) -> List[Fault]:
        """Simulate one pattern across all machines; returns detected faults."""
        mask = self._mask
        words: Dict[str, int] = {}
        for net in self.expanded.inputs:
            broadcast = mask if pattern.get(net, 0) else 0
            words[net] = self._inject(net, broadcast)
        for gate in self._order:
            words[gate.output] = self._inject(
                gate.output, _eval(gate.kind, gate.inputs, words, mask)
            )
        detected_bits = 0
        for net in self.circuit.outputs:
            word = words[net]
            good = -(word & 1) & mask  # broadcast machine 0's bit
            detected_bits |= (word ^ good) & mask
        detected_bits >>= 1  # strip the good machine
        result = []
        index = 0
        while detected_bits:
            if detected_bits & 1:
                result.append(self.faults[index])
            detected_bits >>= 1
            index += 1
        return result

    def run(self, patterns: Sequence[Pattern]) -> CoverageReport:
        """Run and collect the results."""
        report = CoverageReport(self.circuit.name, len(patterns), list(self.faults))
        for index, pattern in enumerate(patterns):
            for fault in self.simulate_pattern(pattern):
                report.first_detection.setdefault(fault, index)
        return report


def _eval(
    kind: GateType, input_nets: Sequence[str], words: Mapping[str, int], mask: int
) -> int:
    if kind is GateType.AND:
        result = mask
        for net in input_nets:
            result &= words[net]
        return result
    if kind is GateType.NAND:
        result = mask
        for net in input_nets:
            result &= words[net]
        return result ^ mask
    if kind is GateType.OR:
        result = 0
        for net in input_nets:
            result |= words[net]
        return result
    if kind is GateType.NOR:
        result = 0
        for net in input_nets:
            result |= words[net]
        return result ^ mask
    if kind is GateType.XOR:
        result = 0
        for net in input_nets:
            result ^= words[net]
        return result
    if kind is GateType.XNOR:
        result = 0
        for net in input_nets:
            result ^= words[net]
        return result ^ mask
    if kind is GateType.NOT:
        return words[input_nets[0]] ^ mask
    if kind is GateType.BUF:
        return words[input_nets[0]]
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return mask
    raise NetlistError(f"cannot evaluate gate type {kind}")
