"""Sequential fault simulation with concurrent-style divergence tracking.

For an *unscanned* sequential machine, a fault's effect can lodge in the
state and surface many cycles later — the very difficulty (§I-B, §IV)
that motivates scan design.  This engine:

* simulates the good machine once over the input sequence;
* per fault, simulates a faulty machine **only while it diverges**:
  starting from the good state trace, a faulty machine is advanced
  cycle-by-cycle from the first cycle its injected value matters, and
  is merged back (dropped) whenever its state re-converges with the
  good machine's — the bookkeeping insight of concurrent fault
  simulation (Ulrich & Baker [112], [113]) in serial form.

Three-valued: a fault counts as detected only when good and faulty
primary outputs are *definitely* different (no X involved).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport

Pattern = Mapping[str, int]


class SequentialFaultSimulator:
    """Fault simulator for DFF-based sequential circuits."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
    ) -> None:
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._order = self.expanded.topological_order()
        self._flops = self.expanded.flip_flops
        self._outputs = self.expanded.outputs

    # -- low-level evaluation with optional forced net ------------------
    def _settle(
        self,
        inputs: Pattern,
        state: Mapping[str, int],
        force_net: Optional[str] = None,
        force_value: int = 0,
    ) -> Dict[str, int]:
        from ..netlist.gates import evaluate

        net_values: Dict[str, int] = {}
        for net in self.expanded.inputs:
            net_values[net] = inputs.get(net, V.X)
        for flop in self._flops:
            net_values[flop.output] = state.get(flop.output, V.X)
        if force_net is not None and force_net in net_values:
            net_values[force_net] = force_value
        for gate in self._order:
            value = evaluate(gate.kind, tuple(net_values[n] for n in gate.inputs))
            if force_net == gate.output:
                value = force_value
            net_values[gate.output] = value
        return net_values

    def _next_state(self, net_values: Mapping[str, int]) -> Dict[str, int]:
        return {
            flop.output: net_values[flop.inputs[0]] for flop in self._flops
        }

    # -- good machine ---------------------------------------------------
    def good_trace(
        self,
        sequence: Sequence[Pattern],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> Tuple[List[Dict[str, int]], List[Dict[str, int]]]:
        """States before each cycle and PO values at each cycle."""
        state: Dict[str, int] = {
            flop.output: V.X for flop in self._flops
        }
        if initial_state:
            state.update(initial_state)
        states = []
        outputs = []
        for vector in sequence:
            states.append(dict(state))
            net_values = self._settle(vector, state)
            outputs.append({net: net_values[net] for net in self._outputs})
            state = self._next_state(net_values)
        return states, outputs

    # -- per-fault simulation with divergence tracking -------------------
    def run(
        self,
        sequence: Sequence[Pattern],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> CoverageReport:
        """Run and collect the results."""
        with telemetry.span(
            "faultsim.run", engine="sequential", circuit=self.circuit.name
        ):
            telemetry.incr("faultsim.patterns_simulated", len(sequence))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            report = CoverageReport(
                self.circuit.name, len(sequence), list(self.faults)
            )
            good_states, good_outputs = self.good_trace(sequence, initial_state)
            for fault in self.faults:
                index = self._first_detection(
                    fault, sequence, good_states, good_outputs
                )
                if index is not None:
                    report.first_detection[fault] = index
                    telemetry.incr("faultsim.seq.faults_detected")
            return report

    def _first_detection(
        self,
        fault: Fault,
        sequence: Sequence[Pattern],
        good_states: List[Dict[str, int]],
        good_outputs: List[Dict[str, int]],
    ) -> Optional[int]:
        site = fault_site_net(fault, self._branch_map)
        forced = V.ONE if fault.value else V.ZERO
        state: Optional[Dict[str, int]] = None  # None => converged with good
        for cycle, vector in enumerate(sequence):
            current_state = good_states[cycle] if state is None else state
            net_values = self._settle(vector, current_state, site, forced)
            for net in self._outputs:
                good_value = good_outputs[cycle][net]
                faulty_value = net_values[net]
                if (
                    good_value in (V.ZERO, V.ONE)
                    and faulty_value in (V.ZERO, V.ONE)
                    and good_value != faulty_value
                ):
                    telemetry.incr("faultsim.seq.faulty_cycles", cycle + 1)
                    return cycle
            state = self._next_state(net_values)
            if cycle + 1 < len(good_states) and state == good_states[cycle + 1]:
                state = None  # re-converged: ride the good trace again
        telemetry.incr("faultsim.seq.faulty_cycles", len(sequence))
        return None
