"""Fault dictionaries and diagnosis (the paper's refs [52]-[68]).

"Testing and Fault Location": once a device fails, *which* fault was
it?  The classical machinery is the **fault dictionary** — for every
modeled fault, the signature of output mismatches it produces over the
test set — and lookup of the observed behaviour.  Equivalent faults
produce identical signatures and stay grouped, exactly the resolution
limit fault equivalence imposes on any diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..faults.collapse import collapse_faults
from ..sim.packed import PackedPatternSet, PackedSimulator
from .expand import expand_branches, fault_site_net

Pattern = Mapping[str, int]
#: A behaviour signature: per pattern index, the set of failing outputs.
Signature = Tuple[Tuple[int, FrozenSet[str]], ...]


@dataclass
class DiagnosisResult:
    """Candidate faults consistent with an observed failure."""

    exact: List[Fault]          # signature matches completely
    nearest: List[Fault]        # best partial matches (if no exact)
    observed_failures: int

    @property
    def resolved(self) -> bool:
        """True when at least one exact candidate matched."""
        return bool(self.exact)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.exact:
            names = ", ".join(f.name for f in self.exact[:4])
            extra = "" if len(self.exact) <= 4 else f" (+{len(self.exact) - 4})"
            return f"exact match: {names}{extra}"
        if self.nearest:
            return f"no exact match; nearest: {self.nearest[0].name}"
        return "no candidates"


class FaultDictionary:
    """Full-response fault dictionary over a fixed pattern set."""

    def __init__(
        self,
        circuit: Circuit,
        patterns: Sequence[Pattern],
        faults: Optional[Sequence[Fault]] = None,
    ) -> None:
        self.circuit = circuit
        self.patterns = [dict(p) for p in patterns]
        self.faults = (
            list(faults) if faults is not None else collapse_faults(circuit)
        )
        self.expanded, self._branch_map = expand_branches(circuit)
        self._sim = PackedSimulator(self.expanded)
        self._packed = PackedPatternSet.from_patterns(
            list(circuit.inputs), self.patterns
        )
        self._good = self._sim.run(self._packed)
        self.entries: Dict[Fault, Signature] = {
            fault: self._signature_of(fault) for fault in self.faults
        }

    # -- construction ----------------------------------------------------
    def _signature_of(self, fault: Fault) -> Signature:
        site = fault_site_net(fault, self._branch_map)
        forced = self._packed.mask if fault.value else 0
        faulty = self._sim.run(self._packed, force={site: forced})
        signature: List[Tuple[int, FrozenSet[str]]] = []
        for index in range(len(self.patterns)):
            failing = frozenset(
                net
                for net in self.circuit.outputs
                if ((self._good[net] ^ faulty[net]) >> index) & 1
            )
            if failing:
                signature.append((index, failing))
        return tuple(signature)

    def good_responses(self) -> List[Dict[str, int]]:
        """Expected PO values per pattern (what the tester stores)."""
        return [
            {
                net: (self._good[net] >> index) & 1
                for net in self.circuit.outputs
            }
            for index in range(len(self.patterns))
        ]

    # -- diagnosis ---------------------------------------------------------
    def observe(self, device_responses: Sequence[Mapping[str, int]]) -> Signature:
        """Convert measured responses into a failure signature."""
        signature: List[Tuple[int, FrozenSet[str]]] = []
        good = self.good_responses()
        for index, (expected, measured) in enumerate(
            zip(good, device_responses)
        ):
            failing = frozenset(
                net
                for net in self.circuit.outputs
                if measured.get(net) != expected[net]
            )
            if failing:
                signature.append((index, failing))
        return tuple(signature)

    def diagnose(self, device_responses: Sequence[Mapping[str, int]]) -> DiagnosisResult:
        """Match measured responses against the dictionary."""
        observed = self.observe(device_responses)
        exact = [
            fault
            for fault, signature in self.entries.items()
            if signature == observed
        ]
        nearest: List[Fault] = []
        if not exact and observed:
            observed_set = set(observed)

            def score(fault: Fault) -> int:
                """Signature distance between a candidate and the observation."""
                return len(observed_set.symmetric_difference(self.entries[fault]))

            candidates = [f for f in self.faults if self.entries[f]]
            nearest = sorted(candidates, key=score)[:5]
        return DiagnosisResult(exact, nearest, len(observed))

    # -- resolution analysis --------------------------------------------
    def indistinguishable_groups(self) -> List[List[Fault]]:
        """Faults this pattern set cannot tell apart (same signature)."""
        by_signature: Dict[Signature, List[Fault]] = {}
        for fault, signature in self.entries.items():
            by_signature.setdefault(signature, []).append(fault)
        return [group for group in by_signature.values() if len(group) > 1]

    def diagnostic_resolution(self) -> float:
        """Fraction of detected faults with a unique signature."""
        detected = [f for f, s in self.entries.items() if s]
        if not detected:
            return 1.0
        grouped = {
            f
            for group in self.indistinguishable_groups()
            for f in group
            if self.entries[f]
        }
        return (len(detected) - len(grouped)) / len(detected)
