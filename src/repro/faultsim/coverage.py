"""Fault-coverage bookkeeping and reporting.

The paper defines coverage as "the number of faults that are tested
divided by the number of faults that are assumed" (§I-A), and notes
bridging defects have historically been caught by keeping single
stuck-at coverage "in the high 90 percent".  The report here carries
per-fault first-detection indices so coverage-vs-pattern-count curves
(the shape every random-testing argument relies on) fall out for free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faults.stuck_at import Fault


@dataclass
class CoverageReport:
    """Result of fault-simulating a pattern set against a fault list."""

    circuit_name: str
    num_patterns: int
    faults: List[Fault]
    first_detection: Dict[Fault, int] = field(default_factory=dict)

    @property
    def detected(self) -> List[Fault]:
        """Faults with at least one detecting pattern."""
        return [f for f in self.faults if f in self.first_detection]

    @property
    def undetected(self) -> List[Fault]:
        """Faults no pattern detected."""
        return [f for f in self.faults if f not in self.first_detection]

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)

    def coverage_curve(self) -> List[float]:
        """Cumulative coverage after each pattern (index 0 = 1 pattern)."""
        if not self.faults:
            return [1.0] * self.num_patterns
        counts = [0] * self.num_patterns
        for index in self.first_detection.values():
            counts[index] += 1
        curve: List[float] = []
        running = 0
        for count in counts:
            running += count
            curve.append(running / len(self.faults))
        return curve

    def patterns_to_reach(self, target: float) -> Optional[int]:
        """Patterns needed to hit a coverage target, or None.

        Consistent with :attr:`coverage` in the corners: an empty fault
        list means coverage is already 1.0 with zero patterns (returns
        0), and a target of 0.0 or less is likewise met by zero
        patterns.
        """
        if not self.faults or target <= 0:
            return 0
        for index, value in enumerate(self.coverage_curve()):
            if value >= target:
                return index + 1
        return None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name}: {len(self.first_detection)}/{len(self.faults)} "
            f"faults detected ({self.coverage:.1%}) "
            f"with {self.num_patterns} patterns"
        )

    def __str__(self) -> str:
        return self.summary()


def sample_fault_list(
    faults: Sequence[Fault], limit: Optional[int], seed: int
) -> List[Fault]:
    """Seeded uniform sample of at most ``limit`` faults.

    A prefix (``faults[:limit]``) would be biased toward whatever the
    fault-enumeration order puts first (inputs, then early gates), so
    sampled coverage would not estimate true coverage; a seeded
    ``random.sample`` is unbiased and reproducible.  Returns the list
    unchanged (as a copy) when it already fits.

    **Determinism guarantee:** the sample is a pure function of the
    input fault sequence (order included), ``limit`` and ``seed`` — it
    uses a private ``random.Random(seed)``, never global RNG state, so
    the same call returns the same sample in any process on any
    platform, and a flow that records the seed in its run manifest can
    reproduce the sampled universe exactly.
    """
    faults = list(faults)
    if limit is None or len(faults) <= limit:
        return faults
    return random.Random(seed).sample(faults, limit)


def merge_reports(
    reports: Sequence[CoverageReport], axis: str = "patterns"
) -> CoverageReport:
    """Union coverage of several runs, along one of two axes.

    ``axis="patterns"`` (the default) merges runs of *different pattern
    sets over the same fault list*: pattern indices are offset by the
    runs' pattern counts in order, as if the pattern sets were
    concatenated.  Every report must come from the same circuit and the
    same fault list — merging across different fault universes would
    silently produce a wrong coverage denominator — so any disagreement
    in circuit name or fault set raises ValueError.

    ``axis="faults"`` merges runs of *the same pattern set over disjoint
    fault shards* (sharded fault simulation): the merged fault list is
    the concatenation of the shards' lists in the order given, pattern
    indices pass through unchanged, and the reports must agree on
    circuit name and pattern count while their fault lists must be
    pairwise disjoint.  Merging contiguous shards of one fault list in
    shard order therefore reproduces the single-process report
    bit-for-bit.

    **Determinism guarantee (both axes):** the merge is a pure function
    of the input reports and their order — no RNG, no wall clock, no
    dict-iteration dependence on process state.  On the pattern axis a
    fault's merged first-detection index is the minimum over the
    offset-adjusted inputs; on the fault axis rows pass through
    untouched.  Merging the same reports in the same order therefore
    yields an identical report in every process — the property the
    sharded executor's bit-identical-to-``workers=1`` contract rests
    on.
    """
    if axis == "faults":
        return _merge_fault_shards(reports)
    if axis != "patterns":
        raise ValueError(f"unknown merge axis {axis!r}")
    if not reports:
        raise ValueError("nothing to merge")
    base = reports[0]
    base_faults = set(base.faults)
    for position, report in enumerate(reports[1:], start=1):
        if report.circuit_name != base.circuit_name:
            raise ValueError(
                f"cannot merge coverage reports from different circuits: "
                f"{base.circuit_name!r} vs {report.circuit_name!r} "
                f"(report {position})"
            )
        if set(report.faults) != base_faults:
            raise ValueError(
                f"cannot merge coverage reports over different fault lists: "
                f"report {position} disagrees with report 0 "
                f"({len(report.faults)} vs {len(base.faults)} faults)"
            )
    merged = CoverageReport(
        circuit_name=base.circuit_name,
        num_patterns=sum(r.num_patterns for r in reports),
        faults=list(base.faults),
    )
    offset = 0
    for report in reports:
        for fault, index in report.first_detection.items():
            candidate = offset + index
            if fault not in merged.first_detection or candidate < merged.first_detection[fault]:
                merged.first_detection[fault] = candidate
        offset += report.num_patterns
    return merged


def _merge_fault_shards(reports: Sequence[CoverageReport]) -> CoverageReport:
    """Merge reports over disjoint fault shards of one pattern set."""
    if not reports:
        raise ValueError("nothing to merge")
    base = reports[0]
    seen: set = set()
    merged = CoverageReport(
        circuit_name=base.circuit_name,
        num_patterns=base.num_patterns,
        faults=[],
    )
    for position, report in enumerate(reports):
        if report.circuit_name != base.circuit_name:
            raise ValueError(
                f"cannot merge coverage reports from different circuits: "
                f"{base.circuit_name!r} vs {report.circuit_name!r} "
                f"(shard {position})"
            )
        if report.num_patterns != base.num_patterns:
            raise ValueError(
                f"cannot merge fault shards over different pattern sets: "
                f"shard {position} saw {report.num_patterns} patterns, "
                f"shard 0 saw {base.num_patterns}"
            )
        overlap = seen.intersection(report.faults)
        if overlap:
            raise ValueError(
                f"fault shards must be disjoint: shard {position} repeats "
                f"{len(overlap)} fault(s), e.g. {next(iter(overlap))}"
            )
        seen.update(report.faults)
        merged.faults.extend(report.faults)
        merged.first_detection.update(report.first_detection)
    return merged
