"""Fault-coverage bookkeeping and reporting.

The paper defines coverage as "the number of faults that are tested
divided by the number of faults that are assumed" (§I-A), and notes
bridging defects have historically been caught by keeping single
stuck-at coverage "in the high 90 percent".  The report here carries
per-fault first-detection indices so coverage-vs-pattern-count curves
(the shape every random-testing argument relies on) fall out for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faults.stuck_at import Fault


@dataclass
class CoverageReport:
    """Result of fault-simulating a pattern set against a fault list."""

    circuit_name: str
    num_patterns: int
    faults: List[Fault]
    first_detection: Dict[Fault, int] = field(default_factory=dict)

    @property
    def detected(self) -> List[Fault]:
        """Faults with at least one detecting pattern."""
        return [f for f in self.faults if f in self.first_detection]

    @property
    def undetected(self) -> List[Fault]:
        """Faults no pattern detected."""
        return [f for f in self.faults if f not in self.first_detection]

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)

    def coverage_curve(self) -> List[float]:
        """Cumulative coverage after each pattern (index 0 = 1 pattern)."""
        if not self.faults:
            return [1.0] * self.num_patterns
        counts = [0] * self.num_patterns
        for index in self.first_detection.values():
            counts[index] += 1
        curve: List[float] = []
        running = 0
        for count in counts:
            running += count
            curve.append(running / len(self.faults))
        return curve

    def patterns_to_reach(self, target: float) -> Optional[int]:
        """Patterns needed to hit a coverage target, or None.

        Consistent with :attr:`coverage` in the corners: an empty fault
        list means coverage is already 1.0 with zero patterns (returns
        0), and a target of 0.0 or less is likewise met by zero
        patterns.
        """
        if not self.faults or target <= 0:
            return 0
        for index, value in enumerate(self.coverage_curve()):
            if value >= target:
                return index + 1
        return None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name}: {len(self.first_detection)}/{len(self.faults)} "
            f"faults detected ({self.coverage:.1%}) "
            f"with {self.num_patterns} patterns"
        )

    def __str__(self) -> str:
        return self.summary()


def merge_reports(reports: Sequence[CoverageReport]) -> CoverageReport:
    """Union coverage of several runs over the same fault list.

    Pattern indices are offset by the runs' pattern counts in order,
    as if the pattern sets were concatenated.

    Every report must come from the same circuit and the same fault
    list — merging across different fault universes would silently
    produce a wrong coverage denominator — so any disagreement in
    circuit name or fault set raises ValueError.
    """
    if not reports:
        raise ValueError("nothing to merge")
    base = reports[0]
    base_faults = set(base.faults)
    for position, report in enumerate(reports[1:], start=1):
        if report.circuit_name != base.circuit_name:
            raise ValueError(
                f"cannot merge coverage reports from different circuits: "
                f"{base.circuit_name!r} vs {report.circuit_name!r} "
                f"(report {position})"
            )
        if set(report.faults) != base_faults:
            raise ValueError(
                f"cannot merge coverage reports over different fault lists: "
                f"report {position} disagrees with report 0 "
                f"({len(report.faults)} vs {len(base.faults)} faults)"
            )
    merged = CoverageReport(
        circuit_name=base.circuit_name,
        num_patterns=sum(r.num_patterns for r in reports),
        faults=list(base.faults),
    )
    offset = 0
    for report in reports:
        for fault, index in report.first_detection.items():
            candidate = offset + index
            if fault not in merged.first_detection or candidate < merged.first_detection[fault]:
                merged.first_detection[fault] = candidate
        offset += report.num_patterns
    return merged
