"""Sharded multi-process fault simulation with an exact merge.

The paper's §II cost model says test generation and fault simulation
grow roughly with the *square* of gate count — the classic answer is to
throw parallel hardware at the fault list.  This module splits a
collapsed fault list into deterministic contiguous shards, runs any
Engine-API fault simulator (serial, deductive, parallel-fault,
parallel-pattern) or the sequential scan-flow verifier over each shard
in a worker process, and folds the per-shard
:class:`~repro.faultsim.coverage.CoverageReport` objects back together
with ``merge_reports(axis="faults")``.

Two properties make the merge *exact* rather than approximate:

* every engine decides each fault's detection (and first-detection
  index) independently of the other faults in its list, so a fault's
  row in the report cannot depend on which shard it landed in;
* shards are contiguous slices of the fault list, and the fault-axis
  merge concatenates them in shard order, so the merged report is
  **bit-identical** to the single-process run — same fault order, same
  first-detection indices, same coverage
  (``tests/test_sharded.py`` holds every engine to this).

Execution degrades gracefully: ``workers <= 1``, a single shard, or a
platform without ``fork`` all fall back to in-process execution (the
shard/merge path still runs when more than one shard was requested, so
the merge stays covered cross-platform).  Telemetry from each worker is
captured in the child, shipped back with the report, folded into the
parent's active sink, and aggregated into the ``workers`` section of
the flow's :class:`~repro.telemetry.RunManifest`.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .. import telemetry
from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from .coverage import CoverageReport, merge_reports

Pattern = Mapping[str, int]

#: Engine name for the sequential (scan-schedule) verifier, accepted by
#: this module alongside the combinational :class:`repro.faultsim.Engine`
#: names.  It is not part of the combinational Engine enum because its
#: input is a clock-cycle sequence, not independent patterns.
SEQUENTIAL_ENGINE = "sequential"


def fork_available() -> bool:
    """Can this platform run fork-based worker pools?"""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_faults(faults: Sequence[Fault], shards: int) -> List[List[Fault]]:
    """Split a fault list into deterministic contiguous shards.

    The first ``len(faults) % shards`` shards get one extra fault, so
    sizes differ by at most one; concatenating the shards in order
    reproduces the input list exactly (the invariant the fault-axis
    merge relies on).  Empty trailing shards are dropped, so fewer
    faults than shards yields ``len(faults)`` singleton shards.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    faults = list(faults)
    if not faults:
        return []
    shards = min(shards, len(faults))
    base, extra = divmod(len(faults), shards)
    out: List[List[Fault]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(faults[start : start + size])
        start += size
    return out


def _engine_name(engine: Any) -> str:
    """Normalize an engine selector (enum, str) to its string name."""
    from . import Engine

    if isinstance(engine, Engine):
        return engine.value
    if engine == SEQUENTIAL_ENGINE:
        return SEQUENTIAL_ENGINE
    return Engine(engine).value


def _build_simulator(
    circuit: Circuit,
    engine: str,
    faults: Sequence[Fault],
    engine_kwargs: Dict[str, Any],
):
    from . import create_simulator
    from .sequential import SequentialFaultSimulator

    if engine == SEQUENTIAL_ENGINE:
        return SequentialFaultSimulator(circuit, faults=faults, **engine_kwargs)
    return create_simulator(circuit, engine, faults=faults, **engine_kwargs)


# ----------------------------------------------------------------------
# Worker side.  State travels to the children by fork inheritance (the
# pool initializer runs in each child before any task), so the circuit
# and pattern set are never pickled per task — only the shard index
# goes out and only the shard's report (plus telemetry) comes back.
# ----------------------------------------------------------------------
_WORKER_STATE: Optional[Dict[str, Any]] = None


def _init_worker(state: Dict[str, Any]) -> None:
    global _WORKER_STATE
    telemetry.reset_in_child()
    _WORKER_STATE = state


def _run_shard(index: int):
    state = _WORKER_STATE
    assert state is not None, "worker pool initializer did not run"
    return _execute_shard(state, index)


def _execute_shard(state: Dict[str, Any], index: int):
    """Run one fault shard; returns (index, report, counters, seconds)."""
    shard = state["shards"][index]
    start = time.perf_counter()
    with telemetry.capture() as session:
        with telemetry.span(
            "faultsim.shard",
            shard=index,
            engine=state["engine"],
            circuit=state["circuit"].name,
        ):
            simulator = _build_simulator(
                state["circuit"], state["engine"], shard, state["engine_kwargs"]
            )
            report = simulator.run(state["patterns"], **state["run_kwargs"])
    elapsed = time.perf_counter() - start
    return index, report, dict(session.counters), elapsed


class ShardedFaultSimulator:
    """Multi-process fault simulation behind the uniform Engine API.

    Construction mirrors ``create_simulator`` plus the parallelism
    knobs: ``workers`` processes (default 1 = in-process), ``shards``
    fault shards (default: one per worker).  ``engine`` accepts every
    :class:`repro.faultsim.Engine` name and ``"sequential"`` for the
    scan-schedule verifier.

    ``run(patterns)`` returns a report bit-identical to the
    single-process engine's; ``detects``/``detected_faults`` (single
    pattern, latency-bound) always run in-process on a lazily built
    local simulator.  :attr:`stats` accumulates the manifest-ready
    ``workers`` section over every ``run`` call.
    """

    def __init__(
        self,
        circuit: Circuit,
        engine: Union[str, Any] = "parallel_pattern",
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        **engine_kwargs: Any,
    ) -> None:
        self.circuit = circuit
        self.engine = _engine_name(engine)
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.workers = max(1, int(workers or 1))
        self.shard_count = max(1, int(shards if shards is not None else self.workers))
        self.engine_kwargs = dict(engine_kwargs)
        self._local = None
        self.stats: Dict[str, Any] = {
            "requested": self.workers,
            "effective": 0,
            "mode": "inprocess",
            "runs": 0,
            "shards": [],
        }

    # -- in-process delegate -------------------------------------------
    def _local_simulator(self):
        if self._local is None:
            self._local = _build_simulator(
                self.circuit, self.engine, self.faults, self.engine_kwargs
            )
        return self._local

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Single-pattern probe (ATPG hook); always in-process."""
        return self._local_simulator().detects(pattern, fault)

    def detected_faults(self, pattern: Pattern) -> List[Fault]:
        """All listed faults one pattern detects; always in-process."""
        return self._local_simulator().detected_faults(pattern)

    # -- sharded execution ---------------------------------------------
    def run(self, patterns: Sequence[Pattern], **run_kwargs: Any) -> CoverageReport:
        """Fault-simulate the pattern set across the worker pool.

        The detected-fault set, first-detection indices, fault order and
        coverage are identical to the single-process engine run for any
        ``workers``/``shards`` combination.
        """
        shards = shard_faults(self.faults, self.shard_count)
        use_pool = (
            self.workers > 1 and len(shards) > 1 and fork_available()
        )
        mode = "fork" if use_pool else "inprocess"
        effective = min(self.workers, len(shards)) if use_pool else 1
        with telemetry.span(
            "faultsim.sharded.run",
            engine=self.engine,
            circuit=self.circuit.name,
            workers=effective,
            shards=len(shards),
            mode=mode,
        ):
            if len(shards) <= 1 and self.workers <= 1:
                # Pure single-process path: no shard/merge bookkeeping.
                report = self._local_simulator().run(patterns, **run_kwargs)
                self._record_run(mode, 1, [])
                return report
            state = {
                "circuit": self.circuit,
                "engine": self.engine,
                "patterns": list(patterns),
                "shards": shards,
                "engine_kwargs": self.engine_kwargs,
                "run_kwargs": dict(run_kwargs),
            }
            if not shards:
                # Empty fault list: one empty-report "shard" keeps the
                # result identical to the single-process run.
                report = self._local_simulator().run(patterns, **run_kwargs)
                self._record_run(mode, 1, [])
                return report
            if use_pool:
                context = multiprocessing.get_context("fork")
                with context.Pool(
                    processes=effective,
                    initializer=_init_worker,
                    initargs=(state,),
                ) as pool:
                    results = pool.map(_run_shard, range(len(shards)))
            else:
                results = [
                    _execute_shard(state, index) for index in range(len(shards))
                ]
            results.sort(key=lambda row: row[0])
            shard_rows = []
            for index, report, counters, elapsed in results:
                for name, value in counters.items():
                    telemetry.incr(name, value)
                shard_rows.append(
                    {
                        "shard": index,
                        "faults": len(shards[index]),
                        "duration_s": elapsed,
                        "counters": counters,
                    }
                )
            merged = merge_reports(
                [report for _, report, _, _ in results], axis="faults"
            )
            self._record_run(mode, effective, shard_rows)
            return merged

    def _record_run(
        self, mode: str, effective: int, shard_rows: List[Dict[str, Any]]
    ) -> None:
        """Fold one run's per-shard stats into the manifest section."""
        stats = self.stats
        stats["runs"] += 1
        stats["mode"] = mode
        stats["effective"] = max(stats["effective"], effective)
        by_shard = {row["shard"]: row for row in stats["shards"]}
        for row in shard_rows:
            existing = by_shard.get(row["shard"])
            if existing is None:
                stats["shards"].append(
                    {
                        "shard": row["shard"],
                        "faults": row["faults"],
                        "duration_s": row["duration_s"],
                        "counters": dict(row["counters"]),
                    }
                )
                by_shard[row["shard"]] = stats["shards"][-1]
            else:
                existing["duration_s"] += row["duration_s"]
                for name, value in row["counters"].items():
                    existing["counters"][name] = (
                        existing["counters"].get(name, 0) + value
                    )

    def workers_section(self) -> Dict[str, Any]:
        """JSON-safe copy of the accumulated manifest ``workers`` section."""
        return {
            "requested": self.stats["requested"],
            "effective": self.stats["effective"],
            "mode": self.stats["mode"],
            "runs": self.stats["runs"],
            "shards": [
                {
                    "shard": row["shard"],
                    "faults": row["faults"],
                    "duration_s": row["duration_s"],
                    "counters": dict(row["counters"]),
                }
                for row in self.stats["shards"]
            ],
        }


def sharded_coverage(
    circuit: Circuit,
    patterns: Sequence[Pattern],
    engine: Union[str, Any] = "parallel_pattern",
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    workers: int = 1,
    shards: Optional[int] = None,
    **engine_kwargs: Any,
) -> CoverageReport:
    """One-call sharded fault simulation (mirrors ``engine_coverage``)."""
    return ShardedFaultSimulator(
        circuit,
        engine,
        faults=faults,
        collapse=collapse,
        workers=workers,
        shards=shards,
        **engine_kwargs,
    ).run(patterns)
