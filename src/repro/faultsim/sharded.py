"""Sharded multi-process fault simulation with an exact merge.

The paper's §II cost model says test generation and fault simulation
grow roughly with the *square* of gate count — the classic answer is to
throw parallel hardware at the fault list.  This module splits a
collapsed fault list into deterministic contiguous shards, runs any
Engine-API fault simulator (serial, deductive, parallel-fault,
parallel-pattern) or the sequential scan-flow verifier over each shard
in a worker process, and folds the per-shard
:class:`~repro.faultsim.coverage.CoverageReport` objects back together
with ``merge_reports(axis="faults")``.

Two properties make the merge *exact* rather than approximate:

* every engine decides each fault's detection (and first-detection
  index) independently of the other faults in its list, so a fault's
  row in the report cannot depend on which shard it landed in;
* shards are contiguous slices of the fault list, and the fault-axis
  merge concatenates them in shard order, so the merged report is
  **bit-identical** to the single-process run — same fault order, same
  first-detection indices, same coverage
  (``tests/test_sharded.py`` holds every engine to this).

Worker execution goes through a pluggable :mod:`repro.exec` backend
(``backend=`` accepts ``"inline"``/``"fork"``/``"spawn"``/
``"thread-lane"``, an :class:`~repro.exec.ExecutorBackend` instance, or
``None`` for auto-selection: fork where available, else spawn — so
spawn-only platforms get a real pool instead of silently degrading).
Execution still degrades gracefully: ``workers <= 1``, a single shard,
or no usable process backend all fall back to in-process execution
(the shard/merge path still runs when more than one shard was
requested, so the merge stays covered cross-platform).  Every
degradation is *observable*: a ``faultsim.sharded.fallback`` counter
fires and the reason lands both in the manifest ``workers`` section's
``fallbacks`` list and in its top-level ``reason`` field
(``fork_unavailable`` / ``spawn_unavailable`` / ``single_shard``).
Telemetry from each worker is captured in the child, shipped back with
the report, folded into the parent's active sink, and aggregated into
the ``workers`` section of the flow's
:class:`~repro.telemetry.RunManifest`.

Fork-pool execution is *supervised* (:mod:`repro.resilience`): a worker
that crashes, hangs past the supervision timeout, or raises is retried
with jittered exponential backoff; a shard that keeps failing falls
back to chaos-free in-process execution, so transient worker faults
never change the result — it stays bit-identical to the fault-free
run.  A shard that fails *deterministically* (in-process too) is
handled per the :class:`~repro.resilience.FailurePolicy`: ``raise``
propagates (default), ``quarantine`` bisects the shard down to the
smallest failing fault subset and excludes only that (reported in the
manifest's validated ``failures`` section), ``degrade`` excludes the
whole shard.  The seeded chaos harness
(:class:`~repro.resilience.ChaosConfig`, ``tests/test_chaos.py``)
exists to prove all of the above.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..exec.backends import ExecutorBackend, _REGISTRY as _BACKEND_REGISTRY
from ..netlist.circuit import Circuit
from ..faults.stuck_at import Fault
from ..faults.models import (
    FaultModel,
    UnsupportedFaultModelError,
    plan_fault_model,
)
from ..resilience import (
    ChaosConfig,
    FailurePolicy,
    FailureRecord,
    SupervisionPolicy,
    failure_record,
)
from .coverage import CoverageReport, merge_reports

Pattern = Mapping[str, int]

#: Engine name for the sequential (scan-schedule) verifier, accepted by
#: this module alongside the combinational :class:`repro.faultsim.Engine`
#: names.  It is not part of the combinational Engine enum because its
#: input is a clock-cycle sequence, not independent patterns.
SEQUENTIAL_ENGINE = "sequential"


def fork_available() -> bool:
    """Can this platform run fork-based worker pools?"""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_faults(faults: Sequence[Fault], shards: int) -> List[List[Fault]]:
    """Split a fault list into deterministic contiguous shards.

    The first ``len(faults) % shards`` shards get one extra fault, so
    sizes differ by at most one; concatenating the shards in order
    reproduces the input list exactly (the invariant the fault-axis
    merge relies on).  Empty trailing shards are dropped, so fewer
    faults than shards yields ``len(faults)`` singleton shards.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    faults = list(faults)
    if not faults:
        return []
    shards = min(shards, len(faults))
    base, extra = divmod(len(faults), shards)
    out: List[List[Fault]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(faults[start : start + size])
        start += size
    return out


def _engine_name(engine: Any) -> str:
    """Normalize an engine selector (enum, str) to its string name."""
    from . import Engine

    if isinstance(engine, Engine):
        return engine.value
    if engine == SEQUENTIAL_ENGINE:
        return SEQUENTIAL_ENGINE
    return Engine(engine).value


def _build_simulator(
    circuit: Circuit,
    engine: str,
    faults: Sequence[Fault],
    engine_kwargs: Dict[str, Any],
):
    from . import create_simulator
    from .sequential import SequentialFaultSimulator

    if engine == SEQUENTIAL_ENGINE:
        return SequentialFaultSimulator(circuit, faults=faults, **engine_kwargs)
    return create_simulator(circuit, engine, faults=faults, **engine_kwargs)


# ----------------------------------------------------------------------
# Worker side.  State travels to the children by fork inheritance (the
# supervisor forks one child per shard attempt and the task closure
# references the state directly), so the circuit and pattern set are
# never pickled per task — only the shard's report (plus telemetry)
# comes back over the result pipe.
# ----------------------------------------------------------------------
def _execute_shard(state: Dict[str, Any], index: int):
    """Run one fault shard; returns (index, report, counters, seconds).

    Poisoned faults (chaos harness) raise here, in workers and in the
    parent alike — a *deterministic* failure that retries and the
    in-process fallback cannot heal, which is exactly what the
    quarantine/bisection path exists for.
    """
    shard = state["shards"][index]
    chaos: Optional[ChaosConfig] = state.get("chaos")
    if chaos is not None:
        chaos.check_poison_faults(shard)
    start = time.perf_counter()
    with telemetry.capture() as session:
        with telemetry.span(
            "faultsim.shard",
            shard=index,
            engine=state["engine"],
            circuit=state["circuit"].name,
        ):
            simulator = _build_simulator(
                state["circuit"], state["engine"], shard, state["engine_kwargs"]
            )
            report = simulator.run(state["patterns"], **state["run_kwargs"])
    elapsed = time.perf_counter() - start
    return index, report, dict(session.counters), elapsed


def _shard_task(state: Dict[str, Any], index: int, attempt: int):
    """Backend task entry point: chaos injection, then one shard.

    Module-level (not a closure) so the ``spawn`` backend can pickle it
    into fresh-interpreter workers.  Chaos injection is mode-aware:
    ``state["inject"]`` is ``"worker"`` only under isolated (process)
    backends — :meth:`ChaosConfig.inject_worker` may ``os._exit`` the
    process, which must never happen in the caller's own process under
    the inline or thread-lane backends (those get ``"inline"``
    injection, which only raises).
    """
    chaos: Optional[ChaosConfig] = state.get("chaos")
    if chaos is not None:
        inject = state.get("inject")
        site = f"shard:{index}"
        if inject == "worker":
            chaos.inject_worker(site, attempt)
        elif inject == "inline":
            chaos.inject_inline(site, attempt)
    return _execute_shard(state, index)


class ShardedFaultSimulator:
    """Multi-process fault simulation behind the uniform Engine API.

    Construction mirrors ``create_simulator`` plus the parallelism
    knobs: ``workers`` pool slots (default 1 = in-process), ``shards``
    fault shards (default: one per worker), ``backend`` (a
    :mod:`repro.exec` backend name/instance, or ``None`` to
    auto-select fork-then-spawn).  ``engine`` accepts every
    :class:`repro.faultsim.Engine` name and ``"sequential"`` for the
    scan-schedule verifier.

    ``run(patterns)`` returns a report bit-identical to the
    single-process engine's; ``detects``/``detected_faults`` (single
    pattern, latency-bound) always run in-process on a lazily built
    local simulator.  :attr:`stats` accumulates the manifest-ready
    ``workers`` section over every ``run`` call.

    Fault tolerance knobs: ``supervision`` (a
    :class:`~repro.resilience.SupervisionPolicy`: per-shard timeout,
    retry budget, backoff — defaults to bounded retries with no
    timeout), ``failure_policy`` (``"raise"`` / ``"quarantine"`` /
    ``"degrade"``, applied only to shards that fail *deterministically*
    after the in-process fallback), and ``chaos`` (a test-only
    :class:`~repro.resilience.ChaosConfig` injecting worker faults).
    Permanent failures accumulate in :attr:`failures` and surface via
    :meth:`failures_section`.
    """

    def __init__(
        self,
        circuit: Circuit,
        engine: Union[str, Any] = "parallel_pattern",
        faults: Optional[Sequence[Any]] = None,
        collapse: bool = True,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        supervision: Optional[SupervisionPolicy] = None,
        failure_policy: Union[str, FailurePolicy] = FailurePolicy.RAISE,
        chaos: Optional[ChaosConfig] = None,
        fault_model: Union[str, FaultModel] = FaultModel.STUCK_AT,
        backend: Union[None, str, ExecutorBackend] = None,
        **engine_kwargs: Any,
    ) -> None:
        self.engine = _engine_name(engine)
        model = FaultModel.coerce(fault_model)
        if self.engine == SEQUENTIAL_ENGINE and model is not FaultModel.STUCK_AT:
            # The scan-schedule verifier replays clock-cycle sequences on
            # the sequential netlist; the reduction composites are
            # combinational pattern(-pair) machines, so there is nothing
            # sound it could grade for the other models.
            raise UnsupportedFaultModelError(
                f"the sequential verifier only grades stuck-at faults; "
                f"got fault model {model.value!r}"
            )
        plan = plan_fault_model(circuit, model, faults=faults, collapse=collapse)
        self.fault_model_plan = plan
        self.circuit = plan.circuit
        self.faults = list(plan.faults)
        self.workers = max(1, int(workers or 1))
        self.shard_count = max(1, int(shards if shards is not None else self.workers))
        self.supervision = supervision if supervision is not None else SupervisionPolicy()
        self.failure_policy = FailurePolicy.coerce(failure_policy)
        self.chaos = chaos
        self.engine_kwargs = dict(engine_kwargs)
        self.backend_spec = backend
        self._backends: Dict[str, ExecutorBackend] = {}
        self._local = None
        self.failures: List[FailureRecord] = []
        self.stats: Dict[str, Any] = {
            "requested": self.workers,
            "effective": 0,
            "mode": "inprocess",
            "backend": None,
            "reason": None,
            "runs": 0,
            "shards": [],
            "fallbacks": [],
            "supervision": {
                "retries": 0,
                "crashes": 0,
                "hangs": 0,
                "exceptions": 0,
                "fallbacks": 0,
            },
        }

    # -- backend resolution --------------------------------------------
    def _resolve_backend(self) -> Tuple[Optional[ExecutorBackend], Optional[str]]:
        """The pooled backend for this run, or ``(None, reason)``.

        Auto-selection (``backend=None``) prefers fork — state ships to
        children for free by inheritance — and falls back to spawn so
        spawn-only platforms still get a real pool.  An explicitly
        requested backend that is unavailable degrades to in-process
        with a ``<name>_unavailable`` reason (never silently).  The
        module-level :func:`fork_available` stays the single source of
        truth for fork capability (tests monkeypatch it).
        """
        spec = self.backend_spec
        if isinstance(spec, ExecutorBackend):
            return spec, None
        if spec is None:
            if fork_available():
                name = "fork"
            elif "spawn" in multiprocessing.get_all_start_methods():
                name = "spawn"
            else:
                return None, "fork_unavailable"
        else:
            name = str(spec).strip().lower().replace("_", "-")
            if name == "thread":
                name = "thread-lane"
            if name not in _BACKEND_REGISTRY:
                raise ValueError(
                    f"unknown execution backend {spec!r}; available: "
                    f"{sorted(k for k in _BACKEND_REGISTRY if k != 'thread')}"
                )
        cls = _BACKEND_REGISTRY[name]
        available = fork_available() if name == "fork" else cls.available()
        if not available:
            return None, f"{name}_unavailable"
        instance = self._backends.get(name)
        if instance is None:
            instance = cls()
            self._backends[name] = instance
            # Persistent-worker backends (spawn) must not leak children
            # when the simulator is dropped without an explicit close().
            weakref.finalize(self, instance.close)
        return instance, None

    def close(self) -> None:
        """Release any persistent backend workers (idempotent)."""
        for instance in self._backends.values():
            instance.close()
        self._backends.clear()

    # -- in-process delegate -------------------------------------------
    def _local_simulator(self):
        if self._local is None:
            self._local = _build_simulator(
                self.circuit, self.engine, self.faults, self.engine_kwargs
            )
        return self._local

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Single-pattern probe (ATPG hook); always in-process."""
        return self._local_simulator().detects(pattern, fault)

    def detected_faults(self, pattern: Pattern) -> List[Fault]:
        """All listed faults one pattern detects; always in-process."""
        return self._local_simulator().detected_faults(pattern)

    # -- sharded execution ---------------------------------------------
    def run(self, patterns: Sequence[Pattern], **run_kwargs: Any) -> CoverageReport:
        """Fault-simulate the pattern set across the supervised pool.

        The detected-fault set, first-detection indices, fault order and
        coverage are identical to the single-process engine run for any
        ``workers``/``shards`` combination — including runs where the
        chaos harness crashes, hangs or poisons workers, as long as
        every failure is transient (healed by retry or in-process
        fallback).  Only a deterministic failure under a non-``raise``
        :class:`~repro.resilience.FailurePolicy` changes the report, by
        excluding the quarantined faults — and that exclusion is
        recorded in :attr:`failures`.
        """
        shards = shard_faults(self.faults, self.shard_count)
        backend, avail_reason = self._resolve_backend()
        use_pool = self.workers > 1 and len(shards) > 1 and backend is not None
        mode = backend.name if use_pool and backend is not None else "inprocess"
        if use_pool and backend is not None:
            # "effective" is pool slots granted; inline has exactly one.
            effective = (
                1 if backend.name == "inline"
                else min(self.workers, len(shards))
            )
            self.stats["backend"] = backend.name
            self.stats["reason"] = None
        else:
            effective = 1
            if self.workers > 1:
                # Degrading to in-process is never silent: counted in
                # telemetry, listed in ``fallbacks``, and surfaced as
                # the manifest workers section's top-level ``reason``.
                reason = avail_reason if backend is None else "single_shard"
                self.stats["reason"] = reason
                self._record_fallback(reason)
        with telemetry.span(
            "faultsim.sharded.run",
            engine=self.engine,
            circuit=self.circuit.name,
            workers=effective,
            shards=len(shards),
            mode=mode,
        ):
            if len(shards) <= 1 and self.workers <= 1:
                # Pure single-process path: no shard/merge bookkeeping.
                report = self._local_simulator().run(patterns, **run_kwargs)
                self._record_run(mode, 1, [])
                return report
            state = {
                "circuit": self.circuit,
                "engine": self.engine,
                "patterns": list(patterns),
                "shards": shards,
                "engine_kwargs": self.engine_kwargs,
                "run_kwargs": dict(run_kwargs),
                "chaos": self.chaos,
            }
            if not shards:
                # Empty fault list: one empty-report "shard" keeps the
                # result identical to the single-process run.
                report = self._local_simulator().run(patterns, **run_kwargs)
                self._record_run(mode, 1, [])
                return report
            if use_pool and backend is not None:
                shard_rows, report_lists = self._run_backend(
                    state, shards, effective, backend
                )
            else:
                shard_rows, report_lists = self._run_inprocess(state, shards)
            shard_rows.sort(key=lambda row: row["shard"])
            flat = [r for reports in report_lists for r in reports]
            if flat:
                merged = merge_reports(flat, axis="faults")
            else:
                # Every shard degraded away: an empty (but well-formed)
                # report, so callers still get coverage arithmetic.
                merged = CoverageReport(
                    self.circuit.name, len(state["patterns"]), []
                )
            self._record_run(mode, effective, shard_rows)
            return merged

    def _run_backend(
        self,
        state: Dict[str, Any],
        shards: List[List[Fault]],
        effective: int,
        backend: ExecutorBackend,
    ) -> Tuple[List[Dict[str, Any]], List[List[CoverageReport]]]:
        """Pooled path: supervised backend map, retries, per-shard fallback."""
        if self.chaos is not None:
            # Worker-kind injection may os._exit the process: only safe
            # when the backend isolates tasks in child processes.
            state["inject"] = "worker" if backend.isolated else "inline"
        outcome = backend.map(
            _shard_task,
            state,
            range(len(shards)),
            workers=effective,
            policy=self.supervision,
        )
        sup = self.stats["supervision"]
        sup["retries"] += outcome.retries
        kind_keys = {"crash": "crashes", "hang": "hangs",
                     "exception": "exceptions"}
        for event in outcome.events:
            key = kind_keys.get(event["kind"])
            if key:
                sup[key] += 1
        shard_rows: List[Dict[str, Any]] = []
        report_lists: List[List[CoverageReport]] = []
        for index in range(len(shards)):
            result = outcome.results.get(index)
            if result is not None:
                _, report, counters, elapsed = result
                # Telemetry fold-back contract: counters captured outside
                # this capture context (another process or thread) only
                # exist in the returned dict — replay them here.  The
                # inline backend's tasks tee directly into our sink, so
                # replaying there would double-count.
                if backend.replays_counters:
                    for name, value in counters.items():
                        telemetry.incr(name, value)
                shard_rows.append(
                    {"shard": index, "faults": len(shards[index]),
                     "duration_s": elapsed, "counters": counters}
                )
                report_lists.append([report])
                continue
            failure = outcome.failed[index]
            report_lists.append(
                self._resolve_failed_shard(state, index, failure, shard_rows)
            )
        return shard_rows, report_lists

    def _run_inprocess(
        self, state: Dict[str, Any], shards: List[List[Fault]]
    ) -> Tuple[List[Dict[str, Any]], List[List[CoverageReport]]]:
        """Shard/merge path without workers (fork unavailable etc.).

        Shard telemetry tees straight into the active sink as each
        shard runs in this process, so — unlike the fork path — its
        counters are *not* replayed afterwards (that would double-count
        them).
        """
        shard_rows: List[Dict[str, Any]] = []
        report_lists: List[List[CoverageReport]] = []
        for index in range(len(shards)):
            try:
                _, report, counters, elapsed = _execute_shard(state, index)
            except Exception as exc:
                report_lists.append(
                    self._apply_failure_policy(state, index, exc, attempts=1)
                )
                continue
            shard_rows.append(
                {"shard": index, "faults": len(shards[index]),
                 "duration_s": elapsed, "counters": counters}
            )
            report_lists.append([report])
        return shard_rows, report_lists

    def _resolve_failed_shard(
        self,
        state: Dict[str, Any],
        index: int,
        failure: Any,
        shard_rows: List[Dict[str, Any]],
    ) -> List[CoverageReport]:
        """A shard exhausted its worker retries: fall back in-process.

        Transient worker faults (crash/hang/injected exceptions) cannot
        follow the shard here — the fallback runs chaos-free in the
        parent — so its result is the fault-free one and the run stays
        bit-identical.  If the shard *still* fails the failure is
        deterministic and the :class:`FailurePolicy` decides.
        """
        telemetry.incr("resilience.fallback_inprocess")
        self._record_fallback("supervision", shard=index)
        try:
            _, report, counters, elapsed = _execute_shard(state, index)
        except Exception as exc:
            return self._apply_failure_policy(
                state, index, exc, attempts=failure.attempts + 1
            )
        shard_rows.append(
            {"shard": index, "faults": len(state["shards"][index]),
             "duration_s": elapsed, "counters": counters}
        )
        return [report]

    def _apply_failure_policy(
        self, state: Dict[str, Any], index: int, exc: Exception, attempts: int
    ) -> List[CoverageReport]:
        """Deterministic shard failure: raise, degrade, or quarantine."""
        shard = state["shards"][index]
        if self.failure_policy is FailurePolicy.RAISE:
            raise exc
        if self.failure_policy is FailurePolicy.DEGRADE:
            record = failure_record(
                f"shard:{index}", exc, attempts, "degrade",
                detail={"shard": index, "faults": [f.name for f in shard]},
            )
            self._record_failure(record, len(shard))
            return []
        reports, poisoned = self._bisect_shard(state, shard)
        record = failure_record(
            f"shard:{index}", exc, attempts, "quarantine",
            detail={
                "shard": index,
                "faults": [fault.name for fault, _ in poisoned],
                "errors": sorted({type(e).__name__ for _, e in poisoned}),
            },
        )
        self._record_failure(record, len(poisoned))
        return reports

    def _bisect_shard(
        self, state: Dict[str, Any], faults: List[Fault]
    ) -> Tuple[List[CoverageReport], List[Tuple[Fault, Exception]]]:
        """Narrow a deterministically failing shard to its bad faults.

        Classic delta-debugging bisection: run the subset in-process;
        on failure split it and recurse, down to singletons.  Returns
        the passing sub-reports *in fault-list order* (so the fault-axis
        merge preserves ordering) plus the poisoned faults.
        """
        telemetry.incr("resilience.bisect_runs")
        try:
            report = self._run_fault_subset(state, faults)
        except Exception as exc:
            if len(faults) == 1:
                return [], [(faults[0], exc)]
            mid = len(faults) // 2
            left_reports, left_poisoned = self._bisect_shard(state, faults[:mid])
            right_reports, right_poisoned = self._bisect_shard(state, faults[mid:])
            return left_reports + right_reports, left_poisoned + right_poisoned
        return [report], []

    def _run_fault_subset(
        self, state: Dict[str, Any], faults: List[Fault]
    ) -> CoverageReport:
        chaos: Optional[ChaosConfig] = state.get("chaos")
        if chaos is not None:
            chaos.check_poison_faults(faults)
        simulator = _build_simulator(
            state["circuit"], state["engine"], faults, state["engine_kwargs"]
        )
        return simulator.run(state["patterns"], **state["run_kwargs"])

    def _record_fallback(self, reason: str, shard: Optional[int] = None) -> None:
        """Count and remember one in-process fallback (never silent)."""
        telemetry.incr("faultsim.sharded.fallback")
        self.stats["fallbacks"].append({"reason": reason, "shard": shard})
        if reason == "supervision":
            self.stats["supervision"]["fallbacks"] += 1

    def _record_failure(self, record: FailureRecord, fault_count: int) -> None:
        self.failures.append(record)
        telemetry.incr("resilience.shard_failures")
        telemetry.incr("resilience.quarantined_faults", fault_count)

    def _record_run(
        self, mode: str, effective: int, shard_rows: List[Dict[str, Any]]
    ) -> None:
        """Fold one run's per-shard stats into the manifest section."""
        stats = self.stats
        stats["runs"] += 1
        stats["mode"] = mode
        stats["effective"] = max(stats["effective"], effective)
        by_shard = {row["shard"]: row for row in stats["shards"]}
        for row in shard_rows:
            existing = by_shard.get(row["shard"])
            if existing is None:
                stats["shards"].append(
                    {
                        "shard": row["shard"],
                        "faults": row["faults"],
                        "duration_s": row["duration_s"],
                        "counters": dict(row["counters"]),
                    }
                )
                by_shard[row["shard"]] = stats["shards"][-1]
            else:
                existing["duration_s"] += row["duration_s"]
                for name, value in row["counters"].items():
                    existing["counters"][name] = (
                        existing["counters"].get(name, 0) + value
                    )

    def workers_section(self) -> Dict[str, Any]:
        """JSON-safe copy of the accumulated manifest ``workers`` section."""
        return {
            "requested": self.stats["requested"],
            "effective": self.stats["effective"],
            "mode": self.stats["mode"],
            "backend": self.stats["backend"],
            "reason": self.stats["reason"],
            "runs": self.stats["runs"],
            "fallbacks": [dict(row) for row in self.stats["fallbacks"]],
            "supervision": dict(self.stats["supervision"]),
            "shards": [
                {
                    "shard": row["shard"],
                    "faults": row["faults"],
                    "duration_s": row["duration_s"],
                    "counters": dict(row["counters"]),
                }
                for row in self.stats["shards"]
            ],
        }

    def failures_section(self) -> Optional[List[Dict[str, Any]]]:
        """Manifest-ready ``failures`` rows, or None when nothing failed."""
        if not self.failures:
            return None
        return [record.to_dict() for record in self.failures]


def sharded_coverage(
    circuit: Circuit,
    patterns: Sequence[Pattern],
    engine: Union[str, Any] = "parallel_pattern",
    faults: Optional[Sequence[Any]] = None,
    collapse: bool = True,
    workers: int = 1,
    shards: Optional[int] = None,
    supervision: Optional[SupervisionPolicy] = None,
    failure_policy: Union[str, FailurePolicy] = FailurePolicy.RAISE,
    chaos: Optional[ChaosConfig] = None,
    fault_model: Union[str, FaultModel] = FaultModel.STUCK_AT,
    backend: Union[None, str, ExecutorBackend] = None,
    **engine_kwargs: Any,
) -> CoverageReport:
    """One-call sharded fault simulation (mirrors ``engine_coverage``)."""
    simulator = ShardedFaultSimulator(
        circuit,
        engine,
        faults=faults,
        collapse=collapse,
        workers=workers,
        shards=shards,
        supervision=supervision,
        failure_policy=failure_policy,
        chaos=chaos,
        fault_model=fault_model,
        backend=backend,
        **engine_kwargs,
    )
    try:
        return simulator.run(patterns)
    finally:
        simulator.close()
