"""Wide-word fault simulation: lane-batched PPSF (the vectorized engine).

Same workload contract as the parallel-pattern engine
(:mod:`repro.faultsim.parallel_pattern`) — identical detected-fault
sets and first-detection indices on any (circuit, fault list, pattern
set) input — but instead of injecting one fault at a time, faults are
graded in *batches*: each batch shares one pass over the union of its
output cones, with one lane per faulty machine
(:class:`repro.sim.wide.WideInjector`).  Faults are ordered by the
topological position of their site before batching so batch-mates'
cones overlap heavily and the union stays close to a single cone.

Engine name: ``"wide"`` (:class:`repro.faultsim.Engine.WIDE`).  The
lane backend (numpy arrays or the dependency-free big-int fallback) is
chosen at import time and can be pinned per instance via ``backend=``
or globally via the ``REPRO_WIDE_BACKEND`` environment variable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from ..sim.compiled import compile_circuit
from ..sim.packed import PackedPatternSet
from ..sim.wide import WideInjector, resolve_backend
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport

Pattern = Mapping[str, int]

#: Faults graded per union-cone pass.  Large enough that the per-op
#: interpreter cost is amortized across many lanes (the union cone of
#: 256 topologically adjacent faults is barely larger than that of 64,
#: while vector ops on 256 lanes cost little more than on 64), small
#: enough that per-net lane matrices stay cache- and memory-friendly.
DEFAULT_FAULT_BATCH = 256

#: Patterns simulated per packed batch.  The wide engine's per-gate cost
#: is dominated by fixed per-vector-op dispatch, so wider pattern words
#: amortize it almost for free (the report is identical for any batch
#: size; see :meth:`WideFaultSimulator.run`).
DEFAULT_PATTERN_BATCH = 1024


class WideFaultSimulator:
    """Lane-batched parallel-pattern fault simulator (combinational).

    Construction mirrors :class:`~repro.faultsim.parallel_pattern.FaultSimulator`
    plus the wide knobs: ``backend`` (``"auto"`` / ``"numpy"`` /
    ``"bigint"``) and ``fault_batch`` (lanes per union-cone pass).
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
        backend: str = "auto",
        fault_batch: int = DEFAULT_FAULT_BATCH,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError(
                "WideFaultSimulator is combinational; scan the design or use "
                "SequentialFaultSimulator"
            )
        if fault_batch < 1:
            raise ValueError(f"fault_batch must be >= 1, got {fault_batch}")
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.backend = resolve_backend(backend)
        self.fault_batch = fault_batch
        self.expanded, self._branch_map = expand_branches(circuit)
        self._program = compile_circuit(self.expanded)
        # Per-fault site index in the expanded circuit (None = absent net,
        # never detected — matching the parallel-pattern engine).
        self._site_index: Dict[Fault, Optional[int]] = {}
        # Site per position in self.faults, and the site-sorted order of
        # the full list — both computed once (dataclass hashing per
        # fault per run would otherwise show up in profiles).
        self._sites: Optional[List[Optional[int]]] = None
        self._full_order: Optional[List[int]] = None

    def _site(self, fault: Fault) -> Optional[int]:
        try:
            return self._site_index[fault]
        except KeyError:
            site = self._program.index.get(
                fault_site_net(fault, self._branch_map)
            )
            self._site_index[fault] = site
            return site

    def _fault_sites(self) -> List[Optional[int]]:
        sites = self._sites
        if sites is None:
            index_get = self._program.index.get
            branch_map = self._branch_map
            sites = [
                index_get(fault_site_net(fault, branch_map))
                for fault in self.faults
            ]
            self._sites = sites
        return sites

    def _ordered(self, indices: Sequence[int]) -> List[int]:
        """``indices`` (positions into ``self.faults``) sorted by site.

        The dense net index *is* the topological position, so sorting by
        it clusters faults whose cones share downstream logic.  The sort
        is stable and pure, so batching is deterministic.
        """
        if len(indices) == len(self.faults):
            order = self._full_order
            if order is not None:
                return order
        sites = self._fault_sites()
        sentinel = self._program.num_nets
        order = sorted(
            indices,
            key=lambda k: sentinel if sites[k] is None else sites[k],
        )
        if len(indices) == len(self.faults):
            self._full_order = order
        return order

    def _grade_batchwise(
        self, injector: WideInjector, indices: Sequence[int]
    ) -> Dict[int, int]:
        """Detection word per fault position, lane-batched."""
        detections: Dict[int, int] = {}
        sites = self._fault_sites()
        faults = self.faults
        mask = injector.mask
        order = self._ordered(indices)
        step = self.fault_batch
        for start in range(0, len(order), step):
            chunk = order[start : start + step]
            targets: List[Tuple[int, int]] = []
            positions: List[int] = []
            for k in chunk:
                site = sites[k]
                if site is None:
                    detections[k] = 0
                    continue
                targets.append((site, mask if faults[k].value else 0))
                positions.append(k)
            if not targets:
                continue
            for k, det in zip(positions, injector.grade(targets)):
                detections[k] = det
        return detections

    def run(
        self,
        patterns: Sequence[Pattern],
        batch_size: int = DEFAULT_PATTERN_BATCH,
        drop_detected: bool = True,
    ) -> CoverageReport:
        """Fault-simulate the pattern list; returns a coverage report.

        Identical semantics (and bit-identical reports) to
        :meth:`FaultSimulator.run`: packed pattern batches in order,
        first detection decided by lowest set bit within the first
        detecting batch, optional fault dropping between batches.
        """
        with telemetry.span(
            "faultsim.run", engine="wide", circuit=self.circuit.name,
            backend=self.backend,
        ):
            telemetry.incr("faultsim.patterns_simulated", len(patterns))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            return self._run(patterns, batch_size, drop_detected)

    def _run(
        self,
        patterns: Sequence[Pattern],
        batch_size: int,
        drop_detected: bool,
    ) -> CoverageReport:
        report = CoverageReport(self.circuit.name, len(patterns), list(self.faults))
        remaining = list(range(len(self.faults)))
        faults = self.faults
        inputs = self.circuit.inputs
        for start in range(0, len(patterns), batch_size):
            if not remaining:
                break
            batch = patterns[start : start + batch_size]
            packed = PackedPatternSet.from_patterns(inputs, batch)
            injector = WideInjector(self.expanded, packed, backend=self.backend)
            detections = self._grade_batchwise(injector, remaining)
            still_remaining: List[int] = []
            for k in remaining:
                detection_word = detections.get(k, 0)
                if detection_word:
                    # setdefault, not assignment: see FaultSimulator._run.
                    report.first_detection.setdefault(
                        faults[k], start + _lowest_set_bit(detection_word)
                    )
                    if not drop_detected:
                        still_remaining.append(k)
                else:
                    still_remaining.append(k)
            remaining = still_remaining
        return report

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Does one pattern detect one fault?  (ATPG verification hook.)"""
        telemetry.incr("faultsim.detects_calls")
        site = self._site(fault)
        if site is None:
            return False
        packed = PackedPatternSet.from_patterns(self.circuit.inputs, [pattern])
        injector = WideInjector(self.expanded, packed, backend=self.backend)
        forced = packed.mask if fault.value else 0
        return bool(injector.grade([(site, forced)])[0])

    def detected_faults(self, pattern: Pattern) -> List[Fault]:
        """All listed faults detected by one pattern."""
        telemetry.incr("faultsim.detected_faults_calls")
        packed = PackedPatternSet.from_patterns(self.circuit.inputs, [pattern])
        injector = WideInjector(self.expanded, packed, backend=self.backend)
        detections = self._grade_batchwise(injector, range(len(self.faults)))
        return [
            fault
            for k, fault in enumerate(self.faults)
            if detections.get(k, 0)
        ]


def _lowest_set_bit(word: int) -> int:
    return (word & -word).bit_length() - 1


def wide_coverage(
    circuit: Circuit,
    patterns: Sequence[Pattern],
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    **kwargs,
) -> CoverageReport:
    """One-call convenience wrapper around :class:`WideFaultSimulator`."""
    simulator = WideFaultSimulator(
        circuit, faults=faults, collapse=collapse, **kwargs
    )
    return simulator.run(patterns)
