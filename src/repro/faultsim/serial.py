"""Serial fault simulation: the naive baseline.

One fault, one pattern, one full-circuit pass at a time — literally the
paper's "3001 good machine simulations" (§I-B).  It exists as the
reference implementation (trivially correct) and as the baseline the
Eq. (1) runtime-scaling benchmark measures against the packed engines.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from .. import telemetry
from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault, all_faults
from ..faults.collapse import collapse_faults
from ..sim.logic import LogicSimulator
from .expand import expand_branches, fault_site_net
from .coverage import CoverageReport

Pattern = Mapping[str, int]


class SerialFaultSimulator:
    """Fault-serial, pattern-serial simulator (reference implementation)."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
    ) -> None:
        if not circuit.is_combinational:
            raise NetlistError("SerialFaultSimulator is combinational")
        self.circuit = circuit
        if faults is None:
            faults = collapse_faults(circuit) if collapse else all_faults(circuit)
        self.faults = list(faults)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._order = self.expanded.topological_order()

    def _evaluate(
        self, pattern: Pattern, force_net: Optional[str], force_value: int
    ) -> dict:
        from ..netlist.gates import evaluate_bool

        net_values = {}
        for net in self.expanded.inputs:
            net_values[net] = pattern.get(net, 0)
        if force_net is not None and force_net in net_values:
            net_values[force_net] = force_value
        for gate in self._order:
            value = evaluate_bool(
                gate.kind, tuple(net_values[n] for n in gate.inputs)
            )
            if force_net == gate.output:
                value = force_value
            net_values[gate.output] = value
        return net_values

    def detects(self, pattern: Pattern, fault: Fault) -> bool:
        """Does one pattern detect one fault (reference semantics)?"""
        site = fault_site_net(fault, self._branch_map)
        good = self._evaluate(pattern, None, 0)
        faulty = self._evaluate(pattern, site, fault.value)
        return any(
            good[net] != faulty[net] for net in self.circuit.outputs
        )

    def detected_faults(self, pattern: Pattern) -> List[Fault]:
        """All listed faults detected by one pattern (engine-API hook)."""
        return [f for f in self.faults if self.detects(pattern, f)]

    def run(self, patterns: Sequence[Pattern]) -> CoverageReport:
        """Run and collect the results."""
        with telemetry.span(
            "faultsim.run", engine="serial", circuit=self.circuit.name
        ):
            telemetry.incr("faultsim.patterns_simulated", len(patterns))
            telemetry.incr("faultsim.faults_graded", len(self.faults))
            report = CoverageReport(
                self.circuit.name, len(patterns), list(self.faults)
            )
            remaining = list(self.faults)
            for index, pattern in enumerate(patterns):
                if not remaining:
                    break
                still = []
                for fault in remaining:
                    if self.detects(pattern, fault):
                        report.first_detection[fault] = index
                    else:
                        still.append(fault)
                remaining = still
            return report
