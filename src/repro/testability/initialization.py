"""Initialization (synchronizing) sequence search — §III-B's
predictability problem, solved constructively.

"A CLEAR or PRESET function for all memory elements can be used.  Thus
the sequential machine can be put into a known state with very few
patterns."  Without such a test point, the tester must *find* an input
sequence that drives every flip-flop to a known value from the all-X
power-up state — if one exists at all.  This module searches for one
by breadth-first exploration of the three-valued state space; machines
like the reset-less binary counter are *proven* uninitializable (their
X's are closed under every input).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..sim.logic import LogicSimulator


@dataclass
class InitializationResult:
    """Outcome of the synchronizing-sequence search."""

    sequence: Optional[List[Dict[str, int]]]  # None if not found
    explored_states: int
    exhausted: bool  # True when the whole reachable X-space was searched

    @property
    def initializable(self) -> Optional[bool]:
        """True/False when decided; None when the search hit its bound."""
        if self.sequence is not None:
            return True
        return False if self.exhausted else None

    @property
    def length(self) -> Optional[int]:
        """Length of the found sequence, or None."""
        return None if self.sequence is None else len(self.sequence)


def find_initialization_sequence(
    circuit: Circuit,
    max_length: int = 16,
    max_states: int = 20000,
) -> InitializationResult:
    """BFS for the shortest input sequence leaving no flip-flop at X.

    The three-valued simulation semantics make this conservative: a
    sequence found here initializes the machine from *any* power-up
    state.  ``exhausted`` is True when the reachable three-valued state
    space was fully explored without success — a proof (within the
    pessimism of 3-valued simulation) that no synchronizing sequence
    exists.
    """
    flops = circuit.flip_flops
    if not flops:
        return InitializationResult([], 1, True)
    logic = LogicSimulator(circuit)
    state_nets = [flop.output for flop in flops]
    data_nets = [flop.inputs[0] for flop in flops]
    inputs = list(circuit.inputs)
    input_vectors = [
        dict(zip(inputs, bits))
        for bits in itertools.product((0, 1), repeat=len(inputs))
    ]

    start = tuple(V.X for _ in flops)
    frontier: List[Tuple[Tuple[int, ...], List[Dict[str, int]]]] = [(start, [])]
    seen = {start}
    explored = 0
    while frontier:
        next_frontier: List[Tuple[Tuple[int, ...], List[Dict[str, int]]]] = []
        for state, path in frontier:
            if len(path) >= max_length:
                return InitializationResult(None, explored, False)
            for vector in input_vectors:
                assignment = dict(vector)
                assignment.update(dict(zip(state_nets, state)))
                values = logic.run(assignment)
                next_state = tuple(values[net] for net in data_nets)
                explored += 1
                if explored > max_states:
                    return InitializationResult(None, explored, False)
                if all(v != V.X for v in next_state):
                    return InitializationResult(
                        path + [vector], explored, True
                    )
                if next_state not in seen:
                    seen.add(next_state)
                    next_frontier.append((next_state, path + [vector]))
        frontier = next_frontier
    # Reachable X-space exhausted with no fully-known successor.
    return InitializationResult(None, explored, True)


def cycles_to_initialize(circuit: Circuit, max_length: int = 16) -> Optional[int]:
    """Shortest synchronizing-sequence length, or None."""
    return find_initialization_sequence(circuit, max_length).length
