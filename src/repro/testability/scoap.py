"""SCOAP-style controllability/observability analysis (Goldstein [70]).

Section II of the paper: "a number of programs have been written which
essentially give analytic measures of controllability and observability
for different nets" — designers run them, find the hard nets, and then
pick techniques (test points, scan) to fix them.  This is that program.

Per net the analysis produces six numbers:

* ``cc0``/``cc1`` — combinational controllability: how many line
  assignments are needed to drive the net to 0/1 (primary inputs = 1);
* ``sc0``/``sc1`` — sequential controllability: how many *clock
  cycles* of state manipulation are implied (DFFs add one);
* ``co``/``so`` — combinational/sequential observability of the net at
  some primary output.

Feedback through flip-flops is handled by fixed-point relaxation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gates import Gate, GateType

INF = math.inf


@dataclass
class NetMeasures:
    """The six SCOAP numbers for one net."""

    cc0: float = INF
    cc1: float = INF
    sc0: float = INF
    sc1: float = INF
    co: float = INF
    so: float = INF

    @property
    def controllability(self) -> float:
        """Worst-case combinational controllability."""
        return max(self.cc0, self.cc1)

    @property
    def testability(self) -> float:
        """Scalar difficulty: worst controllability plus observability."""
        return self.controllability + self.co


@dataclass
class TestabilityReport:
    """TestabilityReport: see the module docstring for context."""
    circuit_name: str
    measures: Dict[str, NetMeasures]

    def hardest_to_control(self, count: int = 10) -> List[Tuple[str, float]]:
        """Hardest to control."""
        ranked = sorted(
            ((net, m.controllability) for net, m in self.measures.items()),
            key=lambda item: -item[1],
        )
        return ranked[:count]

    def hardest_to_observe(self, count: int = 10) -> List[Tuple[str, float]]:
        """Hardest to observe."""
        ranked = sorted(
            ((net, m.co) for net, m in self.measures.items()),
            key=lambda item: -item[1],
        )
        return ranked[:count]

    def mean_controllability(self) -> float:
        """Mean controllability."""
        finite = [
            m.controllability
            for m in self.measures.values()
            if m.controllability < INF
        ]
        return sum(finite) / len(finite) if finite else INF

    def mean_observability(self) -> float:
        """Mean observability."""
        finite = [m.co for m in self.measures.values() if m.co < INF]
        return sum(finite) / len(finite) if finite else INF

    def uncontrollable_nets(self) -> List[str]:
        """Uncontrollable nets."""
        return [n for n, m in self.measures.items() if m.controllability == INF]

    def unobservable_nets(self) -> List[str]:
        """Unobservable nets."""
        return [n for n, m in self.measures.items() if m.co == INF]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.circuit_name}: mean CC {self.mean_controllability():.1f}, "
            f"mean CO {self.mean_observability():.1f}, "
            f"{len(self.uncontrollable_nets())} uncontrollable, "
            f"{len(self.unobservable_nets())} unobservable"
        )


def _controllability_of_gate(
    gate: Gate, get: Dict[str, NetMeasures]
) -> Tuple[float, float, float, float]:
    """(cc0, cc1, sc0, sc1) of the gate output from its input measures."""
    kind = gate.kind
    ins = [get[n] for n in gate.inputs]

    def all1():  # every input must be 1
        """All1."""
        return (
            sum(m.cc1 for m in ins) + 1,
            sum(m.sc1 for m in ins),
        )

    def all0():
        """All0."""
        return (
            sum(m.cc0 for m in ins) + 1,
            sum(m.sc0 for m in ins),
        )

    def any0():  # cheapest single 0
        """Any0."""
        return (
            min(m.cc0 for m in ins) + 1,
            min(m.sc0 for m in ins),
        )

    def any1():
        """Any1."""
        return (
            min(m.cc1 for m in ins) + 1,
            min(m.sc1 for m in ins),
        )

    if kind is GateType.AND:
        (cc1, sc1), (cc0, sc0) = all1(), any0()
    elif kind is GateType.NAND:
        (cc0, sc0), (cc1, sc1) = all1(), any0()
    elif kind is GateType.OR:
        (cc0, sc0), (cc1, sc1) = all0(), any1()
    elif kind is GateType.NOR:
        (cc1, sc1), (cc0, sc0) = all0(), any1()
    elif kind is GateType.NOT:
        cc0, sc0 = ins[0].cc1 + 1, ins[0].sc1
        cc1, sc1 = ins[0].cc0 + 1, ins[0].sc0
    elif kind is GateType.BUF:
        cc0, sc0 = ins[0].cc0 + 1, ins[0].sc0
        cc1, sc1 = ins[0].cc1 + 1, ins[0].sc1
    elif kind in (GateType.XOR, GateType.XNOR):
        # Cheapest input combination of each parity.
        even, odd = _parity_costs(ins)
        if kind is GateType.XOR:
            (cc0, sc0), (cc1, sc1) = even, odd
        else:
            (cc1, sc1), (cc0, sc0) = even, odd
        cc0, cc1 = cc0 + 1, cc1 + 1
    elif kind is GateType.CONST0:
        cc0, sc0, cc1, sc1 = 1, 0, INF, INF
    elif kind is GateType.CONST1:
        cc1, sc1, cc0, sc0 = 1, 0, INF, INF
    elif kind is GateType.DFF:
        # Loading a flip-flop costs its data controllability plus one
        # clock cycle of sequential depth.
        cc0, sc0 = ins[0].cc0 + 1, ins[0].sc0 + 1
        cc1, sc1 = ins[0].cc1 + 1, ins[0].sc1 + 1
    else:
        raise ValueError(f"no SCOAP rule for {kind}")
    return cc0, cc1, sc0, sc1


def _parity_costs(ins: Sequence[NetMeasures]):
    """Cheapest (cc, sc) costs for even and odd input parity."""
    even = (0.0, 0.0)
    odd = (INF, INF)
    for m in ins:
        new_even = min(
            (even[0] + m.cc0, even[1] + m.sc0),
            (odd[0] + m.cc1, odd[1] + m.sc1),
        )
        new_odd = min(
            (even[0] + m.cc1, even[1] + m.sc1),
            (odd[0] + m.cc0, odd[1] + m.sc0),
        )
        even, odd = new_even, new_odd
    return even, odd


def analyze(circuit: Circuit, max_iterations: int = 100) -> TestabilityReport:
    """Compute all six SCOAP measures for every net."""
    measures: Dict[str, NetMeasures] = {
        net: NetMeasures() for net in circuit.nets()
    }
    for net in circuit.inputs:
        measures[net] = NetMeasures(cc0=1, cc1=1, sc0=0, sc1=0)

    gates = list(circuit.gates)
    # Controllability: relax to fixed point (loops through DFFs converge
    # because costs only decrease and are bounded below).
    for _ in range(max_iterations):
        changed = False
        for gate in gates:
            cc0, cc1, sc0, sc1 = _controllability_of_gate(gate, measures)
            m = measures[gate.output]
            if (cc0, cc1, sc0, sc1) != (m.cc0, m.cc1, m.sc0, m.sc1):
                if cc0 < m.cc0 or cc1 < m.cc1 or sc0 < m.sc0 or sc1 < m.sc1:
                    m.cc0, m.cc1 = min(m.cc0, cc0), min(m.cc1, cc1)
                    m.sc0, m.sc1 = min(m.sc0, sc0), min(m.sc1, sc1)
                    changed = True
                elif m.cc0 == INF and cc0 < INF:
                    m.cc0, m.cc1, m.sc0, m.sc1 = cc0, cc1, sc0, sc1
                    changed = True
        if not changed:
            break

    # Observability: primary outputs are free; walk backwards.
    for net in circuit.outputs:
        m = measures[net]
        m.co, m.so = 0, 0
    for _ in range(max_iterations):
        changed = False
        for gate in gates:
            out = measures[gate.output]
            if out.co == INF and gate.kind is not GateType.DFF:
                continue
            for pin, net in enumerate(gate.inputs):
                co, so = _pin_observability(gate, pin, measures)
                m = measures[net]
                if co < m.co:
                    m.co = co
                    changed = True
                if so < m.so:
                    m.so = so
                    changed = True
        if not changed:
            break
    return TestabilityReport(circuit.name, measures)


def _pin_observability(
    gate: Gate, pin: int, measures: Dict[str, NetMeasures]
) -> Tuple[float, float]:
    """Observability of one gate-input pin given the output's."""
    kind = gate.kind
    out = measures[gate.output]
    others = [m for index, m in enumerate(
        measures[n] for n in gate.inputs
    ) if index != pin]
    if kind in (GateType.AND, GateType.NAND):
        co = out.co + sum(m.cc1 for m in others) + 1
        so = out.so + sum(m.sc1 for m in others)
    elif kind in (GateType.OR, GateType.NOR):
        co = out.co + sum(m.cc0 for m in others) + 1
        so = out.so + sum(m.sc0 for m in others)
    elif kind in (GateType.NOT, GateType.BUF):
        co = out.co + 1
        so = out.so
    elif kind in (GateType.XOR, GateType.XNOR):
        co = out.co + sum(min(m.cc0, m.cc1) for m in others) + 1
        so = out.so + sum(min(m.sc0, m.sc1) for m in others)
    elif kind is GateType.DFF:
        # Observing a flip-flop's data costs one clock cycle.
        co = out.co + 1
        so = out.so + 1
    else:
        co, so = INF, INF
    return co, so
