"""Testability measures: SCOAP-style controllability/observability and
initialization (synchronizing-sequence) analysis."""

from .scoap import NetMeasures, TestabilityReport, analyze, INF
from .initialization import (
    InitializationResult,
    cycles_to_initialize,
    find_initialization_sequence,
)

__all__ = [
    "NetMeasures",
    "TestabilityReport",
    "analyze",
    "INF",
    "InitializationResult",
    "cycles_to_initialize",
    "find_initialization_sequence",
]
