"""Durable job journal: accepted work survives a daemon SIGKILL.

The daemon's crash-safety contract is *journal-before-ack*: a job's
full description (spec, tenant, priority) is appended to
``<store>/jobs.jsonl`` **before** the ``accepted`` event goes on the
wire.  A client that has seen an ack therefore holds a ``job_id`` the
next daemon can find: on start, :class:`JobJournal` replays the
journal, and every *open* job (an ``accepted`` line with no matching
``done``) is re-enqueued through the scheduler.  Re-running is cheap —
cells that completed before the crash are content-addressed store
hits, so recovery only pays for the work the crash actually lost.

Journal lines (same append-and-rotate machinery as ``tenants.jsonl``)::

    {"op": "accepted", "n": int, "job": {job_id, tenant, priority,
                                         return_payloads, spec}}
    {"op": "done", "job_id": str}
    {"op": "snapshot", "next_job": int, "jobs": [open job records]}

Rotation compacts rather than discards: past ``max_bytes`` the journal
is renamed to ``jobs.jsonl.1`` and the fresh file opens with one
``snapshot`` line carrying every still-open job plus the job-number
watermark, so a replay never needs the rotated file and completed
jobs' lines are garbage-collected by the same move.

Replay is torn-tail tolerant: a line that fails to parse (the classic
power-loss mid-append) is *skipped* with a telemetry counter
(``service.journal.torn``) instead of failing the restart — losing one
journal line costs at most one job's recoverability, never the
daemon.  An outright unreadable journal (permissions, a directory in
the way) raises :class:`JobJournalError`, which ``python -m repro
serve`` maps to exit code 3 — refusing to silently serve with
recovery broken.

Write failures after construction are swallowed with a counter
(``service.journal.write_failed``): like the tenant ledger, the daemon
degrades to session-local job tracking rather than refusing traffic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .. import telemetry

__all__ = ["JobJournal", "JobJournalError", "JOBS_JOURNAL"]

#: Journal filename under the store root.
JOBS_JOURNAL = "jobs.jsonl"


class JobJournalError(Exception):
    """The journal exists but cannot be read — recovery is impossible."""


def _valid_job(record: Any) -> Optional[Dict[str, Any]]:
    """A replayed job record, normalized — or None if malformed."""
    if not isinstance(record, dict):
        return None
    job_id = record.get("job_id")
    spec = record.get("spec")
    if not isinstance(job_id, str) or not job_id or not isinstance(spec, dict):
        return None
    tenant = record.get("tenant")
    priority = record.get("priority", 0)
    return {
        "job_id": job_id,
        "tenant": tenant if isinstance(tenant, str) and tenant else "default",
        "priority": priority if isinstance(priority, int)
        and not isinstance(priority, bool) else 0,
        "return_payloads": bool(record.get("return_payloads", False)),
        "spec": spec,
    }


class JobJournal:
    """Durable open-job set backed by a JSONL journal under the store."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = 1 << 20,
        enabled: bool = True,
        chaos: Optional[Any] = None,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / JOBS_JOURNAL
        self.max_bytes = int(max_bytes)
        self.enabled = bool(enabled)
        self.chaos = chaos
        #: job_id -> normalized job record, in acceptance order.
        self.open_jobs: Dict[str, Dict[str, Any]] = {}
        #: First job number the new daemon lifetime may assign.
        self.next_job_number = 0
        self.torn_lines = 0
        self.rotations = 0
        self.write_failures = 0
        self._append_seq = 0
        #: Cached journal size so the rotation check costs no stat()
        #: per append; re-synced from disk on any write failure.
        self._size = 0
        if self.enabled:
            self._load()
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                self._size = self.path.stat().st_size
            except FileNotFoundError:
                self._size = 0
            except OSError as exc:
                raise JobJournalError(
                    f"jobs journal directory {self.root} is unusable: {exc}"
                ) from exc

    # -- replay --------------------------------------------------------
    def _load(self) -> None:
        """Rebuild the open-job set from the newest journal on disk."""
        path = self.path
        if not path.exists():
            rotated = path.parent / (path.name + ".1")
            if not rotated.exists():
                return
            path = rotated
        try:
            with open(path, "r", encoding="utf-8") as stream:
                lines = stream.readlines()
        except OSError as exc:
            raise JobJournalError(
                f"jobs journal {path} exists but cannot be read: {exc}"
            ) from exc
        open_jobs: Dict[str, Dict[str, Any]] = {}
        next_job = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # Torn tail (or mid-file bit rot): skip, count, carry on
                # — restart recovery must never die on one bad line.
                self.torn_lines += 1
                telemetry.incr("service.journal.torn")
                continue
            if not isinstance(entry, dict):
                self.torn_lines += 1
                telemetry.incr("service.journal.torn")
                continue
            op = entry.get("op")
            if op == "accepted":
                job = _valid_job(entry.get("job"))
                if job is not None:
                    open_jobs[job["job_id"]] = job
                number = entry.get("n")
                if isinstance(number, int) and not isinstance(number, bool):
                    next_job = max(next_job, number + 1)
            elif op == "done":
                open_jobs.pop(entry.get("job_id"), None)
            elif op == "snapshot":
                jobs = entry.get("jobs")
                if isinstance(jobs, list):
                    open_jobs = {}
                    for record in jobs:
                        job = _valid_job(record)
                        if job is not None:
                            open_jobs[job["job_id"]] = job
                number = entry.get("next_job")
                if isinstance(number, int) and not isinstance(number, bool):
                    next_job = max(next_job, number)
        self.open_jobs = open_jobs
        self.next_job_number = next_job
        if open_jobs:
            telemetry.incr("service.journal.recovered", len(open_jobs))

    # -- recording -----------------------------------------------------
    def record_accepted(
        self,
        job_id: str,
        number: int,
        tenant: str,
        priority: int,
        return_payloads: bool,
        spec: Dict[str, Any],
    ) -> None:
        """Journal one accepted job — call *before* acking the client."""
        record = {
            "job_id": job_id,
            "tenant": tenant,
            "priority": int(priority),
            "return_payloads": bool(return_payloads),
            "spec": spec,
        }
        self.open_jobs[job_id] = record
        self.next_job_number = max(self.next_job_number, number + 1)
        self._append({"op": "accepted", "n": int(number), "job": record})

    def record_done(self, job_id: str) -> None:
        """Journal one finished (or abandoned) job."""
        self.open_jobs.pop(job_id, None)
        self._append({"op": "done", "job_id": job_id})

    def stats_dict(self) -> Dict[str, int]:
        """JSON-safe counters for status events and the manifest."""
        return {
            "enabled": int(self.enabled),
            "open": len(self.open_jobs),
            "torn_lines": self.torn_lines,
            "rotations": self.rotations,
            "write_failures": self.write_failures,
        }

    # -- journal -------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> None:
        """Append one line, rotating past ``max_bytes``.

        Mirrors :class:`~repro.service.accounting.TenantLedger`: the
        in-memory set is the running daemon's source of truth, so
        write errors degrade durability (counted, never raised).
        """
        if not self.enabled:
            return
        try:
            if self._size >= self.max_bytes:
                try:
                    os.replace(
                        self.path, self.path.parent / (self.path.name + ".1")
                    )
                except FileNotFoundError:
                    pass
                self.rotations += 1
                telemetry.incr("service.journal.rotated")
                # Seed the fresh journal with every open job so a
                # replay never needs the rotated file; done jobs'
                # lines are compacted away by the same move.
                snapshot = json.dumps(
                    {
                        "op": "snapshot",
                        "next_job": self.next_job_number,
                        "jobs": list(self.open_jobs.values()),
                    },
                    sort_keys=True,
                ) + "\n"
                with open(self.path, "a", encoding="utf-8") as stream:
                    stream.write(snapshot)
                self._size = len(snapshot.encode("utf-8"))
            line = json.dumps(entry, sort_keys=True) + "\n"
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(line)
            self._size += len(line.encode("utf-8"))
        except OSError:
            self.write_failures += 1
            telemetry.incr("service.journal.write_failed")
            try:  # re-sync the cached size; the write may be partial
                self._size = self.path.stat().st_size
            except OSError:
                self._size = 0
            return
        self._append_seq += 1
        if self.chaos is not None:
            self.chaos.maybe_corrupt_journal(self.path, self._append_seq)
