"""The multi-tenant campaign daemon: ``python -m repro serve``.

The paper's economics only pay off when fault grading is cheap enough
to run *constantly* — which means a long-lived shared service, not a
per-developer CLI invocation.  :class:`CampaignService` is that
service: an asyncio job-queue daemon in front of the content-addressed
:class:`~repro.store.ResultStore`.

Architecture (one process, one event loop):

* **Connections** — each client connection carries one request
  (:mod:`repro.service.protocol`) and gets a stream of JSON-line
  events back.  Submissions expand a :class:`~repro.campaign.spec.
  CampaignSpec` into cells; every cell streams back as soon as it
  finishes, in deterministic spec order.
* **Dedupe through ``cache_key``** — a cell's identity is its content
  address.  Before scheduling, the server consults the *in-flight
  table*: if another tenant's identical cell is already executing, the
  new job attaches to the same :class:`asyncio.Future` (``shared``),
  paying zero additional work; if the store already holds the
  artifact, the job gets a warm ``hit``.  Only genuinely novel cells
  become cold ``miss`` executions.
* **N execution lanes, fair-share scheduled** — ``--lanes N`` runs N
  concurrent lane tasks, each draining the
  :class:`~repro.service.scheduler.FairShareScheduler` (per-tenant
  deficit round-robin over per-tenant priority queues, so one tenant's
  bulk campaign cannot starve another's interactive submission; the
  optional protocol-v2 ``priority`` field biases order within a
  tenant).  Lane telemetry is safe because
  :func:`repro.telemetry.capture` is contextvar-scoped and re-entrant
  across threads.  With more than one lane, cold cells execute in a
  :mod:`repro.exec` *process* backend (fork where available, else
  spawn) so lanes actually overlap on CPU-bound work instead of
  serializing on the GIL — store hits stay in the lane thread, where
  they overlap on I/O.  Intra-cell parallelism still comes from the
  sharded executor (``workers=N`` per cell).
* **Tenant isolation** — a poisoned netlist fails *its* cell: the
  failure is retried per :class:`~repro.resilience.RetryPolicy`, then
  recorded as a :class:`~repro.resilience.FailureRecord` and streamed
  to the waiting job(s) while the queue moves on
  (:class:`~repro.resilience.FailurePolicy` ``quarantine``, the
  daemon default).  Under ``raise`` the *job* aborts after the failed
  cell — the daemon itself never dies on tenant input.
* **Store lifecycle** — the store runs under a
  :class:`~repro.store.LifecyclePolicy`: every cold put may trigger an
  LRU pass, but keys of scheduled/streaming cells are *pinned*, so an
  in-flight job can never lose its own artifacts to eviction.
* **Quotas** — cold executions charge their artifact bytes to the
  submitting tenant; a tenant at or over ``tenant_quota_bytes`` has
  further submissions rejected (cache hits are free — shared results
  are the whole point).  Charges are journaled to
  ``<store>/tenants.jsonl`` (:class:`~repro.service.accounting.
  TenantLedger`) and replayed on start, so quotas survive daemon
  restarts.

On shutdown (SIGTERM/SIGINT or the ``shutdown`` op) the daemon stops
accepting, drains its queue so no client is cut off mid-stream, and
writes a validated :class:`~repro.telemetry.RunManifest` with a
``service`` section to ``<store>/service/manifest.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import telemetry
from ..campaign.runner import cell_cache_key, encode_cell_result, execute_cell
from ..campaign.spec import CampaignCell, CampaignSpec
from ..exec.backends import ExecutorBackend, create_backend
from ..resilience import ChaosConfig, FailurePolicy, RetryPolicy, failure_record
from ..resilience.supervisor import SupervisionPolicy
from ..store import KIND_CAMPAIGN_CELL, LifecyclePolicy, ResultStore
from .accounting import TenantLedger
from .scheduler import FairShareScheduler
from .protocol import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_SUBMIT,
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    validate_request,
)

__all__ = ["ServiceConfig", "ServiceStats", "CampaignService", "run_service"]


class CellExecutionError(Exception):
    """A cold cell failed inside a process backend (crash/hang/raise)."""


def _cold_cell_task(
    payload: Tuple[CampaignCell, Dict[str, Any], int, str, Optional[str]],
    task: int,
    attempt: int,
) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """Backend task: run one cold cell in a child process.

    Module-level so the spawn backend can pickle it.  The child runs
    under its own :func:`telemetry.capture` and returns the counters
    alongside the encoded payload — the parent lane replays them (the
    exec fold-back contract; child-process counters would otherwise
    vanish with the child).
    """
    del task, attempt  # one cell per map call; retries live in the lane
    cell, params, workers, key, backend_spec = payload
    with telemetry.capture() as session:
        result = execute_cell(
            cell, params, workers=workers, key=key, backend=backend_spec
        )
        encoded = encode_cell_result(result)
        counters = dict(session.counters)
    return encoded, counters


@dataclass
class ServiceConfig:
    """Everything one daemon instance needs to know."""

    store_root: Union[str, Path] = ".repro-store"
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; discover via the ready file
    workers: int = 1  # per-cell sharding (execute_cell workers=N)
    lanes: int = 1  # concurrent execution lanes (fair-share scheduled)
    exec_backend: Optional[str] = None  # repro.exec backend; None = auto
    max_retries: int = 0
    failure_policy: Union[str, FailurePolicy] = FailurePolicy.QUARANTINE
    size_budget_bytes: Optional[int] = None
    index_max_bytes: int = 1 << 20
    quarantine_max_files: int = 64
    quarantine_max_age_s: Optional[float] = None
    tenant_quota_bytes: Optional[int] = None
    ready_file: Optional[Union[str, Path]] = None
    drain_timeout_s: float = 120.0

    def lifecycle(self) -> LifecyclePolicy:
        """The store lifecycle policy this config implies."""
        return LifecyclePolicy(
            size_budget_bytes=self.size_budget_bytes,
            index_max_bytes=self.index_max_bytes,
            quarantine_max_files=self.quarantine_max_files,
            quarantine_max_age_s=self.quarantine_max_age_s,
        )


@dataclass
class ServiceStats:
    """One daemon lifetime's traffic counters.

    ``cells`` counts requested cell-slots across all jobs; of those,
    ``hits`` were served from disk, ``misses`` were computed cold,
    ``shared`` attached to an already-in-flight identical execution,
    and ``failed`` failed permanently.  ``hits + misses + failed`` is
    the number of actual executions; ``shared / cells`` is the dedupe
    ratio concurrent duplicate traffic achieved on top of the store.
    """

    jobs: int = 0
    cells: int = 0
    hits: int = 0
    misses: int = 0
    shared: int = 0
    failed: int = 0
    rejected: int = 0
    evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe copy for status events and the service manifest."""
        return asdict(self)


class CampaignService:
    """Asyncio job-queue daemon over one shared :class:`ResultStore`."""

    def __init__(
        self,
        config: ServiceConfig,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.config = config
        self.chaos = chaos
        self.store = ResultStore(config.store_root, config.lifecycle())
        self.failure_policy = FailurePolicy.coerce(config.failure_policy)
        self.retry = RetryPolicy(max_retries=max(0, config.max_retries))
        self.stats = ServiceStats()
        self.lanes = max(1, int(config.lanes))
        # Satellite: per-tenant accounting survives restarts — the
        # ledger replays <store>/tenants.jsonl on construction.
        self.ledger = TenantLedger(self.store.root)
        self.scheduler = FairShareScheduler()
        self.address: Optional[Tuple[str, int]] = None
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        # Created in start(): on 3.9 these primitives bind to the loop
        # that exists at construction time, which must be the running
        # one or every await dies with "attached to a different loop".
        self._work: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._lane_tasks: List["asyncio.Task[None]"] = []
        self._busy_lanes = 0
        self._conn_tasks: set = set()
        # One executor thread per lane; lanes overlap on store I/O, and
        # cold cells escape the GIL through a process backend when
        # lanes > 1 (see _cold_backend).
        self._executor = ThreadPoolExecutor(
            max_workers=self.lanes, thread_name_prefix="repro-serve"
        )
        self._cell_backend: Optional[ExecutorBackend] = None
        self._jobs_seq = 0
        self._started_monotonic = 0.0

    @property
    def tenant_bytes(self) -> Dict[str, int]:
        """Per-tenant charged bytes (live view of the durable ledger)."""
        return self.ledger.tenant_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start the execution lanes, write the ready file."""
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stop = asyncio.Event()
        if self.lanes > 1:
            # Lanes must not serialize on the GIL for cold (CPU-bound)
            # cells: dispatch those into a process backend.  When no
            # process backend exists the lanes still overlap store I/O.
            self._cell_backend = self._resolve_cell_backend()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._lane_tasks = [
            asyncio.ensure_future(self._lane(index))
            for index in range(self.lanes)
        ]
        self._started_monotonic = time.monotonic()
        if self.config.ready_file:
            self._write_ready_file()
        return self.address

    def _resolve_cell_backend(self) -> Optional[ExecutorBackend]:
        """A process backend for cold cells, or None (inline in lane).

        Auto-selection (``exec_backend=None``) also requires >= 2
        cores: process dispatch exists to put lanes on separate cores,
        and on a single-core machine it is pure fork/pickle overhead.
        An explicitly named backend is honored regardless.
        """
        explicit = self.config.exec_backend is not None
        if not explicit and (os.cpu_count() or 1) < 2:
            return None
        backend = create_backend(self.config.exec_backend)
        if not backend.isolated:
            # inline / thread-lane cannot escape the GIL for CPU-bound
            # cell execution; run cells directly in the lane thread.
            return None
        if not type(backend).available():
            return None
        return backend

    def _write_ready_file(self) -> None:
        host, port = self.address
        payload = {
            "schema": PROTOCOL_SCHEMA,
            "host": host,
            "port": port,
            "pid": os.getpid(),
            "store": str(self.store.root),
        }
        path = Path(self.config.ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.parent / (path.name + ".tmp")
        temp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(temp, path)

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def serve_until_stopped(self) -> None:
        """Block until a stop request, then shut down gracefully.

        Graceful means: stop accepting, let queued executions and open
        response streams finish (bounded by ``drain_timeout_s``), then
        write the service manifest.
        """
        await self._stop.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            pass
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout_s
            )
        for task in self._lane_tasks:
            task.cancel()
        for task in self._lane_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._executor.shutdown(wait=True)
        if self._cell_backend is not None:
            self._cell_backend.close()
        self.write_manifest()
        if self.config.ready_file:
            try:
                os.unlink(self.config.ready_file)
            except OSError:
                pass

    def uptime_s(self) -> float:
        """Seconds since :meth:`start`."""
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # Service manifest
    # ------------------------------------------------------------------
    def service_section(self) -> Dict[str, Any]:
        """The validated ``service`` manifest section for this lifetime."""
        return {
            "jobs": self.stats.jobs,
            "cells": self.stats.cells,
            "dedupe": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "shared": self.stats.shared,
            },
            "tenants": {
                tenant: bytes_used
                for tenant, bytes_used in sorted(self.ledger.snapshot().items())
            },
            "store": dict(
                self.store.stats.to_dict(),
                entries=len(self.store),
                size_bytes=self.store.size_bytes(),
            ),
        }

    def write_manifest(self) -> Path:
        """Write ``<store>/service/manifest.json`` for this lifetime."""
        manifest = telemetry.RunManifest(
            flow="service.run",
            circuit="service",
            seed=0,
            engine="service",
            method="serve",
            limits={
                "workers": self.config.workers,
                "lanes": self.lanes,
                "exec_backend": (
                    self._cell_backend.name
                    if self._cell_backend is not None
                    else None
                ),
                "max_retries": self.config.max_retries,
                "failure_policy": self.failure_policy.value,
                "size_budget_bytes": self.config.size_budget_bytes,
                "tenant_quota_bytes": self.config.tenant_quota_bytes,
            },
            stats={
                "failed": self.stats.failed,
                "rejected": self.stats.rejected,
                "evicted": self.stats.evicted,
            },
            service=self.service_section(),
        ).validate()
        path = self.store.root / "service" / "manifest.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.parent / (path.name + ".tmp")
        temp.write_text(manifest.to_json(indent=2) + "\n", encoding="utf-8")
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._handle(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to salvage
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await reader.readline()
        if not line:
            return
        try:
            request = validate_request(decode_line(line))
        except ProtocolError as exc:
            await self._send(
                writer,
                {"event": EVENT_ERROR, "code": "protocol", "error": str(exc)},
            )
            return
        op = request["op"]
        telemetry.incr(f"service.op.{op}")
        if op == OP_SUBMIT:
            await self._handle_submit(request, writer)
        elif op == OP_STATUS:
            await self._send(writer, self._status_event())
        elif op == OP_SHUTDOWN:
            await self._send(writer, {"event": EVENT_BYE})
            self.request_stop()

    async def _send(
        self, writer: asyncio.StreamWriter, event: Dict[str, Any]
    ) -> None:
        writer.write(encode_line(event))
        await writer.drain()

    def _status_event(self) -> Dict[str, Any]:
        return {
            "event": EVENT_STATUS,
            "schema": PROTOCOL_SCHEMA,
            "stats": self.stats.to_dict(),
            "store": {
                "entries": len(self.store),
                "size_bytes": self.store.size_bytes(),
                "stats": self.store.stats.to_dict(),
            },
            "tenants": dict(sorted(self.ledger.snapshot().items())),
            "inflight": len(self._inflight),
            "queued": self.scheduler.queued(),
            "lanes": self.lanes,
            "uptime_s": self.uptime_s(),
        }

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    async def _handle_submit(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        tenant = request.get("tenant", DEFAULT_TENANT)
        return_payloads = bool(request.get("return_payloads", False))
        priority = int(request.get("priority", DEFAULT_PRIORITY))
        try:
            spec = CampaignSpec.from_dict(request["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            self.stats.rejected += 1
            telemetry.incr("service.rejected")
            await self._send(
                writer,
                {"event": EVENT_ERROR, "code": "bad_spec", "error": str(exc)},
            )
            return
        quota = self.config.tenant_quota_bytes
        used = self.ledger.usage(tenant)
        if quota is not None and used >= quota:
            self.stats.rejected += 1
            telemetry.incr("service.quota.rejected")
            await self._send(
                writer,
                {
                    "event": EVENT_ERROR,
                    "code": "quota",
                    "error": (
                        f"tenant {tenant!r} is over its store quota "
                        f"({used} of {quota} bytes charged)"
                    ),
                    "tenant": tenant,
                    "used_bytes": used,
                    "quota_bytes": quota,
                },
            )
            return

        job_id = f"job-{self._jobs_seq:06d}"
        self._jobs_seq += 1
        self.stats.jobs += 1
        telemetry.incr("service.jobs")
        loop = asyncio.get_running_loop()
        # Expansion and key hashing build circuits — off the event loop.
        cells, skipped = await loop.run_in_executor(None, spec.expand)
        keyed: List[Tuple[CampaignCell, str]] = await loop.run_in_executor(
            None,
            lambda: [
                (cell, cell_cache_key(cell, spec.params)) for cell in cells
            ],
        )
        self.stats.cells += len(keyed)
        await self._send(
            writer,
            {
                "event": EVENT_ACCEPTED,
                "job_id": job_id,
                "tenant": tenant,
                "campaign": spec.name,
                "cells": len(keyed),
                "skipped": len(skipped),
                "priority": priority,
            },
        )

        # Schedule every cell up-front so duplicates inside *and across*
        # jobs collapse onto one in-flight execution, then stream each
        # result in deterministic spec order as it completes.  Keys stay
        # pinned (per job) from scheduling until their event is on the
        # wire, so an LRU pass can never evict an in-flight artifact.
        slots = [
            self._ensure_cell(key, cell, spec.params, tenant, priority)
            for cell, key in keyed
        ]
        job_hits = job_misses = job_shared = job_failed = 0
        aborted = False
        unpinned = set()
        try:
            for index, ((cell, key), (future, shared)) in enumerate(
                zip(keyed, slots)
            ):
                if aborted:
                    continue
                payload, cached, failure = await asyncio.shield(future)
                event: Dict[str, Any] = {
                    "event": EVENT_CELL,
                    "job_id": job_id,
                    "seq": index,
                    "of": len(keyed),
                    "cell_id": cell.cell_id,
                    "key": key,
                    "cached": cached,
                    "shared": shared,
                }
                if failure is not None:
                    job_failed += 1
                    event["status"] = "failed"
                    event["failure"] = failure.to_dict()
                    if self.failure_policy is FailurePolicy.RAISE:
                        aborted = True
                else:
                    event["status"] = "ok"
                    event["stats"] = payload["stats"]
                    if return_payloads:
                        event["payload"] = payload
                    if shared:
                        job_shared += 1
                    elif cached:
                        job_hits += 1
                    else:
                        job_misses += 1
                await self._send(writer, event)
                self.store.unpin(key)
                unpinned.add(index)
        finally:
            # Aborted jobs (raise policy / dead client) must still drop
            # the pins of every cell that never got streamed.
            for index, (_, key) in enumerate(keyed):
                if index not in unpinned:
                    self.store.unpin(key)
        await self._send(
            writer,
            {
                "event": EVENT_DONE,
                "job_id": job_id,
                "tenant": tenant,
                "cells": len(keyed),
                "hits": job_hits,
                "misses": job_misses,
                "shared": job_shared,
                "failed": job_failed,
                "aborted": aborted,
                "tenant_bytes": self.ledger.usage(tenant),
            },
        )

    def _ensure_cell(
        self,
        key: str,
        cell: CampaignCell,
        params: Dict[str, Any],
        tenant: str,
        priority: int = DEFAULT_PRIORITY,
    ) -> Tuple["asyncio.Future[Any]", bool]:
        """The future resolving ``key``; shared when already in flight."""
        self.store.pin(key)
        future = self._inflight.get(key)
        if future is not None:
            telemetry.incr("service.cell.shared")
            self.stats.shared += 1
            return future, True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.scheduler.push(
            tenant, priority, (key, cell, dict(params), tenant, future)
        )
        self._idle.clear()
        self._work.set()
        return future, False

    # ------------------------------------------------------------------
    # Execution lanes
    # ------------------------------------------------------------------
    async def _lane(self, lane_index: int) -> None:
        """One execution lane: drain the fair-share scheduler forever.

        Scheduler pops and the busy/idle bookkeeping all happen on the
        event-loop thread (no awaits in between), so N lanes never race
        on the scheduler; only the cell execution itself leaves the
        loop, via the lane's executor thread.
        """
        loop = asyncio.get_running_loop()
        while True:
            entry = self.scheduler.pop()
            if entry is None:
                if self._busy_lanes == 0:
                    self._idle.set()
                self._work.clear()
                await self._work.wait()
                continue
            key, cell, params, tenant, future = entry.item
            self._busy_lanes += 1
            lane_start = time.monotonic()
            try:
                try:
                    outcome = await loop.run_in_executor(
                        self._executor, self._execute, key, cell, params
                    )
                except Exception as exc:  # defensive: _execute catches
                    outcome = (
                        None,
                        False,
                        failure_record(
                            f"cell:{cell.cell_id}",
                            exc,
                            attempts=1,
                            action=self.failure_policy.value,
                            detail={"key": key, "tenant": tenant},
                        ),
                    )
                payload, cached, failure = outcome
                if failure is not None:
                    self.stats.failed += 1
                    telemetry.incr("service.cell.failed")
                elif cached:
                    self.stats.hits += 1
                    telemetry.incr("service.cell.hit")
                else:
                    self.stats.misses += 1
                    telemetry.incr("service.cell.miss")
                    self._charge(tenant, key)
                self._inflight.pop(key, None)
                if not future.done():
                    future.set_result(outcome)
            finally:
                # Deficit accounting: lane seconds drive which tenant
                # the scheduler serves next.
                self.scheduler.charge(tenant, time.monotonic() - lane_start)
                self._busy_lanes -= 1
                if self._busy_lanes == 0 and self.scheduler.queued() == 0:
                    self._idle.set()

    def _execute(
        self, key: str, cell: CampaignCell, params: Dict[str, Any]
    ) -> Tuple[Optional[Dict[str, Any]], bool, Optional[Any]]:
        """One cell, in the worker thread: store-first, retried, isolated.

        Returns ``(payload, cached, failure)`` — exactly one of
        ``payload`` / ``failure`` is set.  Any exception (a poisoned
        netlist, a flow bug) becomes a :class:`FailureRecord` after the
        retry budget; it never propagates into the daemon.
        """
        attempt = 0
        while True:
            try:
                payload = self.store.get(key, KIND_CAMPAIGN_CELL)
                if payload is not None:
                    return payload, True, None
                if self.chaos is not None:
                    self.chaos.check_poison_cell(cell.cell_id)
                    self.chaos.inject_inline(f"cell:{cell.cell_id}", attempt)
                payload = self._execute_cold(key, cell, params)
                self.store.put(key, KIND_CAMPAIGN_CELL, payload)
                return payload, False, None
            except Exception as exc:
                if attempt < self.retry.max_retries:
                    telemetry.incr("service.cell.retry")
                    self.retry.wait(f"cell:{cell.cell_id}", attempt)
                    attempt += 1
                    continue
                return (
                    None,
                    False,
                    failure_record(
                        f"cell:{cell.cell_id}",
                        exc,
                        attempts=attempt + 1,
                        action=self.failure_policy.value,
                        detail={"cell_id": cell.cell_id, "key": key},
                    ),
                )

    def _execute_cold(
        self, key: str, cell: CampaignCell, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run one cold cell; in a process backend when lanes demand it.

        With one lane (or no process backend) the cell runs right here
        in the lane thread, exactly as PR 8 did.  With multiple lanes
        the cell ships to a fork/spawn child so concurrent cold cells
        use real cores; the child captures its own telemetry and the
        counters are replayed here (the exec fold-back contract — the
        lane thread is outside the connection's capture context
        anyway, so counters land in the process-global base either
        way).  A child failure re-raises into the caller's retry loop.
        """
        backend = self._cell_backend
        if backend is None:
            result = execute_cell(
                cell,
                params,
                workers=self.config.workers,
                key=key,
                backend=self.config.exec_backend,
            )
            return encode_cell_result(result)
        outcome = backend.map(
            _cold_cell_task,
            (cell, dict(params), self.config.workers, key,
             self.config.exec_backend),
            [0],
            workers=1,
            policy=SupervisionPolicy(retry=RetryPolicy(max_retries=0)),
        )
        if 0 in outcome.results:
            payload, counters = outcome.results[0]
            for name, value in counters.items():
                telemetry.incr(name, value)
            return payload
        failure = outcome.failed[0]
        raise CellExecutionError(
            f"{failure.error}: {failure.message} "
            f"(kind={failure.kind}, backend={backend.name})"
        )

    def _charge(self, tenant: str, key: str) -> None:
        """Charge a cold artifact's bytes to the tenant that caused it."""
        try:
            size = self.store.path_for(key).stat().st_size
        except OSError:
            size = 0
        self.ledger.charge(tenant, size)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
async def _amain(config: ServiceConfig, chaos: Optional[ChaosConfig]) -> int:
    service = CampaignService(config, chaos=chaos)
    host, port = await service.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.request_stop)
        except NotImplementedError:  # non-POSIX event loops
            pass
    print(
        f"[serve] listening on {host}:{port} "
        f"store={service.store.root} pid={os.getpid()}",
        flush=True,
    )
    await service.serve_until_stopped()
    stats = service.stats
    print(
        f"[serve] drained: jobs={stats.jobs} cells={stats.cells} "
        f"hits={stats.hits} misses={stats.misses} shared={stats.shared} "
        f"failed={stats.failed} rejected={stats.rejected}",
        flush=True,
    )
    return 0


def run_service(
    config: ServiceConfig, chaos: Optional[ChaosConfig] = None
) -> int:
    """Run the daemon until SIGTERM/SIGINT/shutdown; returns exit code."""
    try:
        return asyncio.run(_amain(config, chaos))
    except KeyboardInterrupt:
        return 0
