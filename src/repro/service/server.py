"""The multi-tenant campaign daemon: ``python -m repro serve``.

The paper's economics only pay off when fault grading is cheap enough
to run *constantly* — which means a long-lived shared service, not a
per-developer CLI invocation.  :class:`CampaignService` is that
service: an asyncio job-queue daemon in front of the content-addressed
:class:`~repro.store.ResultStore`.

Architecture (one process, one event loop):

* **Connections** — each client connection carries one request
  (:mod:`repro.service.protocol`) and gets a stream of JSON-line
  events back.  Submissions expand a :class:`~repro.campaign.spec.
  CampaignSpec` into cells; every cell streams back as soon as it
  finishes, in deterministic spec order.
* **Jobs outlive connections** — a submission becomes a :class:`Job`:
  an event buffer filled by a detached ``_run_job`` task, with every
  event carrying a job-scoped strictly-increasing ``seq`` (``accepted``
  is 0, cells 1..N, ``done`` N+1).  The connection merely *streams*
  that buffer; a dropped connection loses nothing, and the protocol-v3
  ``resume`` op re-attaches to the buffer after the client's last-seen
  ``seq`` — exact, no duplicates, no gaps.
* **Crash safety (journal-before-ack)** — every accepted job is
  appended to ``<store>/jobs.jsonl``
  (:class:`~repro.service.journal.JobJournal`) *before* the
  ``accepted`` event goes on the wire.  A daemon SIGKILLed mid-job
  replays the journal on restart and re-enqueues each open job through
  the scheduler; cells that finished before the crash are
  content-addressed store hits, so recovery only re-pays the work the
  crash actually lost, and a resuming client sees the identical
  deterministic event order.  Replay tolerates a torn final journal
  line (skip + count); an outright unreadable journal makes ``serve``
  exit with code 3 rather than run with recovery silently broken.
* **Dedupe through ``cache_key``** — a cell's identity is its content
  address.  Before scheduling, the server consults the *in-flight
  table*: if another tenant's identical cell is already executing, the
  new job attaches to the same :class:`asyncio.Future` (``shared``),
  paying zero additional work; if the store already holds the
  artifact, the job gets a warm ``hit``.  Only genuinely novel cells
  become cold ``miss`` executions.
* **N execution lanes, fair-share scheduled** — ``--lanes N`` runs N
  concurrent lane tasks, each draining the
  :class:`~repro.service.scheduler.FairShareScheduler` (per-tenant
  deficit round-robin over per-tenant priority queues, so one tenant's
  bulk campaign cannot starve another's interactive submission; the
  optional protocol-v2 ``priority`` field biases order within a
  tenant).  Lane telemetry is safe because
  :func:`repro.telemetry.capture` is contextvar-scoped and re-entrant
  across threads.  With more than one lane, cold cells execute in a
  :mod:`repro.exec` *process* backend (fork where available, else
  spawn) so lanes actually overlap on CPU-bound work instead of
  serializing on the GIL — store hits stay in the lane thread, where
  they overlap on I/O.  Intra-cell parallelism still comes from the
  sharded executor (``workers=N`` per cell).
* **Tenant isolation** — a poisoned netlist fails *its* cell: the
  failure is retried per :class:`~repro.resilience.RetryPolicy`, then
  recorded as a :class:`~repro.resilience.FailureRecord` and streamed
  to the waiting job(s) while the queue moves on
  (:class:`~repro.resilience.FailurePolicy` ``quarantine``, the
  daemon default).  Under ``raise`` the *job* aborts after the failed
  cell — the daemon itself never dies on tenant input.
* **Store lifecycle** — the store runs under a
  :class:`~repro.store.LifecyclePolicy`: every cold put may trigger an
  LRU pass, but keys of scheduled/streaming cells are *pinned*, so an
  in-flight job can never lose its own artifacts to eviction.
* **Quotas** — cold executions charge their artifact bytes to the
  submitting tenant; a tenant at or over ``tenant_quota_bytes`` has
  further submissions rejected (cache hits are free — shared results
  are the whole point).  Charges are journaled to
  ``<store>/tenants.jsonl`` (:class:`~repro.service.accounting.
  TenantLedger`) and replayed on start, so quotas survive daemon
  restarts.
* **Daemon chaos** — a :class:`~repro.resilience.ChaosConfig` can turn
  the service's own failure modes on, seeded: abort a client
  connection mid-stream (``drop_client_rate``; the client resumes),
  kill or hang a lane's cell worker (``lane_kill_rate`` /
  ``lane_hang_rate``; one retry-budget attempt, charged once),
  SIGKILL the whole daemon after N cold cells
  (``daemon_kill_after_cells``; restart recovery replays the
  journal), and tear the journal tail mid-append
  (``corrupt_journal_rate``; replay skips it).  Chaos runs must end
  byte-identical to clean runs — that is what the recovery tests
  assert.

On shutdown (SIGTERM/SIGINT or the ``shutdown`` op) the daemon stops
accepting, drains its queue so no client is cut off mid-stream, and
writes a validated :class:`~repro.telemetry.RunManifest` with a
``service`` section to ``<store>/service/manifest.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import telemetry
from ..campaign.runner import cell_cache_key, encode_cell_result, execute_cell
from ..campaign.spec import CampaignCell, CampaignSpec
from ..exec.backends import ExecutorBackend, create_backend
from ..resilience import ChaosConfig, FailurePolicy, RetryPolicy, failure_record
from ..resilience.supervisor import SupervisionPolicy
from ..store import KIND_CAMPAIGN_CELL, LifecyclePolicy, ResultStore
from .accounting import TenantLedger
from .journal import JobJournal
from .scheduler import FairShareScheduler
from .protocol import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    MAX_LINE_BYTES,
    OP_RESUME,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_SUBMIT,
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    validate_request,
)

__all__ = [
    "ServiceConfig",
    "ServiceStats",
    "Job",
    "CampaignService",
    "run_service",
]


class CellExecutionError(Exception):
    """A cold cell failed inside a process backend (crash/hang/raise)."""


def _cold_cell_task(
    payload: Tuple[
        CampaignCell, Dict[str, Any], int, str, Optional[str],
        Optional[ChaosConfig], int,
    ],
    task: int,
    attempt: int,
) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """Backend task: run one cold cell in a child process.

    Module-level so the spawn backend can pickle it.  The child runs
    under its own :func:`telemetry.capture` and returns the counters
    alongside the encoded payload — the parent lane replays them (the
    exec fold-back contract; child-process counters would otherwise
    vanish with the child).  Lane chaos (worker kill/hang) is shipped
    in the payload and injected *here*, in the child, with the lane's
    retry attempt — never in the daemon process.
    """
    del task, attempt  # one cell per map call; retries live in the lane
    (cell, params, workers, key, backend_spec, chaos, lane_attempt) = payload
    if chaos is not None:
        chaos.inject_lane_worker(f"cell:{cell.cell_id}", lane_attempt)
    with telemetry.capture() as session:
        result = execute_cell(
            cell, params, workers=workers, key=key, backend=backend_spec
        )
        encoded = encode_cell_result(result)
        counters = dict(session.counters)
    return encoded, counters


@dataclass
class ServiceConfig:
    """Everything one daemon instance needs to know."""

    store_root: Union[str, Path] = ".repro-store"
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; discover via the ready file
    workers: int = 1  # per-cell sharding (execute_cell workers=N)
    lanes: int = 1  # concurrent execution lanes (fair-share scheduled)
    exec_backend: Optional[str] = None  # repro.exec backend; None = auto
    max_retries: int = 0
    failure_policy: Union[str, FailurePolicy] = FailurePolicy.QUARANTINE
    size_budget_bytes: Optional[int] = None
    index_max_bytes: int = 1 << 20
    quarantine_max_files: int = 64
    quarantine_max_age_s: Optional[float] = None
    tenant_quota_bytes: Optional[int] = None
    ready_file: Optional[Union[str, Path]] = None
    drain_timeout_s: float = 120.0
    #: Journal accepted jobs to <store>/jobs.jsonl (journal-before-ack)
    #: and recover open jobs on start.  Off = session-local jobs only.
    job_journal: bool = True
    journal_max_bytes: int = 1 << 20
    #: Finished jobs kept resumable (event buffers retained).  Open
    #: jobs are never evicted from the resume table.
    job_history: int = 64
    #: Per-attempt wall-clock bound for a cold cell in a process
    #: backend (supervision timeout — how hung lane workers die).
    #: None = unbounded; inline execution cannot be deadlined.
    cell_deadline_s: Optional[float] = None

    def lifecycle(self) -> LifecyclePolicy:
        """The store lifecycle policy this config implies."""
        return LifecyclePolicy(
            size_budget_bytes=self.size_budget_bytes,
            index_max_bytes=self.index_max_bytes,
            quarantine_max_files=self.quarantine_max_files,
            quarantine_max_age_s=self.quarantine_max_age_s,
        )


@dataclass
class ServiceStats:
    """One daemon lifetime's traffic counters.

    ``cells`` counts requested cell-slots across all jobs; of those,
    ``hits`` were served from disk, ``misses`` were computed cold,
    ``shared`` attached to an already-in-flight identical execution,
    and ``failed`` failed permanently.  ``hits + misses + failed`` is
    the number of actual executions; ``shared / cells`` is the dedupe
    ratio concurrent duplicate traffic achieved on top of the store.
    ``recovered`` jobs were replayed from the journal on start,
    ``resumed`` counts ``resume`` re-attachments, ``retries`` counts
    per-cell re-attempts, and ``dropped`` counts chaos-aborted client
    connections.
    """

    jobs: int = 0
    cells: int = 0
    hits: int = 0
    misses: int = 0
    shared: int = 0
    failed: int = 0
    rejected: int = 0
    evicted: int = 0
    recovered: int = 0
    resumed: int = 0
    retries: int = 0
    dropped: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe copy for status events and the service manifest."""
        return asdict(self)


class Job:
    """One accepted submission, decoupled from any connection.

    The job's ``_run_job`` task appends events (each stamped with the
    next ``seq``) to :attr:`events` and notifies :attr:`cond`; any
    number of streamers — the submitting connection, later ``resume``
    connections — replay the buffer from their own offset and then
    follow live.  The buffer is the resume source of truth, so it is
    retained after :attr:`finished` until the job ages out of the
    daemon's bounded history.
    """

    __slots__ = (
        "job_id", "tenant", "priority", "return_payloads", "spec",
        "recovered", "events", "next_seq", "finished", "drops", "cond",
        "task",
    )

    def __init__(
        self,
        job_id: str,
        tenant: str,
        priority: int,
        return_payloads: bool,
        spec: Dict[str, Any],
        recovered: bool = False,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.priority = priority
        self.return_payloads = return_payloads
        self.spec = spec
        self.recovered = recovered
        self.events: List[Dict[str, Any]] = []
        self.next_seq = 0
        self.finished = False
        #: How often a streamer of this job was chaos-dropped — feeds
        #: ChaosConfig.decide_drop_client so first_attempt_only chaos
        #: never re-drops the post-resume replay of the same event.
        self.drops = 0
        self.cond: Optional[asyncio.Condition] = None
        self.task: Optional["asyncio.Task[None]"] = None


class CampaignService:
    """Asyncio job-queue daemon over one shared :class:`ResultStore`."""

    def __init__(
        self,
        config: ServiceConfig,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.config = config
        self.chaos = chaos
        self.store = ResultStore(config.store_root, config.lifecycle())
        self.failure_policy = FailurePolicy.coerce(config.failure_policy)
        self.retry = RetryPolicy(max_retries=max(0, config.max_retries))
        self.stats = ServiceStats()
        self.lanes = max(1, int(config.lanes))
        # Satellite: per-tenant accounting survives restarts — the
        # ledger replays <store>/tenants.jsonl on construction.
        self.ledger = TenantLedger(self.store.root)
        # Crash safety: replay <store>/jobs.jsonl now (raises
        # JobJournalError -> serve exit code 3 if unreadable); open
        # jobs found here are re-enqueued in start().
        self.journal = JobJournal(
            self.store.root,
            max_bytes=config.journal_max_bytes,
            enabled=config.job_journal,
            chaos=chaos,
        )
        self.scheduler = FairShareScheduler()
        self.address: Optional[Tuple[str, int]] = None
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        #: Every resumable job (open + bounded finished history).
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._job_tasks: set = set()
        # Created in start(): on 3.9 these primitives bind to the loop
        # that exists at construction time, which must be the running
        # one or every await dies with "attached to a different loop".
        self._work: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._lane_tasks: List["asyncio.Task[None]"] = []
        self._busy_lanes = 0
        self._conn_tasks: set = set()
        # One executor thread per lane; lanes overlap on store I/O, and
        # cold cells escape the GIL through a process backend when
        # lanes > 1 (see _cold_backend).
        self._executor = ThreadPoolExecutor(
            max_workers=self.lanes, thread_name_prefix="repro-serve"
        )
        self._cell_backend: Optional[ExecutorBackend] = None
        # Job numbering continues across restarts (journal watermark),
        # so a recovered daemon never reuses a journaled job_id.
        self._jobs_seq = self.journal.next_job_number
        self._cold_done = 0  # chaos: daemon_kill_after_cells counter
        self._started_monotonic = 0.0

    @property
    def tenant_bytes(self) -> Dict[str, int]:
        """Per-tenant charged bytes (live view of the durable ledger)."""
        return self.ledger.tenant_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start the lanes, recover journaled jobs, write ready.

        Recovery happens *before* the ready file appears: a client that
        waited for readiness can immediately ``resume`` a job the
        previous daemon lifetime accepted.
        """
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stop = asyncio.Event()
        if self.lanes > 1:
            # Lanes must not serialize on the GIL for cold (CPU-bound)
            # cells: dispatch those into a process backend.  When no
            # process backend exists the lanes still overlap store I/O.
            self._cell_backend = self._resolve_cell_backend()
        # Recover journaled jobs *before* the socket binds: on a fixed
        # port a resuming client may connect the instant the port is
        # live, and it must find its job registered, not unknown_job.
        for record in list(self.journal.open_jobs.values()):
            job = Job(
                record["job_id"],
                record["tenant"],
                record["priority"],
                record["return_payloads"],
                record["spec"],
                recovered=True,
            )
            self._jobs[job.job_id] = job
            self.stats.recovered += 1
            telemetry.incr("service.job.recovered")
            self._spawn_job(job)
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._lane_tasks = [
            asyncio.ensure_future(self._lane(index))
            for index in range(self.lanes)
        ]
        self._started_monotonic = time.monotonic()
        if self.config.ready_file:
            self._write_ready_file()
        return self.address

    def _resolve_cell_backend(self) -> Optional[ExecutorBackend]:
        """A process backend for cold cells, or None (inline in lane).

        Auto-selection (``exec_backend=None``) also requires >= 2
        cores: process dispatch exists to put lanes on separate cores,
        and on a single-core machine it is pure fork/pickle overhead.
        An explicitly named backend is honored regardless.
        """
        explicit = self.config.exec_backend is not None
        if not explicit and (os.cpu_count() or 1) < 2:
            return None
        backend = create_backend(self.config.exec_backend)
        if not backend.isolated:
            # inline / thread-lane cannot escape the GIL for CPU-bound
            # cell execution; run cells directly in the lane thread.
            return None
        if not type(backend).available():
            return None
        return backend

    def _write_ready_file(self) -> None:
        host, port = self.address
        payload = {
            "schema": PROTOCOL_SCHEMA,
            "host": host,
            "port": port,
            "pid": os.getpid(),
            "store": str(self.store.root),
        }
        path = Path(self.config.ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.parent / (path.name + ".tmp")
        temp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(temp, path)

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def serve_until_stopped(self) -> None:
        """Block until a stop request, then shut down gracefully.

        Graceful means: stop accepting, let queued executions, job
        tasks, and open response streams finish (bounded by
        ``drain_timeout_s``), then write the service manifest.  A job
        still unfinished past the timeout stays *open in the journal*,
        so the next daemon lifetime recovers it.
        """
        await self._stop.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            pass
        if self._job_tasks:
            await asyncio.wait(
                list(self._job_tasks), timeout=self.config.drain_timeout_s
            )
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout_s
            )
        for task in list(self._job_tasks) + self._lane_tasks:
            task.cancel()
        for task in list(self._job_tasks) + self._lane_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._executor.shutdown(wait=True)
        if self._cell_backend is not None:
            self._cell_backend.close()
        self.write_manifest()
        if self.config.ready_file:
            try:
                os.unlink(self.config.ready_file)
            except OSError:
                pass

    def uptime_s(self) -> float:
        """Seconds since :meth:`start`."""
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # Service manifest
    # ------------------------------------------------------------------
    def service_section(self) -> Dict[str, Any]:
        """The validated ``service`` manifest section for this lifetime."""
        return {
            "jobs": self.stats.jobs,
            "cells": self.stats.cells,
            "dedupe": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "shared": self.stats.shared,
            },
            "tenants": {
                tenant: bytes_used
                for tenant, bytes_used in sorted(self.ledger.snapshot().items())
            },
            "store": dict(
                self.store.stats.to_dict(),
                entries=len(self.store),
                size_bytes=self.store.size_bytes(),
            ),
            "recovery": {
                "recovered": self.stats.recovered,
                "resumed": self.stats.resumed,
                "retries": self.stats.retries,
                "dropped": self.stats.dropped,
                "journal": self.journal.stats_dict(),
            },
        }

    def write_manifest(self) -> Path:
        """Write ``<store>/service/manifest.json`` for this lifetime."""
        manifest = telemetry.RunManifest(
            flow="service.run",
            circuit="service",
            seed=0,
            engine="service",
            method="serve",
            limits={
                "workers": self.config.workers,
                "lanes": self.lanes,
                "exec_backend": (
                    self._cell_backend.name
                    if self._cell_backend is not None
                    else None
                ),
                "max_retries": self.config.max_retries,
                "failure_policy": self.failure_policy.value,
                "size_budget_bytes": self.config.size_budget_bytes,
                "tenant_quota_bytes": self.config.tenant_quota_bytes,
            },
            stats={
                "failed": self.stats.failed,
                "rejected": self.stats.rejected,
                "evicted": self.stats.evicted,
            },
            service=self.service_section(),
        ).validate()
        path = self.store.root / "service" / "manifest.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.parent / (path.name + ".tmp")
        temp.write_text(manifest.to_json(indent=2) + "\n", encoding="utf-8")
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._handle(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; the job keeps running
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            # Request line exceeded MAX_LINE_BYTES: the reader buffer
            # is unusable, but the connection is ours — answer with a
            # structured error instead of dying or going silent.
            telemetry.incr("service.protocol.oversized")
            await self._send(
                writer,
                {
                    "event": EVENT_ERROR,
                    "code": "protocol",
                    "error": (
                        f"request line exceeds {MAX_LINE_BYTES} bytes"
                    ),
                },
            )
            return
        if not line:
            return
        try:
            request = validate_request(decode_line(line))
        except ProtocolError as exc:
            telemetry.incr("service.protocol.rejected")
            await self._send(
                writer,
                {"event": EVENT_ERROR, "code": "protocol", "error": str(exc)},
            )
            return
        op = request["op"]
        telemetry.incr(f"service.op.{op}")
        if op == OP_SUBMIT:
            await self._handle_submit(request, writer)
        elif op == OP_RESUME:
            await self._handle_resume(request, writer)
        elif op == OP_STATUS:
            await self._send(writer, self._status_event())
        elif op == OP_SHUTDOWN:
            await self._send(writer, {"event": EVENT_BYE})
            self.request_stop()

    async def _send(
        self, writer: asyncio.StreamWriter, event: Dict[str, Any]
    ) -> None:
        writer.write(encode_line(event))
        await writer.drain()

    def _status_event(self) -> Dict[str, Any]:
        return {
            "event": EVENT_STATUS,
            "schema": PROTOCOL_SCHEMA,
            "stats": self.stats.to_dict(),
            "store": {
                "entries": len(self.store),
                "size_bytes": self.store.size_bytes(),
                "stats": self.store.stats.to_dict(),
            },
            "tenants": dict(sorted(self.ledger.snapshot().items())),
            "inflight": len(self._inflight),
            "queued": self.scheduler.queued(),
            "lanes": self.lanes,
            "jobs_open": sum(
                1 for job in self._jobs.values() if not job.finished
            ),
            "journal": self.journal.stats_dict(),
            "uptime_s": self.uptime_s(),
        }

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    async def _handle_submit(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        tenant = request.get("tenant", DEFAULT_TENANT)
        return_payloads = bool(request.get("return_payloads", False))
        priority = int(request.get("priority", DEFAULT_PRIORITY))
        spec_dict = request["spec"]
        try:
            CampaignSpec.from_dict(spec_dict)
        except (KeyError, TypeError, ValueError) as exc:
            self.stats.rejected += 1
            telemetry.incr("service.rejected")
            await self._send(
                writer,
                {"event": EVENT_ERROR, "code": "bad_spec", "error": str(exc)},
            )
            return
        quota = self.config.tenant_quota_bytes
        used = self.ledger.usage(tenant)
        if quota is not None and used >= quota:
            self.stats.rejected += 1
            telemetry.incr("service.quota.rejected")
            await self._send(
                writer,
                {
                    "event": EVENT_ERROR,
                    "code": "quota",
                    "error": (
                        f"tenant {tenant!r} is over its store quota "
                        f"({used} of {quota} bytes charged)"
                    ),
                    "tenant": tenant,
                    "used_bytes": used,
                    "quota_bytes": quota,
                },
            )
            return

        number = self._jobs_seq
        self._jobs_seq += 1
        job = Job(
            f"job-{number:06d}", tenant, priority, return_payloads, spec_dict
        )
        self._jobs[job.job_id] = job
        self.stats.jobs += 1
        telemetry.incr("service.jobs")
        # Journal-before-ack: the job must be durable before the client
        # can possibly learn its job_id — an acked job_id is always
        # recoverable (or the journal is off and the client knows the
        # daemon runs session-local).
        self.journal.record_accepted(
            job.job_id, number, tenant, priority, return_payloads, spec_dict
        )
        self._spawn_job(job)
        await self._stream_job(job, writer, after_seq=-1)

    async def _handle_resume(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self._jobs.get(request["job_id"])
        if job is None:
            telemetry.incr("service.resume.unknown")
            await self._send(
                writer,
                {
                    "event": EVENT_ERROR,
                    "code": "unknown_job",
                    "error": (
                        f"unknown job_id {request['job_id']!r} (never "
                        "accepted, aged out of history, or lost with a "
                        "torn journal tail)"
                    ),
                    "job_id": request["job_id"],
                },
            )
            return
        self.stats.resumed += 1
        telemetry.incr("service.resumed")
        await self._stream_job(
            job, writer, after_seq=int(request.get("after_seq", -1))
        )

    # ------------------------------------------------------------------
    # Jobs (detached from connections)
    # ------------------------------------------------------------------
    def _spawn_job(self, job: Job) -> None:
        """Start the job's detached runner task and track it for drain."""
        job.cond = asyncio.Condition()
        job.task = asyncio.ensure_future(self._run_job(job))
        self._job_tasks.add(job.task)
        job.task.add_done_callback(self._job_tasks.discard)

    async def _emit(self, job: Job, event: Dict[str, Any]) -> None:
        """Stamp the next seq on ``event``, buffer it, wake streamers."""
        event["seq"] = job.next_seq
        job.next_seq += 1
        job.events.append(event)
        async with job.cond:
            job.cond.notify_all()

    async def _finish_job(self, job: Job) -> None:
        """Mark the job terminal and retire the oldest finished jobs."""
        job.finished = True
        async with job.cond:
            job.cond.notify_all()
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > max(0, self.config.job_history):
            oldest = self._finished_order.pop(0)
            retired = self._jobs.get(oldest)
            if retired is not None and retired.finished:
                del self._jobs[oldest]

    async def _run_job(self, job: Job) -> None:
        """Execute one job into its event buffer, no connection needed.

        This is the only writer of ``job.events``; it journals the job
        ``done`` after the terminal event is buffered, so a crash at
        any earlier point leaves the job open for the next lifetime.
        """
        loop = asyncio.get_running_loop()
        keyed: List[Tuple[CampaignCell, str]] = []
        try:
            try:
                spec = CampaignSpec.from_dict(job.spec)
                # Expansion and key hashing build circuits — off the loop.
                cells, skipped = await loop.run_in_executor(None, spec.expand)
                keyed = await loop.run_in_executor(
                    None,
                    lambda: [
                        (cell, cell_cache_key(cell, spec.params))
                        for cell in cells
                    ],
                )
            except Exception as exc:
                # Unreachable for submissions (spec pre-validated);
                # guards recovery of a journal written by a newer/older
                # daemon whose spec no longer parses.
                await self._emit(
                    job,
                    {
                        "event": EVENT_ERROR,
                        "code": "bad_spec",
                        "error": str(exc),
                        "job_id": job.job_id,
                    },
                )
                self.journal.record_done(job.job_id)
                return
            self.stats.cells += len(keyed)
            await self._emit(
                job,
                {
                    "event": EVENT_ACCEPTED,
                    "job_id": job.job_id,
                    "tenant": job.tenant,
                    "campaign": spec.name,
                    "cells": len(keyed),
                    "skipped": len(skipped),
                    "priority": job.priority,
                    "recovered": job.recovered,
                },
            )
            # Schedule every cell up-front so duplicates inside *and
            # across* jobs collapse onto one in-flight execution, then
            # buffer each result in deterministic spec order as it
            # completes.  Keys stay pinned (per job) from scheduling
            # until their event is buffered, so an LRU pass can never
            # evict an in-flight artifact.
            slots = [
                self._ensure_cell(
                    key, cell, spec.params, job.tenant, job.priority
                )
                for cell, key in keyed
            ]
            job_hits = job_misses = job_shared = job_failed = 0
            aborted = False
            unpinned = set()
            try:
                for index, ((cell, key), (future, shared)) in enumerate(
                    zip(keyed, slots)
                ):
                    if aborted:
                        continue
                    payload, cached, failure = await asyncio.shield(future)
                    event: Dict[str, Any] = {
                        "event": EVENT_CELL,
                        "job_id": job.job_id,
                        "index": index,
                        "of": len(keyed),
                        "cell_id": cell.cell_id,
                        "key": key,
                        "cached": cached,
                        "shared": shared,
                    }
                    if failure is not None:
                        job_failed += 1
                        event["status"] = "failed"
                        event["failure"] = failure.to_dict()
                        if self.failure_policy is FailurePolicy.RAISE:
                            aborted = True
                    else:
                        event["status"] = "ok"
                        event["stats"] = payload["stats"]
                        if job.return_payloads:
                            event["payload"] = payload
                        if shared:
                            job_shared += 1
                        elif cached:
                            job_hits += 1
                        else:
                            job_misses += 1
                    await self._emit(job, event)
                    self.store.unpin(key)
                    unpinned.add(index)
            finally:
                # Aborted jobs (raise policy / cancelled drain) must
                # still drop the pins of every cell never buffered.
                for index, (_, key) in enumerate(keyed):
                    if index not in unpinned:
                        self.store.unpin(key)
            await self._emit(
                job,
                {
                    "event": EVENT_DONE,
                    "job_id": job.job_id,
                    "tenant": job.tenant,
                    "cells": len(keyed),
                    "hits": job_hits,
                    "misses": job_misses,
                    "shared": job_shared,
                    "failed": job_failed,
                    "aborted": aborted,
                    "tenant_bytes": self.ledger.usage(job.tenant),
                },
            )
            # Done is journaled only after the terminal event exists:
            # a crash anywhere before this line leaves the job open, so
            # the next lifetime re-runs it (hits-only) and a resuming
            # client still reaches its ``done``.
            self.journal.record_done(job.job_id)
        finally:
            await self._finish_job(job)

    async def _stream_job(
        self,
        job: Job,
        writer: asyncio.StreamWriter,
        after_seq: int,
    ) -> None:
        """Send ``job`` events with ``seq > after_seq``; follow live.

        Replays the buffer first (resume path), then waits on the
        job's condition for fresh events until the terminal event has
        been sent.  Chaos ``drop_client_rate`` bites here: the
        connection is aborted (hard RST, mid-stream) *before* a chosen
        event is sent, exactly what a flaky network does to a client.
        """
        cursor = 0
        while True:
            while cursor < len(job.events):
                event = job.events[cursor]
                cursor += 1
                if event["seq"] <= after_seq:
                    continue
                # Chaos drops are *mid-stream* only (seq >= 1): before
                # the accepted event the client holds no job_id to
                # resume with, so a pre-ack drop just forces a
                # resubmit — a different (and always-available) path.
                if (
                    self.chaos is not None
                    and event["seq"] >= 1
                    and self.chaos.decide_drop_client(
                        job.job_id, event["seq"], job.drops
                    )
                ):
                    job.drops += 1
                    self.stats.dropped += 1
                    telemetry.incr("service.chaos.dropped")
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    return
                await self._send(writer, event)
            if job.finished and cursor >= len(job.events):
                return
            async with job.cond:
                if cursor >= len(job.events) and not job.finished:
                    await job.cond.wait()

    def _ensure_cell(
        self,
        key: str,
        cell: CampaignCell,
        params: Dict[str, Any],
        tenant: str,
        priority: int = DEFAULT_PRIORITY,
    ) -> Tuple["asyncio.Future[Any]", bool]:
        """The future resolving ``key``; shared when already in flight."""
        self.store.pin(key)
        future = self._inflight.get(key)
        if future is not None:
            telemetry.incr("service.cell.shared")
            self.stats.shared += 1
            return future, True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.scheduler.push(
            tenant, priority, (key, cell, dict(params), tenant, future)
        )
        self._idle.clear()
        self._work.set()
        return future, False

    # ------------------------------------------------------------------
    # Execution lanes
    # ------------------------------------------------------------------
    async def _lane(self, lane_index: int) -> None:
        """One execution lane: drain the fair-share scheduler forever.

        Scheduler pops and the busy/idle bookkeeping all happen on the
        event-loop thread (no awaits in between), so N lanes never race
        on the scheduler; only the cell execution itself leaves the
        loop, via the lane's executor thread.
        """
        loop = asyncio.get_running_loop()
        while True:
            entry = self.scheduler.pop()
            if entry is None:
                if self._busy_lanes == 0:
                    self._idle.set()
                self._work.clear()
                await self._work.wait()
                continue
            key, cell, params, tenant, future = entry.item
            self._busy_lanes += 1
            lane_start = time.monotonic()
            try:
                try:
                    outcome, retries = await loop.run_in_executor(
                        self._executor, self._execute, key, cell, params
                    )
                except Exception as exc:  # defensive: _execute catches
                    outcome, retries = (
                        None,
                        False,
                        failure_record(
                            f"cell:{cell.cell_id}",
                            exc,
                            attempts=1,
                            action=self.failure_policy.value,
                            detail={"key": key, "tenant": tenant},
                        ),
                    ), 0
                payload, cached, failure = outcome
                self.stats.retries += retries
                if failure is not None:
                    self.stats.failed += 1
                    telemetry.incr("service.cell.failed")
                elif cached:
                    self.stats.hits += 1
                    telemetry.incr("service.cell.hit")
                else:
                    self.stats.misses += 1
                    telemetry.incr("service.cell.miss")
                    self._charge(tenant, key)
                self._inflight.pop(key, None)
                if not future.done():
                    future.set_result(outcome)
            finally:
                # Deficit accounting: lane seconds drive which tenant
                # the scheduler serves next.
                self.scheduler.charge(tenant, time.monotonic() - lane_start)
                self._busy_lanes -= 1
                if self._busy_lanes == 0 and self.scheduler.queued() == 0:
                    self._idle.set()

    def _execute(
        self, key: str, cell: CampaignCell, params: Dict[str, Any]
    ) -> Tuple[
        Tuple[Optional[Dict[str, Any]], bool, Optional[Any]], int
    ]:
        """One cell, in the worker thread: store-first, retried, isolated.

        Returns ``((payload, cached, failure), retries)`` — exactly one
        of ``payload`` / ``failure`` is set.  Any exception (a poisoned
        netlist, a flow bug, injected lane chaos) becomes a
        :class:`FailureRecord` after the retry budget; it never
        propagates into the daemon.
        """
        attempt = 0
        while True:
            try:
                payload = self.store.get(key, KIND_CAMPAIGN_CELL)
                if payload is not None:
                    return (payload, True, None), attempt
                if self.chaos is not None:
                    self.chaos.check_poison_cell(cell.cell_id)
                    self.chaos.inject_inline(f"cell:{cell.cell_id}", attempt)
                    if self._cell_backend is None:
                        # No child process to kill/hang: lane faults
                        # surface as exceptions into this retry loop.
                        self.chaos.inject_lane_inline(
                            f"cell:{cell.cell_id}", attempt
                        )
                payload = self._execute_cold(key, cell, params, attempt)
                self.store.put(key, KIND_CAMPAIGN_CELL, payload)
                self._maybe_kill_daemon()
                return (payload, False, None), attempt
            except Exception as exc:
                if attempt < self.retry.max_retries:
                    telemetry.incr("service.cell.retry")
                    self.retry.wait(f"cell:{cell.cell_id}", attempt)
                    attempt += 1
                    continue
                return (
                    None,
                    False,
                    failure_record(
                        f"cell:{cell.cell_id}",
                        exc,
                        attempts=attempt + 1,
                        action=self.failure_policy.value,
                        detail={"cell_id": cell.cell_id, "key": key},
                    ),
                ), attempt

    def _maybe_kill_daemon(self) -> None:
        """Chaos ``daemon_kill_after_cells``: SIGKILL-equivalent, now.

        Runs *after* the cold artifact hit the store, so the crash
        lands exactly between cells — the scenario restart recovery
        must turn into hits-only replay.  ``os._exit`` skips every
        drain/manifest/ready-file courtesy, like a real kill -9.
        """
        if self.chaos is None or self.chaos.daemon_kill_after_cells is None:
            return
        self._cold_done += 1
        if self._cold_done >= self.chaos.daemon_kill_after_cells:
            os._exit(137)

    def _execute_cold(
        self,
        key: str,
        cell: CampaignCell,
        params: Dict[str, Any],
        attempt: int = 0,
    ) -> Dict[str, Any]:
        """Run one cold cell; in a process backend when lanes demand it.

        With one lane (or no process backend) the cell runs right here
        in the lane thread, exactly as PR 8 did.  With multiple lanes
        the cell ships to a fork/spawn child so concurrent cold cells
        use real cores; the child captures its own telemetry and the
        counters are replayed here (the exec fold-back contract — the
        lane thread is outside the connection's capture context
        anyway, so counters land in the process-global base either
        way).  A child failure — including a chaos-killed or chaos-hung
        worker, the latter reaped by the ``cell_deadline_s``
        supervision timeout — re-raises into the caller's retry loop,
        consuming exactly one retry-budget attempt.
        """
        backend = self._cell_backend
        if backend is None:
            result = execute_cell(
                cell,
                params,
                workers=self.config.workers,
                key=key,
                backend=self.config.exec_backend,
            )
            return encode_cell_result(result)
        outcome = backend.map(
            _cold_cell_task,
            (cell, dict(params), self.config.workers, key,
             self.config.exec_backend, self.chaos, attempt),
            [0],
            workers=1,
            policy=SupervisionPolicy(
                timeout_s=self.config.cell_deadline_s,
                retry=RetryPolicy(max_retries=0),
            ),
        )
        if 0 in outcome.results:
            payload, counters = outcome.results[0]
            for name, value in counters.items():
                telemetry.incr(name, value)
            return payload
        failure = outcome.failed[0]
        raise CellExecutionError(
            f"{failure.error}: {failure.message} "
            f"(kind={failure.kind}, backend={backend.name})"
        )

    def _charge(self, tenant: str, key: str) -> None:
        """Charge a cold artifact's bytes to the tenant that caused it."""
        try:
            size = self.store.path_for(key).stat().st_size
        except OSError:
            size = 0
        self.ledger.charge(tenant, size)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
async def _amain(config: ServiceConfig, chaos: Optional[ChaosConfig]) -> int:
    service = CampaignService(config, chaos=chaos)
    host, port = await service.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.request_stop)
        except NotImplementedError:  # non-POSIX event loops
            pass
    print(
        f"[serve] listening on {host}:{port} "
        f"store={service.store.root} pid={os.getpid()} "
        f"recovered={service.stats.recovered}",
        flush=True,
    )
    await service.serve_until_stopped()
    stats = service.stats
    print(
        f"[serve] drained: jobs={stats.jobs} cells={stats.cells} "
        f"hits={stats.hits} misses={stats.misses} shared={stats.shared} "
        f"failed={stats.failed} rejected={stats.rejected} "
        f"recovered={stats.recovered} resumed={stats.resumed}",
        flush=True,
    )
    return 0


def run_service(
    config: ServiceConfig, chaos: Optional[ChaosConfig] = None
) -> int:
    """Run the daemon until SIGTERM/SIGINT/shutdown; returns exit code.

    An unreadable jobs journal (:class:`~repro.service.journal.
    JobJournalError`) propagates — ``python -m repro serve`` maps it to
    exit code 3.
    """
    try:
        return asyncio.run(_amain(config, chaos))
    except KeyboardInterrupt:
        return 0
