"""Synchronous client library for the campaign service.

:class:`ServiceClient` speaks the JSON-lines protocol
(:mod:`repro.service.protocol`) over one TCP connection per request.
It is deliberately synchronous — test code, benchmarks, and CI drive
it from plain threads, and the interesting concurrency lives in the
daemon, not the client.

Typical use::

    client = ServiceClient.from_ready_file(".repro-store/service.json")
    outcome = client.submit(spec, tenant="alice")
    for event in outcome.cells:
        print(event["cell_id"], event["status"], event["cached"])

Streaming consumers use :meth:`ServiceClient.submit_iter` to see each
cell the moment the daemon finishes it.

**Retry/resume (protocol v3).**  Pass ``resume_deadline_s`` (and
optionally a :class:`~repro.resilience.RetryPolicy`) to
:meth:`~ServiceClient.submit_iter` / :meth:`~ServiceClient.submit` and
the client survives dropped connections *and* daemon restarts: every
event carries a job-scoped ``seq``, so on a connection failure the
client reconnects (deterministic jittered backoff, bounded by a
wall-clock deadline) and sends a ``resume`` op with the job's id and
the last ``seq`` it saw.  The daemon replays everything after that —
the consumer observes one gapless stream with no duplicates, however
many times the wire (or the daemon) died in the middle.  If the drop
happens before ``accepted`` was seen there is no job to resume, so the
submit itself is resent (cheap: the store dedupes the cells).

Ready files carry the daemon ``pid``; :func:`read_ready_file` checks
the process is actually alive and raises :class:`StaleReadyFileError`
otherwise, so :func:`wait_for_ready` fails fast on the leftovers of a
SIGKILLed daemon instead of hanging out its full timeout.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..campaign.spec import CampaignSpec
from ..resilience import RetryPolicy
from .protocol import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    ProtocolError,
    decode_line,
    encode_line,
    resume_request,
    shutdown_request,
    status_request,
    submit_request,
)

__all__ = [
    "ServiceError",
    "StaleReadyFileError",
    "SubmitOutcome",
    "ServiceClient",
    "read_ready_file",
    "wait_for_ready",
]


class ServiceError(Exception):
    """A terminal ``error`` event from the daemon (or a dead daemon).

    ``code`` carries the machine-readable reason (``"quota"``,
    ``"bad_spec"``, ``"protocol"``, ``"connection"``,
    ``"unknown_job"``, ``"stale"``).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class StaleReadyFileError(ServiceError):
    """A ready file whose recorded daemon pid is no longer alive.

    The classic SIGKILL leftover: ``os._exit`` never unlinks the ready
    file, so discovery must distinguish "daemon still starting" (poll)
    from "daemon is dead" (fail fast, restart it).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, code="stale")


@dataclass
class SubmitOutcome:
    """Everything one submission streamed back, already classified."""

    accepted: Dict[str, Any]
    cells: List[Dict[str, Any]] = field(default_factory=list)
    done: Dict[str, Any] = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """The daemon-assigned job identity."""
        return self.accepted["job_id"]

    @property
    def ok(self) -> bool:
        """Did every cell complete (no failures, no abort)?"""
        return not self.done.get("failed") and not self.done.get("aborted")

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Failure records of cells that failed permanently."""
        return [
            event["failure"]
            for event in self.cells
            if event.get("status") == "failed"
        ]

    def payloads(self) -> Dict[str, Dict[str, Any]]:
        """``key -> artifact payload`` for runs submitted with payloads."""
        return {
            event["key"]: event["payload"]
            for event in self.cells
            if "payload" in event
        }


class ServiceClient:
    """One daemon endpoint; every request opens its own connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_ready_file(
        cls,
        path: Union[str, Path],
        timeout: float = 300.0,
        check_pid: bool = True,
    ) -> "ServiceClient":
        """Point a client at the daemon a ready file describes.

        Raises :class:`StaleReadyFileError` when the file's daemon pid
        is dead (``check_pid=False`` skips the liveness check).
        """
        info = read_ready_file(path, check_pid=check_pid)
        return cls(host=info["host"], port=info["port"], timeout=timeout)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def request_iter(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield every event until the daemon closes.

        A *torn* final line — the stream died mid-event, so the bytes
        stop without a newline — is a connection failure (retriable),
        not a protocol violation: it is exactly what an aborted socket
        or a SIGKILLed daemon leaves behind.
        """
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}",
                code="connection",
            ) from exc
        try:
            with sock, sock.makefile("rb") as stream:
                sock.sendall(encode_line(message))
                for line in stream:
                    if not line.endswith(b"\n"):
                        raise ServiceError(
                            f"stream from {self.host}:{self.port} was cut "
                            "mid-event (torn line)",
                            code="connection",
                        )
                    try:
                        event = decode_line(line)
                    except ProtocolError as exc:
                        raise ServiceError(str(exc), code="protocol") from exc
                    yield event
                    if event.get("event") in (EVENT_DONE, EVENT_ERROR,
                                              EVENT_STATUS, EVENT_BYE):
                        return
        except OSError as exc:
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed mid-stream: "
                f"{exc}",
                code="connection",
            ) from exc

    def _request_one(self, message: Dict[str, Any]) -> Dict[str, Any]:
        for event in self.request_iter(message):
            if event.get("event") == EVENT_ERROR:
                raise ServiceError(
                    event.get("error", "unknown error"),
                    code=event.get("code", "error"),
                )
            return event
        raise ServiceError("daemon closed the connection without replying",
                           code="connection")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit_iter(
        self,
        spec: Union[CampaignSpec, Dict[str, Any]],
        tenant: str = DEFAULT_TENANT,
        return_payloads: bool = False,
        priority: int = DEFAULT_PRIORITY,
        retry: Optional[RetryPolicy] = None,
        resume_deadline_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Submit a spec and yield events as the daemon streams them.

        ``priority`` (protocol v2) biases the daemon's fair-share
        scheduler: higher runs sooner within this tenant's share.  A
        terminal ``error`` event is raised as :class:`ServiceError`
        (with its ``code``); all other events are yielded through.

        With ``resume_deadline_s`` set (or a ``retry`` policy given)
        the stream survives connection drops and daemon restarts: each
        failure triggers a reconnect after the policy's deterministic
        jittered backoff, resuming by ``job_id`` + last-seen ``seq``
        (or resubmitting if no ``accepted`` was ever seen), until
        either ``done`` arrives or the wall-clock deadline expires.
        Events are deduplicated by ``seq``, so the caller sees each
        exactly once, in order.
        """
        spec_dict = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        message = submit_request(
            spec_dict, tenant=tenant, return_payloads=return_payloads,
            priority=priority,
        )
        if retry is None and resume_deadline_s is None:
            for event in self.request_iter(message):
                if event.get("event") == EVENT_ERROR:
                    raise ServiceError(
                        event.get("error", "unknown error"),
                        code=event.get("code", "error"),
                    )
                yield event
            return
        if retry is None:
            retry = RetryPolicy()
        if resume_deadline_s is None:
            resume_deadline_s = self.timeout
        deadline = time.monotonic() + resume_deadline_s
        job_id: Optional[str] = None
        last_seq = -1
        attempt = 0
        while True:
            request = (
                message if job_id is None else resume_request(job_id, last_seq)
            )
            try:
                saw_done = False
                for event in self.request_iter(request):
                    if event.get("event") == EVENT_ERROR:
                        raise ServiceError(
                            event.get("error", "unknown error"),
                            code=event.get("code", "error"),
                        )
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        if seq <= last_seq:
                            continue  # replayed duplicate after a resume
                        last_seq = seq
                    if event.get("event") == EVENT_ACCEPTED and job_id is None:
                        job_id = event.get("job_id")
                    yield event
                    if event.get("event") == EVENT_DONE:
                        saw_done = True
                if saw_done:
                    return
                # Clean EOF without a terminal event: the daemon (or a
                # proxy) closed on us mid-job — treat as a drop.
                raise ServiceError(
                    "stream ended before the terminal done event",
                    code="connection",
                )
            except ServiceError as exc:
                if exc.code != "connection":
                    raise
                site = f"service:{self.host}:{self.port}"
                if not retry.wait_until(site, attempt, deadline):
                    raise ServiceError(
                        f"gave up after {resume_deadline_s:.0f}s of "
                        f"reconnect attempts (job_id={job_id}, last seq "
                        f"{last_seq}): {exc}",
                        code="connection",
                    ) from exc
                attempt += 1

    def submit(
        self,
        spec: Union[CampaignSpec, Dict[str, Any]],
        tenant: str = DEFAULT_TENANT,
        return_payloads: bool = False,
        priority: int = DEFAULT_PRIORITY,
        retry: Optional[RetryPolicy] = None,
        resume_deadline_s: Optional[float] = None,
    ) -> SubmitOutcome:
        """Submit a spec and collect the full response stream."""
        accepted: Optional[Dict[str, Any]] = None
        cells: List[Dict[str, Any]] = []
        done: Dict[str, Any] = {}
        for event in self.submit_iter(
            spec, tenant=tenant, return_payloads=return_payloads,
            priority=priority, retry=retry,
            resume_deadline_s=resume_deadline_s,
        ):
            kind = event.get("event")
            if kind == EVENT_ACCEPTED:
                accepted = event
            elif kind == EVENT_CELL:
                cells.append(event)
            elif kind == EVENT_DONE:
                done = event
        if accepted is None or not done:
            raise ServiceError(
                "submission stream ended before accepted/done",
                code="connection",
            )
        return SubmitOutcome(accepted=accepted, cells=cells, done=done)

    def resume_iter(
        self, job_id: str, after_seq: int = -1
    ) -> Iterator[Dict[str, Any]]:
        """Re-attach to a job's stream after ``after_seq`` (one attempt).

        Yields the replayed-then-live events; a terminal ``error``
        (including ``unknown_job``) raises :class:`ServiceError`.
        """
        for event in self.request_iter(resume_request(job_id, after_seq)):
            if event.get("event") == EVENT_ERROR:
                raise ServiceError(
                    event.get("error", "unknown error"),
                    code=event.get("code", "error"),
                )
            yield event

    def resume(self, job_id: str, after_seq: int = -1) -> SubmitOutcome:
        """Resume a job and collect the rest of its stream.

        ``accepted`` is synthesized from ``job_id`` when the resume
        point is past the accepted event (``after_seq >= 0``).
        """
        accepted: Dict[str, Any] = {"job_id": job_id}
        cells: List[Dict[str, Any]] = []
        done: Dict[str, Any] = {}
        for event in self.resume_iter(job_id, after_seq):
            kind = event.get("event")
            if kind == EVENT_ACCEPTED:
                accepted = event
            elif kind == EVENT_CELL:
                cells.append(event)
            elif kind == EVENT_DONE:
                done = event
        if not done:
            raise ServiceError(
                "resume stream ended before done", code="connection"
            )
        return SubmitOutcome(accepted=accepted, cells=cells, done=done)

    def status(self) -> Dict[str, Any]:
        """The daemon's live counters, store stats, and tenant usage."""
        return self._request_one(status_request())

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit; returns the ``bye`` event."""
        return self._request_one(shutdown_request())


# ----------------------------------------------------------------------
# Ready-file discovery
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running (signal-0 probe)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, just not ours to signal
    except OSError:
        return True  # unknowable: err on "alive", the poll will decide
    return True


def read_ready_file(
    path: Union[str, Path], check_pid: bool = True
) -> Dict[str, Any]:
    """Parse a daemon ready file (host/port/pid/store).

    With ``check_pid`` (default) a file whose ``pid`` is no longer
    alive raises :class:`StaleReadyFileError` — a SIGKILLed daemon
    leaves its ready file behind, and connecting to its port would
    either hang or reach an unrelated process.
    """
    with open(path, "r", encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, dict) or "host" not in data or "port" not in data:
        raise ServiceError(f"malformed ready file {path}", code="protocol")
    pid = data.get("pid")
    if check_pid and isinstance(pid, int) and not _pid_alive(pid):
        raise StaleReadyFileError(
            f"ready file {path} names dead daemon pid {pid} — stale "
            "leftover of a crashed daemon; remove it and restart"
        )
    return data


def wait_for_ready(
    path: Union[str, Path],
    timeout: float = 30.0,
    interval: float = 0.05,
    check_pid: bool = True,
) -> Dict[str, Any]:
    """Poll for a daemon's ready file (daemon startup is asynchronous).

    A *missing or partial* file is polled until ``timeout`` — the
    daemon may still be starting.  A *stale* file (dead pid) fails
    fast with :class:`StaleReadyFileError` instead: no amount of
    waiting revives a SIGKILLed daemon, and the caller should restart
    it (which rewrites the ready file) rather than hang here.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return read_ready_file(path, check_pid=check_pid)
        except StaleReadyFileError:
            raise
        except (OSError, ValueError, ServiceError):
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"service ready file {path} did not appear within "
                    f"{timeout:.0f}s",
                    code="connection",
                )
            time.sleep(interval)
