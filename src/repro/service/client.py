"""Synchronous client library for the campaign service.

:class:`ServiceClient` speaks the JSON-lines protocol
(:mod:`repro.service.protocol`) over one TCP connection per request.
It is deliberately synchronous — test code, benchmarks, and CI drive
it from plain threads, and the interesting concurrency lives in the
daemon, not the client.

Typical use::

    client = ServiceClient.from_ready_file(".repro-store/service.json")
    outcome = client.submit(spec, tenant="alice")
    for event in outcome.cells:
        print(event["cell_id"], event["status"], event["cached"])

Streaming consumers use :meth:`ServiceClient.submit_iter` to see each
cell the moment the daemon finishes it.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..campaign.spec import CampaignSpec
from .protocol import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    ProtocolError,
    decode_line,
    encode_line,
    shutdown_request,
    status_request,
    submit_request,
)

__all__ = [
    "ServiceError",
    "SubmitOutcome",
    "ServiceClient",
    "read_ready_file",
    "wait_for_ready",
]


class ServiceError(Exception):
    """A terminal ``error`` event from the daemon (or a dead daemon).

    ``code`` carries the machine-readable reason (``"quota"``,
    ``"bad_spec"``, ``"protocol"``, ``"connection"``).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


@dataclass
class SubmitOutcome:
    """Everything one submission streamed back, already classified."""

    accepted: Dict[str, Any]
    cells: List[Dict[str, Any]] = field(default_factory=list)
    done: Dict[str, Any] = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        """The daemon-assigned job identity."""
        return self.accepted["job_id"]

    @property
    def ok(self) -> bool:
        """Did every cell complete (no failures, no abort)?"""
        return not self.done.get("failed") and not self.done.get("aborted")

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Failure records of cells that failed permanently."""
        return [
            event["failure"]
            for event in self.cells
            if event.get("status") == "failed"
        ]

    def payloads(self) -> Dict[str, Dict[str, Any]]:
        """``key -> artifact payload`` for runs submitted with payloads."""
        return {
            event["key"]: event["payload"]
            for event in self.cells
            if "payload" in event
        }


class ServiceClient:
    """One daemon endpoint; every request opens its own connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_ready_file(
        cls, path: Union[str, Path], timeout: float = 300.0
    ) -> "ServiceClient":
        """Point a client at the daemon a ready file describes."""
        info = read_ready_file(path)
        return cls(host=info["host"], port=info["port"], timeout=timeout)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def request_iter(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield every event until the daemon closes."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}",
                code="connection",
            ) from exc
        try:
            with sock, sock.makefile("rb") as stream:
                sock.sendall(encode_line(message))
                for line in stream:
                    try:
                        event = decode_line(line)
                    except ProtocolError as exc:
                        raise ServiceError(str(exc), code="protocol") from exc
                    yield event
                    if event.get("event") in (EVENT_DONE, EVENT_ERROR,
                                              EVENT_STATUS, EVENT_BYE):
                        return
        except OSError as exc:
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed mid-stream: "
                f"{exc}",
                code="connection",
            ) from exc

    def _request_one(self, message: Dict[str, Any]) -> Dict[str, Any]:
        for event in self.request_iter(message):
            if event.get("event") == EVENT_ERROR:
                raise ServiceError(
                    event.get("error", "unknown error"),
                    code=event.get("code", "error"),
                )
            return event
        raise ServiceError("daemon closed the connection without replying",
                           code="connection")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit_iter(
        self,
        spec: Union[CampaignSpec, Dict[str, Any]],
        tenant: str = DEFAULT_TENANT,
        return_payloads: bool = False,
        priority: int = DEFAULT_PRIORITY,
    ) -> Iterator[Dict[str, Any]]:
        """Submit a spec and yield events as the daemon streams them.

        ``priority`` (protocol v2) biases the daemon's fair-share
        scheduler: higher runs sooner within this tenant's share.  A
        terminal ``error`` event is raised as :class:`ServiceError`
        (with its ``code``); all other events are yielded through.
        """
        spec_dict = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        message = submit_request(
            spec_dict, tenant=tenant, return_payloads=return_payloads,
            priority=priority,
        )
        for event in self.request_iter(message):
            if event.get("event") == EVENT_ERROR:
                raise ServiceError(
                    event.get("error", "unknown error"),
                    code=event.get("code", "error"),
                )
            yield event

    def submit(
        self,
        spec: Union[CampaignSpec, Dict[str, Any]],
        tenant: str = DEFAULT_TENANT,
        return_payloads: bool = False,
        priority: int = DEFAULT_PRIORITY,
    ) -> SubmitOutcome:
        """Submit a spec and collect the full response stream."""
        accepted: Optional[Dict[str, Any]] = None
        cells: List[Dict[str, Any]] = []
        done: Dict[str, Any] = {}
        for event in self.submit_iter(
            spec, tenant=tenant, return_payloads=return_payloads,
            priority=priority,
        ):
            kind = event.get("event")
            if kind == EVENT_ACCEPTED:
                accepted = event
            elif kind == EVENT_CELL:
                cells.append(event)
            elif kind == EVENT_DONE:
                done = event
        if accepted is None or not done:
            raise ServiceError(
                "submission stream ended before accepted/done",
                code="connection",
            )
        return SubmitOutcome(accepted=accepted, cells=cells, done=done)

    def status(self) -> Dict[str, Any]:
        """The daemon's live counters, store stats, and tenant usage."""
        return self._request_one(status_request())

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit; returns the ``bye`` event."""
        return self._request_one(shutdown_request())


# ----------------------------------------------------------------------
# Ready-file discovery
# ----------------------------------------------------------------------
def read_ready_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a daemon ready file (host/port/pid/store)."""
    with open(path, "r", encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, dict) or "host" not in data or "port" not in data:
        raise ServiceError(f"malformed ready file {path}", code="protocol")
    return data


def wait_for_ready(
    path: Union[str, Path], timeout: float = 30.0, interval: float = 0.05
) -> Dict[str, Any]:
    """Poll for a daemon's ready file (daemon startup is asynchronous)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return read_ready_file(path)
        except (OSError, ValueError, ServiceError):
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"service ready file {path} did not appear within "
                    f"{timeout:.0f}s",
                    code="connection",
                )
            time.sleep(interval)
