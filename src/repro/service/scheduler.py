"""Fair-share priority scheduler for the service's execution lanes.

One tenant's giant campaign must not starve another's interactive
submission.  The scheduler keeps a priority queue *per tenant* and
picks the next unit of work in two steps:

1. **Tenant choice — deficit round-robin on lane time.**  Among
   tenants with queued work, pick the one that has consumed the least
   execution-lane time so far (:meth:`charge` feeds consumption back
   after every unit).  A tenant that just submitted starts at the
   *minimum* of the live tenants' charges, not zero, so rejoining
   tenants cannot replay history into an unbounded burst.
2. **Entry choice — priority with aging.**  Within the chosen tenant,
   take the highest-priority entry (FIFO among equals).  Every entry's
   *effective* priority additionally rises by one each
   ``aging_rounds`` scheduling rounds it has waited, so a low-priority
   entry behind an endless stream of high-priority work still reaches
   the front after a bounded number of rounds.

These two rules yield the guarantees ``tests/test_scheduler.py``
pins:

* **No starvation** — every queued entry is picked within a bounded
  number of rounds (at most ``tenants * aging_rounds * priority_gap``
  plus queue drain, regardless of what else arrives).
* **Fairness** — two saturating equal-priority tenants receive lane
  time within 2x of each other (deficit selection keeps their charge
  difference bounded by one maximal unit cost).

The scheduler is synchronous and unlocked: the asyncio server calls it
only from the event-loop thread.  It schedules individual *cell
executions* (one queued entry per cold/unshared cell), so fairness
interleaves at cell granularity while each job still *streams* its
results in deterministic spec order.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FairShareScheduler", "ScheduledEntry"]


class ScheduledEntry:
    """One queued unit of work with its scheduling metadata."""

    __slots__ = ("tenant", "priority", "item", "seq", "enqueued_round")

    def __init__(self, tenant: str, priority: int, item: Any, seq: int,
                 enqueued_round: int) -> None:
        self.tenant = tenant
        self.priority = priority
        self.item = item
        self.seq = seq
        self.enqueued_round = enqueued_round


class FairShareScheduler:
    """Per-tenant deficit round-robin over priority queues (see module
    doc for the selection rules and guarantees)."""

    def __init__(self, aging_rounds: int = 8) -> None:
        if aging_rounds < 1:
            raise ValueError(f"aging_rounds must be >= 1, got {aging_rounds}")
        self.aging_rounds = aging_rounds
        #: tenant -> heap of (-priority, seq, entry); heapq is a
        #: min-heap, so negating priority puts the highest first and
        #: ``seq`` keeps FIFO order among equals.
        self._queues: Dict[str, List[Tuple[int, int, ScheduledEntry]]] = {}
        #: tenant -> accumulated lane seconds (the deficit counter).
        self._charged: Dict[str, float] = {}
        self._seq = 0
        self._round = 0

    # -- submission ----------------------------------------------------
    def push(self, tenant: str, priority: int, item: Any) -> ScheduledEntry:
        """Queue one unit of work for ``tenant`` at ``priority``."""
        entry = ScheduledEntry(tenant, int(priority), item, self._seq,
                               self._round)
        self._seq += 1
        if tenant not in self._charged:
            # Join at the floor of the live charges: a fresh (or long
            # idle, see pop) tenant competes fairly from *now* instead
            # of burning everyone else's accumulated history.
            floor = min(self._charged.values()) if self._charged else 0.0
            self._charged[tenant] = floor
        heap = self._queues.setdefault(tenant, [])
        heapq.heappush(heap, (-entry.priority, entry.seq, entry))
        return entry

    # -- selection -----------------------------------------------------
    def pop(self) -> Optional[ScheduledEntry]:
        """The next unit to run, or None when nothing is queued.

        Each call is one *scheduling round* (the unit the aging bound
        is expressed in).
        """
        if not any(self._queues.values()):
            return None
        self._round += 1
        tenant = min(
            (t for t, heap in self._queues.items() if heap),
            key=lambda t: (self._charged.get(t, 0.0), t),
        )
        heap = self._queues[tenant]
        # Aging: effective priority = priority + rounds_waited // aging_rounds.
        # The heap is keyed on static priority; since aging lifts every
        # co-queued entry by the same schedule, order only changes when
        # a *lower*-priority entry has waited long enough to pass a
        # younger higher-priority one — scan for the best effective
        # priority (heaps are small: one entry per queued job).
        best_index = 0
        best_key: Optional[Tuple[int, int]] = None
        for index, (_, seq, entry) in enumerate(heap):
            waited = self._round - entry.enqueued_round
            effective = entry.priority + waited // self.aging_rounds
            key = (-effective, seq)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        entry = heap[best_index][2]
        heap[best_index] = heap[-1]
        heap.pop()
        heapq.heapify(heap)
        if not heap:
            del self._queues[tenant]
        return entry

    # -- accounting ----------------------------------------------------
    def charge(self, tenant: str, lane_seconds: float) -> None:
        """Record lane time a tenant consumed (drives deficit choice)."""
        self._charged[tenant] = self._charged.get(tenant, 0.0) + max(
            0.0, float(lane_seconds)
        )

    def forget(self, tenant: str) -> None:
        """Drop an idle tenant's charge history (rejoins at the floor)."""
        if tenant not in self._queues:
            self._charged.pop(tenant, None)

    # -- introspection -------------------------------------------------
    def queued(self, tenant: Optional[str] = None) -> int:
        """Entries waiting — for one tenant or in total."""
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(heap) for heap in self._queues.values())

    def charges(self) -> Dict[str, float]:
        """Copy of the per-tenant lane-time ledger."""
        return dict(self._charged)

    @property
    def rounds(self) -> int:
        """Scheduling rounds run so far (pops, successful or not)."""
        return self._round
