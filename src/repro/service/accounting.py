"""Persistent per-tenant accounting: quotas that survive restarts.

PR 8's byte quotas lived in a daemon-local dict, so a SIGTERM (deploy,
host reboot) reset every tenant to zero — a tenant at its quota could
simply wait for the next restart.  :class:`TenantLedger` journals
every charge to ``<store>/tenants.jsonl`` (one JSON line per event,
same append-and-rotate machinery as the store's ``index.jsonl``) and
replays the journal on daemon start, so usage picks up exactly where
the previous daemon left off.

Journal lines::

    {"op": "charge", "tenant": str, "bytes": int}
    {"op": "snapshot", "tenants": {tenant: bytes, ...}}

Rotation compacts rather than discards: when the journal passes
``max_bytes`` it is renamed to ``tenants.jsonl.1`` (replacing any
previous rotation) and the fresh journal opens with a single
``snapshot`` line carrying the full current state — so disk use stays
bounded at ~2x the threshold and a replay never needs the rotated
file.  Replay reads the newest file that exists (current journal,
else the rotation), applying the last snapshot then every charge
after it.

Journal write failures are swallowed (quotas degrade to session-local
accounting rather than taking the service down); replay failures on a
corrupt line — e.g. a tail torn by power loss mid-append — skip that
line, counted as ``service.ledger.torn`` and surfaced on
:attr:`TenantLedger.torn_lines`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from .. import telemetry

__all__ = ["TenantLedger", "TENANTS_JOURNAL"]

#: Journal filename under the store root.
TENANTS_JOURNAL = "tenants.jsonl"


class TenantLedger:
    """Durable tenant -> charged-bytes map backed by a JSONL journal."""

    def __init__(self, root: Union[str, Path],
                 max_bytes: int = 1 << 20) -> None:
        self.root = Path(root)
        self.path = self.root / TENANTS_JOURNAL
        self.max_bytes = int(max_bytes)
        self.tenant_bytes: Dict[str, int] = {}
        #: Unparseable journal lines skipped during replay (torn tail).
        self.torn_lines = 0
        self._load()

    # -- replay --------------------------------------------------------
    def _load(self) -> None:
        """Rebuild the in-memory map from the newest journal on disk."""
        path = self.path
        if not path.exists():
            rotated = path.parent / (path.name + ".1")
            if not rotated.exists():
                return
            path = rotated
        try:
            with open(path, "r", encoding="utf-8") as stream:
                lines = stream.readlines()
        except OSError:
            return
        state: Dict[str, int] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # Torn write (classic crash mid-append); later lines
                # still apply.  Count it — silent data loss is how
                # quota drift goes unnoticed.
                self.torn_lines += 1
                telemetry.incr("service.ledger.torn")
                continue
            if not isinstance(entry, dict):
                self.torn_lines += 1
                telemetry.incr("service.ledger.torn")
                continue
            op = entry.get("op")
            if op == "snapshot" and isinstance(entry.get("tenants"), dict):
                state = {
                    str(tenant): int(value)
                    for tenant, value in entry["tenants"].items()
                    if isinstance(value, int) and not isinstance(value, bool)
                }
            elif op == "charge":
                tenant = entry.get("tenant")
                amount = entry.get("bytes")
                if (
                    isinstance(tenant, str)
                    and isinstance(amount, int)
                    and not isinstance(amount, bool)
                ):
                    state[tenant] = state.get(tenant, 0) + amount
        self.tenant_bytes = state
        if state:
            telemetry.incr("service.ledger.resumed")

    # -- accounting ----------------------------------------------------
    def usage(self, tenant: str) -> int:
        """Bytes charged to ``tenant`` so far (0 if unknown)."""
        return self.tenant_bytes.get(tenant, 0)

    def charge(self, tenant: str, amount: int) -> int:
        """Add ``amount`` bytes to a tenant; returns the new total.

        The journal line is appended *before* the in-memory update: a
        rotation snapshot taken during the append must capture the
        state without this charge, or replaying snapshot + charge line
        would double-count it.
        """
        self._append({"op": "charge", "tenant": tenant, "bytes": int(amount)})
        total = self.tenant_bytes.get(tenant, 0) + int(amount)
        self.tenant_bytes[tenant] = total
        return total

    def snapshot(self) -> Dict[str, int]:
        """Copy of the full tenant -> bytes map (for status/manifest)."""
        return dict(self.tenant_bytes)

    # -- journal -------------------------------------------------------
    def _append(self, entry: Dict[str, int]) -> None:
        """Append one journal line, rotating past ``max_bytes``.

        Mirrors ``ResultStore._index``: the in-memory map is the
        source of truth for the running daemon, so journal I/O errors
        are swallowed — accounting degrades to session-local instead
        of failing the request.
        """
        try:
            try:
                if self.path.stat().st_size >= self.max_bytes:
                    os.replace(
                        self.path, self.path.parent / (self.path.name + ".1")
                    )
                    telemetry.incr("service.ledger.rotated")
                    # Seed the fresh journal with the full state so a
                    # replay never needs the rotated file.
                    with open(self.path, "a", encoding="utf-8") as stream:
                        stream.write(json.dumps(
                            {"op": "snapshot",
                             "tenants": dict(self.tenant_bytes)},
                            sort_keys=True,
                        ))
                        stream.write("\n")
            except FileNotFoundError:
                pass
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(entry, sort_keys=True))
                stream.write("\n")
        except OSError:
            pass
