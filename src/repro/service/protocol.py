"""Wire protocol for the campaign service: JSON lines over a stream.

One connection carries one request and its response stream.  The
client sends a single JSON object on one line; the server answers with
a sequence of JSON-line *events* and closes the connection when the
request is finished.  Everything is UTF-8 JSON — no framing beyond
newlines, no binary, so any language (or ``nc``) can speak it.

Requests (all carry ``{"schema": PROTOCOL_SCHEMA, "op": ...}``):

``submit``
    ``{"op": "submit", "tenant": str, "spec": {campaign-spec dict},
    "return_payloads": bool, "priority": int}`` — expand the spec into
    cells and run them through the shared store.  The response stream
    is one ``accepted`` event, one ``cell`` event per cell **in
    deterministic spec order, emitted as each cell finishes**
    (incremental results), and one terminal ``done`` event.
    ``priority`` (protocol v2, optional, default 0) biases the
    fair-share scheduler: higher runs sooner within a tenant's share.

``resume``
    ``{"op": "resume", "job_id": str, "after_seq": int}`` (protocol
    v3) — re-attach to a job's event stream after a dropped
    connection or a daemon restart.  The daemon replays every buffered
    event with ``seq > after_seq`` and then continues live until
    ``done``.  An unknown ``job_id`` (never accepted, retired from
    history, or lost to a torn journal tail) gets a terminal ``error``
    event with code ``unknown_job``.

``status``
    One ``status`` event: service counters, store size/stats, tenant
    usage, queue depth, recovery/journal state.

``shutdown``
    One ``bye`` event, then the daemon drains its queue and exits
    (same path as SIGTERM).

**Event sequencing (protocol v3).**  Every event a job streams carries
a job-scoped ``seq``: ``accepted`` is ``seq 0``, the cells are ``seq
1..N`` (each also carries ``index``, its position in spec order, and
``of``, the cell count), and ``done`` is ``seq N+1``.  Within one job
the stream — across any number of drops and resumes — is strictly
increasing and gapless in ``seq``, which is what makes client-side
resume exact: replay everything after the last seq you saw, nothing
is duplicated, nothing is missing.  v1/v2 requests are still accepted
(they simply never send ``resume``); their events carry the v3 fields.

Error handling: any malformed request, unknown spec, or quota
rejection produces a single terminal ``error`` event (with a ``code``
for machine handling) — the daemon itself never dies on bad input.
A request line larger than :data:`MAX_LINE_BYTES` is rejected the same
way (code ``protocol``) instead of stalling the reader.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

__all__ = [
    "PROTOCOL_SCHEMA",
    "ACCEPTED_SCHEMAS",
    "DEFAULT_PRIORITY",
    "MAX_LINE_BYTES",
    "OP_SUBMIT",
    "OP_RESUME",
    "OP_STATUS",
    "OP_SHUTDOWN",
    "OPS",
    "EVENT_ACCEPTED",
    "EVENT_CELL",
    "EVENT_DONE",
    "EVENT_ERROR",
    "EVENT_STATUS",
    "EVENT_BYE",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "submit_request",
    "resume_request",
    "status_request",
    "shutdown_request",
    "validate_request",
]

#: Version tag every request and event carries; a format change bumps
#: it and old clients get a clean ``error`` event instead of garbage.
#: v3 added per-job event sequence numbers and the ``resume`` op —
#: compatible extensions, so v1/v2 requests are still accepted (see
#: ``ACCEPTED_SCHEMAS``) and answered with v3 events.
PROTOCOL_SCHEMA = "repro.service/3"

#: Request schemas the server accepts.  v1 predates ``priority``; v2
#: predates ``seq``/``resume``.  Older submits simply run with the
#: newer fields defaulted.
ACCEPTED_SCHEMAS = ("repro.service/1", "repro.service/2", PROTOCOL_SCHEMA)

#: Default submit priority (higher runs sooner within a tenant's share).
DEFAULT_PRIORITY = 0

#: Hard per-line size cap (requests *and* events).  Generous — specs
#: are small and payloads stream server->client — but bounded, so one
#: hostile line can neither exhaust memory nor stall the read loop.
MAX_LINE_BYTES = 8 << 20

OP_SUBMIT = "submit"
OP_RESUME = "resume"
OP_STATUS = "status"
OP_SHUTDOWN = "shutdown"
OPS = (OP_SUBMIT, OP_RESUME, OP_STATUS, OP_SHUTDOWN)

EVENT_ACCEPTED = "accepted"
EVENT_CELL = "cell"
EVENT_DONE = "done"
EVENT_ERROR = "error"
EVENT_STATUS = "status"
EVENT_BYE = "bye"

#: Default tenant for clients that do not identify themselves.
DEFAULT_TENANT = "default"


class ProtocolError(Exception):
    """A message that cannot be parsed or fails schema validation."""


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message → one UTF-8 JSON line (canonical key order)."""
    try:
        text = json.dumps(message, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    return text.encode("utf-8") + b"\n"


def decode_line(line: Union[str, bytes]) -> Dict[str, Any]:
    """One received line → message dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(data).__name__}"
        )
    return data


# ----------------------------------------------------------------------
# Request constructors (what the client library sends)
# ----------------------------------------------------------------------
def submit_request(
    spec: Dict[str, Any],
    tenant: str = DEFAULT_TENANT,
    return_payloads: bool = False,
    priority: int = DEFAULT_PRIORITY,
) -> Dict[str, Any]:
    """A ``submit`` request for one campaign-spec dict."""
    return {
        "schema": PROTOCOL_SCHEMA,
        "op": OP_SUBMIT,
        "tenant": tenant,
        "spec": spec,
        "return_payloads": bool(return_payloads),
        "priority": int(priority),
    }


def resume_request(job_id: str, after_seq: int = -1) -> Dict[str, Any]:
    """A ``resume`` request: replay ``job_id`` events after ``after_seq``."""
    return {
        "schema": PROTOCOL_SCHEMA,
        "op": OP_RESUME,
        "job_id": job_id,
        "after_seq": int(after_seq),
    }


def status_request() -> Dict[str, Any]:
    """A ``status`` request."""
    return {"schema": PROTOCOL_SCHEMA, "op": OP_STATUS}


def shutdown_request() -> Dict[str, Any]:
    """A ``shutdown`` request."""
    return {"schema": PROTOCOL_SCHEMA, "op": OP_SHUTDOWN}


# ----------------------------------------------------------------------
# Server-side request validation
# ----------------------------------------------------------------------
def validate_request(data: Dict[str, Any]) -> Dict[str, Any]:
    """Check schema tag, op, and op-specific fields; raises on junk."""
    schema = data.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ProtocolError(
            f"unknown protocol schema {schema!r} (expected one of "
            f"{list(ACCEPTED_SCHEMAS)})"
        )
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; available: {list(OPS)}")
    if op == OP_SUBMIT:
        if not isinstance(data.get("spec"), dict):
            raise ProtocolError("submit requires a 'spec' object")
        tenant = data.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(f"tenant must be a non-empty string, got {tenant!r}")
        priority = data.get("priority", DEFAULT_PRIORITY)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError(
                f"priority must be an integer, got {priority!r}"
            )
    elif op == OP_RESUME:
        job_id = data.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(
                f"resume requires a non-empty 'job_id' string, got {job_id!r}"
            )
        after_seq = data.get("after_seq", -1)
        if (
            not isinstance(after_seq, int)
            or isinstance(after_seq, bool)
            or after_seq < -1
        ):
            raise ProtocolError(
                f"after_seq must be an integer >= -1, got {after_seq!r}"
            )
    return data
