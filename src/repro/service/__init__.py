"""Multi-tenant campaign service: daemon, client, and wire protocol.

``python -m repro serve`` turns the store + campaign + resilience
stack into a long-running shared grading service: many clients submit
campaign specs over a local socket, identical submissions collapse
onto one execution through :func:`repro.netlist.hashing.cache_key`,
results stream back incrementally, and one tenant's poisoned netlist
quarantines without stalling anyone else's queue.

The service is crash-safe end to end: accepted jobs are journaled to
``<store>/jobs.jsonl`` *before* the ack (:mod:`repro.service.journal`)
and recovered on restart, every streamed event carries a job-scoped
``seq``, and clients resume by ``job_id`` + last-seen ``seq`` across
connection drops and daemon restarts (protocol v3).  See
:mod:`repro.service.server` for the architecture and
:mod:`repro.service.protocol` for the wire format.
"""

from .accounting import TENANTS_JOURNAL, TenantLedger
from .client import (
    ServiceClient,
    ServiceError,
    StaleReadyFileError,
    SubmitOutcome,
    read_ready_file,
    wait_for_ready,
)
from .journal import JOBS_JOURNAL, JobJournal, JobJournalError
from .protocol import (
    ACCEPTED_SCHEMAS,
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    MAX_LINE_BYTES,
    OP_RESUME,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_SUBMIT,
    PROTOCOL_SCHEMA,
    ProtocolError,
)
from .scheduler import FairShareScheduler
from .server import (
    CampaignService,
    Job,
    ServiceConfig,
    ServiceStats,
    run_service,
)

__all__ = [
    "PROTOCOL_SCHEMA",
    "ACCEPTED_SCHEMAS",
    "DEFAULT_PRIORITY",
    "DEFAULT_TENANT",
    "MAX_LINE_BYTES",
    "OP_SUBMIT",
    "OP_RESUME",
    "OP_STATUS",
    "OP_SHUTDOWN",
    "EVENT_ACCEPTED",
    "EVENT_CELL",
    "EVENT_DONE",
    "EVENT_ERROR",
    "EVENT_STATUS",
    "EVENT_BYE",
    "ProtocolError",
    "ServiceError",
    "StaleReadyFileError",
    "ServiceClient",
    "SubmitOutcome",
    "ServiceConfig",
    "ServiceStats",
    "Job",
    "CampaignService",
    "run_service",
    "read_ready_file",
    "wait_for_ready",
    "FairShareScheduler",
    "TenantLedger",
    "TENANTS_JOURNAL",
    "JobJournal",
    "JobJournalError",
    "JOBS_JOURNAL",
]
