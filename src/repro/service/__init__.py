"""Multi-tenant campaign service: daemon, client, and wire protocol.

``python -m repro serve`` turns the store + campaign + resilience
stack into a long-running shared grading service: many clients submit
campaign specs over a local socket, identical submissions collapse
onto one execution through :func:`repro.netlist.hashing.cache_key`,
results stream back incrementally, and one tenant's poisoned netlist
quarantines without stalling anyone else's queue.  See
:mod:`repro.service.server` for the architecture and
:mod:`repro.service.protocol` for the wire format.
"""

from .accounting import TENANTS_JOURNAL, TenantLedger
from .client import (
    ServiceClient,
    ServiceError,
    SubmitOutcome,
    read_ready_file,
    wait_for_ready,
)
from .protocol import (
    ACCEPTED_SCHEMAS,
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    EVENT_ACCEPTED,
    EVENT_BYE,
    EVENT_CELL,
    EVENT_DONE,
    EVENT_ERROR,
    EVENT_STATUS,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_SUBMIT,
    PROTOCOL_SCHEMA,
    ProtocolError,
)
from .scheduler import FairShareScheduler
from .server import CampaignService, ServiceConfig, ServiceStats, run_service

__all__ = [
    "PROTOCOL_SCHEMA",
    "ACCEPTED_SCHEMAS",
    "DEFAULT_PRIORITY",
    "DEFAULT_TENANT",
    "OP_SUBMIT",
    "OP_STATUS",
    "OP_SHUTDOWN",
    "EVENT_ACCEPTED",
    "EVENT_CELL",
    "EVENT_DONE",
    "EVENT_ERROR",
    "EVENT_STATUS",
    "EVENT_BYE",
    "ProtocolError",
    "ServiceError",
    "ServiceClient",
    "SubmitOutcome",
    "ServiceConfig",
    "ServiceStats",
    "CampaignService",
    "run_service",
    "read_ready_file",
    "wait_for_ready",
    "FairShareScheduler",
    "TenantLedger",
    "TENANTS_JOURNAL",
]
