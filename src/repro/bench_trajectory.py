"""Schema-versioned persisted benchmark trajectories.

A *trajectory* file (e.g. ``BENCH_faultsim_engines.json`` at the repo
root) records the headline speedups a benchmark measured, one entry per
(gate label, workload).  The benchmark re-measures on every run and
**refuses to regress**: a measured speedup below the committed baseline
by more than the tolerance fails the run, exactly like a lost engine
agreement.  Passing ``--update-baseline`` to the benchmark rewrites the
file, pushing the previous figure onto the entry's ``history`` list —
the trajectory of the engine across PRs, kept in version control.

The file format follows the run-manifest pattern
(:mod:`repro.telemetry`): a ``schema`` tag (:data:`TRAJECTORY_SCHEMA`)
plus required keys, checked by :func:`validate_trajectory` both when a
benchmark loads the baseline and in CI against the committed file.

Wall-clock ratios on shared CI hardware are noisy; the default
:data:`DEFAULT_TOLERANCE` (35% relative) is deliberately loose.  It is
a backstop against step-change regressions — each benchmark's absolute
minimum gates (e.g. "wide is >= 3x parallel-pattern") stay the hard
floor.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

TRAJECTORY_SCHEMA = "repro.bench-trajectory/1"

REQUIRED_TRAJECTORY_KEYS = ("schema", "bench", "entries")

#: Per-entry required keys.  ``workload`` is a free-form JSON object
#: describing what was measured (circuit, faults, patterns, flags);
#: ``speedup`` is the committed baseline figure; ``min_gate`` is the
#: absolute floor the benchmark enforces regardless of the baseline;
#: ``history`` lists superseded baseline speedups, oldest first.
REQUIRED_ENTRY_KEYS = (
    "label",
    "circuit",
    "workload",
    "speedup",
    "min_gate",
    "history",
)

#: Relative regression tolerance: measured >= baseline * (1 - tolerance).
DEFAULT_TOLERANCE = 0.35


def new_trajectory(bench: str) -> Dict[str, Any]:
    """An empty trajectory document for one benchmark."""
    return {"schema": TRAJECTORY_SCHEMA, "bench": bench, "entries": []}


def validate_trajectory(data: Dict[str, Any]) -> Dict[str, Any]:
    """Check schema tag, required keys, entry rows, and JSON-safety.

    Raises ValueError on any violation; returns the dict unchanged
    otherwise (mirrors :func:`repro.telemetry.validate_manifest`).
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"trajectory must be an object, got {type(data).__name__}"
        )
    missing = [k for k in REQUIRED_TRAJECTORY_KEYS if k not in data]
    if missing:
        raise ValueError(f"trajectory missing required keys: {missing}")
    if data["schema"] != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"unknown trajectory schema {data['schema']!r} "
            f"(expected {TRAJECTORY_SCHEMA!r})"
        )
    if not isinstance(data["entries"], list):
        raise ValueError("trajectory entries must be a list")
    seen = set()
    for row in data["entries"]:
        if not isinstance(row, dict):
            raise ValueError("trajectory entries must be objects")
        absent = [k for k in REQUIRED_ENTRY_KEYS if k not in row]
        if absent:
            raise ValueError(
                f"trajectory entry {row.get('label')!r} missing keys: {absent}"
            )
        label = row["label"]
        if label in seen:
            raise ValueError(f"duplicate trajectory entry label {label!r}")
        seen.add(label)
        if not isinstance(row["speedup"], (int, float)) or row["speedup"] <= 0:
            raise ValueError(
                f"trajectory entry {label!r} speedup must be a positive "
                f"number, got {row['speedup']!r}"
            )
        if not isinstance(row["history"], list):
            raise ValueError(f"trajectory entry {label!r} history must be a list")
        if not isinstance(row["workload"], dict):
            raise ValueError(
                f"trajectory entry {label!r} workload must be an object"
            )
    try:
        json.dumps(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trajectory is not JSON-serializable: {exc}") from exc
    return data


def load_trajectory(path: str) -> Dict[str, Any]:
    """Load and validate a trajectory file."""
    with open(path, "r", encoding="utf-8") as stream:
        return validate_trajectory(json.load(stream))


def save_trajectory(path: str, data: Dict[str, Any]) -> None:
    """Validate and write a trajectory file (stable key order + newline)."""
    validate_trajectory(data)
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text)


def find_entry(data: Dict[str, Any], label: str) -> Optional[Dict[str, Any]]:
    """The entry with this label, or None."""
    for row in data["entries"]:
        if row["label"] == label:
            return row
    return None


def check_entry(
    data: Dict[str, Any],
    label: str,
    measured: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[Dict[str, Any], float]:
    """Regression check: ``measured`` against the committed baseline.

    Returns ``(entry, floor)`` on success; raises ValueError when the
    label is absent (the baseline must be updated to cover every gate
    the benchmark runs) or when ``measured`` fell below
    ``baseline * (1 - tolerance)``.
    """
    entry = find_entry(data, label)
    if entry is None:
        raise ValueError(
            f"no baseline entry {label!r} in trajectory for "
            f"{data.get('bench')!r}; run the benchmark with "
            f"--update-baseline to record one"
        )
    floor = entry["speedup"] * (1.0 - tolerance)
    if measured < floor:
        raise ValueError(
            f"REGRESSION on {label!r}: measured {measured:.2f}x is below "
            f"{floor:.2f}x (baseline {entry['speedup']:.2f}x minus "
            f"{tolerance:.0%} tolerance)"
        )
    return entry, floor


def update_entry(
    data: Dict[str, Any],
    label: str,
    circuit: str,
    workload: Dict[str, Any],
    speedup: float,
    min_gate: float,
) -> Dict[str, Any]:
    """Record a new baseline figure for ``label`` (in place).

    An existing entry's previous speedup is appended to its ``history``;
    a new label gets an empty history.  Returns the entry.
    """
    entry = find_entry(data, label)
    speedup = round(float(speedup), 3)
    if entry is None:
        entry = {
            "label": label,
            "circuit": circuit,
            "workload": dict(workload),
            "speedup": speedup,
            "min_gate": min_gate,
            "history": [],
        }
        data["entries"].append(entry)
        data["entries"].sort(key=lambda row: row["label"])
    else:
        entry["history"].append(entry["speedup"])
        entry.update(
            circuit=circuit,
            workload=dict(workload),
            speedup=speedup,
            min_gate=min_gate,
        )
    return entry


def default_baseline_path(bench: str, start: Optional[str] = None) -> str:
    """``BENCH_<bench>.json`` at the repository root.

    ``start`` defaults to this file's directory; the nearest enclosing
    directory containing a ``.git`` entry (or the filesystem root walk's
    last directory) anchors the path, so benchmarks and tests resolve
    the same committed file no matter the working directory.
    """
    here = os.path.abspath(start or os.path.dirname(__file__))
    current = here
    while True:
        if os.path.exists(os.path.join(current, ".git")):
            break
        parent = os.path.dirname(current)
        if parent == current:
            current = here
            break
        current = parent
    return os.path.join(current, f"BENCH_{bench}.json")
