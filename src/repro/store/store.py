"""Content-addressed on-disk artifact store.

The paper's Eq. 1 economics say pattern generation and fault simulation
dominate a design's test cost precisely because they are paid
*repeatedly*.  This store makes every expensive deterministic result —
coverage reports, generated pattern sets, run manifests, whole ATPG
results, campaign cells — addressable by the
:func:`repro.netlist.hashing.cache_key` of the run that produced it, so
a result is computed once per (structure, engine, seed, params) and
served from disk forever after.

Layout under one root directory::

    <root>/objects/<key[:2]>/<key>.json   sharded artifact files
    <root>/index.jsonl                    append-only put journal
    <root>/quarantine/                    corrupt entries, moved aside
    <root>/campaigns/<name>/              campaign runner state

Guarantees:

* **Atomic writes** — artifacts are written to a temp file in the
  destination directory and ``os.replace``-d into place, so readers
  never observe a half-written JSON file even across processes.
* **Corruption never crashes a flow** — an unreadable, unparseable, or
  schema/kind/key-mismatched entry is *quarantined* (moved into
  ``quarantine/``) and reported as a miss; the caller recomputes and
  the fresh result overwrites the slot.  The event is counted
  (``store.quarantined``) so it surfaces in run manifests as a warning
  counter rather than an exception.
* **Schema-versioned payloads** — every artifact file carries the
  envelope schema (:data:`ARTIFACT_SCHEMA`) and its kind tag, which
  embeds the payload schema version (e.g. ``coverage-report/1``); a
  format bump makes old entries read as quarantined misses, never as
  silently misdecoded data.
* **Observable** — hits, misses, puts, quarantines and evictions are
  counted per store instance (:class:`StoreStats`) *and* emitted as
  telemetry counters (``store.hit``/``store.miss``/``store.put``/
  ``store.quarantined``/``store.evict``), so cache behaviour shows up
  in campaign run manifests.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from .. import telemetry
from ..faultsim.coverage import CoverageReport
from ..telemetry import RunManifest
from .codecs import (
    KIND_COVERAGE_REPORT,
    KIND_PATTERNS,
    KIND_RUN_MANIFEST,
    decode_manifest,
    decode_patterns,
    decode_report,
    encode_manifest,
    encode_patterns,
    encode_report,
)

__all__ = ["ARTIFACT_SCHEMA", "StoreError", "StoreStats", "ResultStore"]

#: Envelope schema for every artifact file the store writes.
ARTIFACT_SCHEMA = "repro.store.artifact/1"


class StoreError(Exception):
    """Misuse of the store API (bad key, unserializable payload, ...)."""


@dataclass
class StoreStats:
    """Per-instance cache counters (also mirrored into telemetry)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe copy for manifests and status output."""
        return asdict(self)


def _check_key(key: str) -> str:
    if not isinstance(key, str) or len(key) < 8 or not all(
        c in "0123456789abcdef" for c in key
    ):
        raise StoreError(
            f"store keys must be lowercase hex digests (>= 8 chars), got {key!r}"
        )
    return key


class ResultStore:
    """Content-addressed JSON artifact store rooted at one directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.index_path = self.root / "index.jsonl"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of ``key``'s artifact (sharded by prefix)."""
        _check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Core get / put / memoize
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Does an artifact file exist for ``key``? (No validation.)"""
        return self.path_for(key).exists()

    def get(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """Load ``key``'s payload, or None on miss.

        Any invalid entry — unreadable file, broken JSON, wrong envelope
        schema, wrong kind, key mismatch, missing payload — is moved to
        the quarantine directory and reported as a miss, never raised.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._miss()
            return None
        except OSError as exc:
            self._quarantine(path, f"unreadable: {exc}")
            self._miss()
            return None
        try:
            data = json.loads(text)
        except ValueError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            self._miss()
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != ARTIFACT_SCHEMA
            or data.get("kind") != kind
            or data.get("key") != key
            or "payload" not in data
        ):
            self._quarantine(
                path,
                f"schema/kind mismatch (schema={data.get('schema')!r} "
                f"kind={data.get('kind')!r} expected kind={kind!r})"
                if isinstance(data, dict)
                else "artifact is not a JSON object",
            )
            self._miss()
            return None
        self.stats.hits += 1
        telemetry.incr("store.hit")
        return data["payload"]

    def put(self, key: str, kind: str, payload: Any) -> Path:
        """Write one artifact atomically (temp file + rename)."""
        path = self.path_for(key)
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        try:
            text = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"artifact payload for {kind!r} is not JSON-serializable: {exc}"
            ) from exc
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}.", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        telemetry.incr("store.put")
        self._index({"op": "put", "key": key, "kind": kind, "bytes": len(text)})
        return path

    def memoize(
        self,
        key: str,
        kind: str,
        compute: Callable[[], Any],
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> Tuple[Any, bool]:
        """Serve ``key`` from the store, or compute-and-store it.

        Returns ``(value, cached)``; ``cached`` is True when the value
        came from disk without calling ``compute``.  ``encode``/
        ``decode`` convert between the value and its JSON payload
        (identity when omitted).
        """
        payload = self.get(key, kind)
        if payload is not None:
            return (decode(payload) if decode else payload), True
        value = compute()
        self.put(key, kind, encode(value) if encode else value)
        return value, False

    # ------------------------------------------------------------------
    # Typed convenience wrappers for the common artifact kinds
    # ------------------------------------------------------------------
    def put_report(self, key: str, report: CoverageReport) -> Path:
        """Store a :class:`CoverageReport` under ``key``."""
        return self.put(key, KIND_COVERAGE_REPORT, encode_report(report))

    def get_report(self, key: str) -> Optional[CoverageReport]:
        """Load a :class:`CoverageReport`, or None on miss."""
        payload = self.get(key, KIND_COVERAGE_REPORT)
        return decode_report(payload) if payload is not None else None

    def put_patterns(self, key: str, patterns: List[Dict[str, int]]) -> Path:
        """Store a generated pattern set under ``key``."""
        return self.put(key, KIND_PATTERNS, encode_patterns(patterns))

    def get_patterns(self, key: str) -> Optional[List[Dict[str, int]]]:
        """Load a pattern set, or None on miss."""
        payload = self.get(key, KIND_PATTERNS)
        return decode_patterns(payload) if payload is not None else None

    def put_manifest(self, key: str, manifest: RunManifest) -> Path:
        """Store a :class:`RunManifest` under ``key``."""
        return self.put(key, KIND_RUN_MANIFEST, encode_manifest(manifest))

    def get_manifest(self, key: str) -> Optional[RunManifest]:
        """Load a :class:`RunManifest`, or None on miss."""
        payload = self.get(key, KIND_RUN_MANIFEST)
        return decode_manifest(payload) if payload is not None else None

    # ------------------------------------------------------------------
    # Enumeration and eviction
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All artifact keys currently on disk (sorted for determinism)."""
        if not self.objects_dir.exists():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def evict(self, key: str) -> bool:
        """Remove one artifact; True when a file was actually deleted."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.evicted += 1
        telemetry.incr("store.evict")
        self._index({"op": "evict", "key": key})
        return True

    def clear(self) -> int:
        """Evict every artifact; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            if self.evict(key):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _miss(self) -> None:
        self.stats.misses += 1
        telemetry.incr("store.miss")

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside; never raises into the caller."""
        self.stats.quarantined += 1
        telemetry.incr("store.quarantined")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.stem}.{suffix}{path.suffix}"
            os.replace(path, target)
            self._index(
                {"op": "quarantine", "file": path.name, "reason": reason}
            )
        except FileNotFoundError:
            # A concurrent reader quarantined (or a writer replaced) the
            # file between our read and the move.  The corrupt evidence
            # is already preserved or gone — nothing left to do, and
            # critically nothing to unlink: a fresh artifact may already
            # occupy the slot.
            pass
        except OSError:
            # Move failed with the file still in place (permissions,
            # cross-device, ...).  Last resort: delete so the slot can
            # be rewritten rather than poisoning every future read.
            try:
                path.unlink()
            except OSError:
                pass

    def _index(self, entry: Dict[str, Any]) -> None:
        """Append one line to the advisory put/evict journal.

        The index is a convenience for humans and tooling; the objects
        directory is the source of truth, so index write failures are
        swallowed.
        """
        try:
            with open(self.index_path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(entry, sort_keys=True))
                stream.write("\n")
        except OSError:
            pass
