"""Content-addressed on-disk artifact store.

The paper's Eq. 1 economics say pattern generation and fault simulation
dominate a design's test cost precisely because they are paid
*repeatedly*.  This store makes every expensive deterministic result —
coverage reports, generated pattern sets, run manifests, whole ATPG
results, campaign cells — addressable by the
:func:`repro.netlist.hashing.cache_key` of the run that produced it, so
a result is computed once per (structure, engine, seed, params) and
served from disk forever after.

Layout under one root directory::

    <root>/objects/<key[:2]>/<key>.json   sharded artifact files
    <root>/index.jsonl                    append-only put journal
    <root>/quarantine/                    corrupt entries, moved aside
    <root>/campaigns/<name>/              campaign runner state

Guarantees:

* **Atomic writes** — artifacts are written to a temp file in the
  destination directory and ``os.replace``-d into place, so readers
  never observe a half-written JSON file even across processes.
* **Corruption never crashes a flow** — an unreadable, unparseable, or
  schema/kind/key-mismatched entry is *quarantined* (moved into
  ``quarantine/``) and reported as a miss; the caller recomputes and
  the fresh result overwrites the slot.  The event is counted
  (``store.quarantined``) so it surfaces in run manifests as a warning
  counter rather than an exception.
* **Schema-versioned payloads** — every artifact file carries the
  envelope schema (:data:`ARTIFACT_SCHEMA`) and its kind tag, which
  embeds the payload schema version (e.g. ``coverage-report/1``); a
  format bump makes old entries read as quarantined misses, never as
  silently misdecoded data.
* **Observable** — hits, misses, puts, quarantines and evictions are
  counted per store instance (:class:`StoreStats`) *and* emitted as
  telemetry counters (``store.hit``/``store.miss``/``store.put``/
  ``store.quarantined``/``store.evict``), so cache behaviour shows up
  in campaign run manifests.
* **Bounded by a lifecycle policy** — a long-running daemon cannot let
  the store grow forever.  :class:`LifecyclePolicy` adds LRU eviction
  by artifact mtime under a configurable size budget (reads bump the
  mtime, so hot artifacts survive), rotation of the advisory
  ``index.jsonl`` journal past a size threshold, and count/age caps on
  the quarantine directory.  Keys *pinned* via :meth:`ResultStore.pin`
  (in-flight jobs) are never evicted by an LRU pass.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from .. import telemetry
from ..faultsim.coverage import CoverageReport
from ..telemetry import RunManifest
from .codecs import (
    KIND_COVERAGE_REPORT,
    KIND_PATTERNS,
    KIND_RUN_MANIFEST,
    decode_manifest,
    decode_patterns,
    decode_report,
    encode_manifest,
    encode_patterns,
    encode_report,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "StoreError",
    "StoreStats",
    "LifecyclePolicy",
    "ResultStore",
]

#: Envelope schema for every artifact file the store writes.
ARTIFACT_SCHEMA = "repro.store.artifact/1"


class StoreError(Exception):
    """Misuse of the store API (bad key, unserializable payload, ...)."""


@dataclass
class StoreStats:
    """Per-instance cache counters (also mirrored into telemetry)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    evicted: int = 0
    index_rotations: int = 0
    quarantine_evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe copy for manifests and status output."""
        return asdict(self)


@dataclass
class LifecyclePolicy:
    """Growth bounds for a store that must run unattended.

    ``size_budget_bytes`` caps the total bytes under ``objects/``;
    every :meth:`ResultStore.put` that pushes the store past it
    triggers an LRU pass (oldest artifact mtime first) that never
    touches pinned keys or the artifact just written.  ``None`` (the
    default) disables automatic eviction — CLI one-shot runs keep
    today's grow-forever behaviour.

    ``index_max_bytes`` rotates the advisory ``index.jsonl`` journal:
    once it exceeds the threshold it is renamed to ``index.jsonl.1``
    (replacing any previous rotation) and appending continues on a
    fresh file, bounding total journal disk at ~2x the threshold.

    ``quarantine_max_files`` / ``quarantine_max_age_s`` bound the
    quarantine directory: after every quarantine move, corpses beyond
    the count cap (oldest first) or older than the age cap are deleted
    and accounted in ``StoreStats.quarantine_evicted``.
    """

    size_budget_bytes: Optional[int] = None
    index_max_bytes: int = 1 << 20
    quarantine_max_files: int = 64
    quarantine_max_age_s: Optional[float] = None


def _check_key(key: str) -> str:
    if not isinstance(key, str) or len(key) < 8 or not all(
        c in "0123456789abcdef" for c in key
    ):
        raise StoreError(
            f"store keys must be lowercase hex digests (>= 8 chars), got {key!r}"
        )
    return key


class ResultStore:
    """Content-addressed JSON artifact store rooted at one directory."""

    def __init__(
        self,
        root: Union[str, Path],
        lifecycle: Optional[LifecyclePolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.index_path = self.root / "index.jsonl"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        self.lifecycle = lifecycle if lifecycle is not None else LifecyclePolicy()
        self._pins: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of ``key``'s artifact (sharded by prefix)."""
        _check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Core get / put / memoize
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Does an artifact file exist for ``key``? (No validation.)"""
        return self.path_for(key).exists()

    def get(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """Load ``key``'s payload, or None on miss.

        Any invalid entry — unreadable file, broken JSON, wrong envelope
        schema, wrong kind, key mismatch, missing payload — is moved to
        the quarantine directory and reported as a miss, never raised.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._miss()
            return None
        except OSError as exc:
            self._quarantine(path, f"unreadable: {exc}")
            self._miss()
            return None
        try:
            data = json.loads(text)
        except ValueError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            self._miss()
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != ARTIFACT_SCHEMA
            or data.get("kind") != kind
            or data.get("key") != key
            or "payload" not in data
        ):
            self._quarantine(
                path,
                f"schema/kind mismatch (schema={data.get('schema')!r} "
                f"kind={data.get('kind')!r} expected kind={kind!r})"
                if isinstance(data, dict)
                else "artifact is not a JSON object",
            )
            self._miss()
            return None
        self.stats.hits += 1
        telemetry.incr("store.hit")
        try:
            # LRU freshness: a hit makes the artifact "recently used",
            # so eviction order tracks access, not just write order.
            os.utime(path)
        except OSError:
            pass
        return data["payload"]

    def put(self, key: str, kind: str, payload: Any) -> Path:
        """Write one artifact atomically (temp file + rename)."""
        path = self.path_for(key)
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        try:
            text = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"artifact payload for {kind!r} is not JSON-serializable: {exc}"
            ) from exc
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}.", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        telemetry.incr("store.put")
        self._index({"op": "put", "key": key, "kind": kind, "bytes": len(text)})
        if self.lifecycle.size_budget_bytes is not None:
            self.enforce_budget(protect=frozenset((key,)))
        return path

    def memoize(
        self,
        key: str,
        kind: str,
        compute: Callable[[], Any],
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> Tuple[Any, bool]:
        """Serve ``key`` from the store, or compute-and-store it.

        Returns ``(value, cached)``; ``cached`` is True when the value
        came from disk without calling ``compute``.  ``encode``/
        ``decode`` convert between the value and its JSON payload
        (identity when omitted).
        """
        payload = self.get(key, kind)
        if payload is not None:
            return (decode(payload) if decode else payload), True
        value = compute()
        self.put(key, kind, encode(value) if encode else value)
        return value, False

    # ------------------------------------------------------------------
    # Typed convenience wrappers for the common artifact kinds
    # ------------------------------------------------------------------
    def put_report(self, key: str, report: CoverageReport) -> Path:
        """Store a :class:`CoverageReport` under ``key``."""
        return self.put(key, KIND_COVERAGE_REPORT, encode_report(report))

    def get_report(self, key: str) -> Optional[CoverageReport]:
        """Load a :class:`CoverageReport`, or None on miss."""
        payload = self.get(key, KIND_COVERAGE_REPORT)
        return decode_report(payload) if payload is not None else None

    def put_patterns(self, key: str, patterns: List[Dict[str, int]]) -> Path:
        """Store a generated pattern set under ``key``."""
        return self.put(key, KIND_PATTERNS, encode_patterns(patterns))

    def get_patterns(self, key: str) -> Optional[List[Dict[str, int]]]:
        """Load a pattern set, or None on miss."""
        payload = self.get(key, KIND_PATTERNS)
        return decode_patterns(payload) if payload is not None else None

    def put_manifest(self, key: str, manifest: RunManifest) -> Path:
        """Store a :class:`RunManifest` under ``key``."""
        return self.put(key, KIND_RUN_MANIFEST, encode_manifest(manifest))

    def get_manifest(self, key: str) -> Optional[RunManifest]:
        """Load a :class:`RunManifest`, or None on miss."""
        payload = self.get(key, KIND_RUN_MANIFEST)
        return decode_manifest(payload) if payload is not None else None

    # ------------------------------------------------------------------
    # Enumeration and eviction
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All artifact keys currently on disk (sorted for determinism)."""
        if not self.objects_dir.exists():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def evict(self, key: str) -> bool:
        """Remove one artifact; True when a file was actually deleted."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.evicted += 1
        telemetry.incr("store.evict")
        self._index({"op": "evict", "key": key})
        return True

    def clear(self) -> int:
        """Evict every artifact; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            if self.evict(key):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Lifecycle: pins and LRU eviction
    # ------------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect ``key`` from LRU eviction (refcounted)."""
        _check_key(key)
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Drop one pin on ``key``; unpinning an unpinned key is a no-op."""
        count = self._pins.get(key, 0) - 1
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count

    def is_pinned(self, key: str) -> bool:
        """Is ``key`` currently protected from eviction?"""
        return self._pins.get(key, 0) > 0

    @contextmanager
    def pinning(self, *keys: str) -> Iterator[None]:
        """Scope-bound pins: held inside the ``with``, released after."""
        for key in keys:
            self.pin(key)
        try:
            yield
        finally:
            for key in keys:
                self.unpin(key)

    def artifact_entries(self) -> List[Tuple[int, str, int]]:
        """``(mtime_ns, key, size_bytes)`` per artifact, oldest first.

        Artifacts that vanish mid-scan (concurrent eviction) are simply
        skipped — the listing reflects what is observably on disk.
        """
        entries: List[Tuple[int, str, int]] = []
        for key in self.keys():
            try:
                info = self.path_for(key).stat()
            except OSError:
                continue
            entries.append((info.st_mtime_ns, key, info.st_size))
        entries.sort()
        return entries

    def size_bytes(self) -> int:
        """Total bytes currently held under ``objects/``."""
        return sum(size for _, _, size in self.artifact_entries())

    def enforce_budget(
        self,
        budget_bytes: Optional[int] = None,
        protect: FrozenSet[str] = frozenset(),
    ) -> List[str]:
        """One LRU pass: evict oldest-mtime artifacts until under budget.

        Pinned keys and ``protect``-ed keys are never candidates, so an
        in-flight job's artifacts survive any budget squeeze (the pass
        may therefore legitimately end above budget).  Returns the keys
        evicted, oldest first.
        """
        budget = (
            budget_bytes
            if budget_bytes is not None
            else self.lifecycle.size_budget_bytes
        )
        if budget is None:
            return []
        entries = self.artifact_entries()
        total = sum(size for _, _, size in entries)
        evicted: List[str] = []
        for _, key, size in entries:
            if total <= budget:
                break
            if self.is_pinned(key) or key in protect:
                continue
            if self.evict(key):
                total -= size
                evicted.append(key)
        if evicted:
            telemetry.incr("store.lru_evicted", len(evicted))
        return evicted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _miss(self) -> None:
        self.stats.misses += 1
        telemetry.incr("store.miss")

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside; never raises into the caller."""
        self.stats.quarantined += 1
        telemetry.incr("store.quarantined")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.stem}.{suffix}{path.suffix}"
            os.replace(path, target)
            self._index(
                {"op": "quarantine", "file": path.name, "reason": reason}
            )
            self._bound_quarantine()
        except FileNotFoundError:
            # A concurrent reader quarantined (or a writer replaced) the
            # file between our read and the move.  The corrupt evidence
            # is already preserved or gone — nothing left to do, and
            # critically nothing to unlink: a fresh artifact may already
            # occupy the slot.
            pass
        except OSError:
            # Move failed with the file still in place (permissions,
            # cross-device, ...).  Last resort: delete so the slot can
            # be rewritten rather than poisoning every future read.
            try:
                path.unlink()
            except OSError:
                pass

    def _bound_quarantine(self) -> int:
        """Delete quarantine corpses beyond the count/age caps.

        A poisoned tenant hammering a daemon with corrupt entries must
        not be able to fill the disk via the quarantine directory, so
        corpses are bounded: anything older than
        ``quarantine_max_age_s`` goes, then the oldest beyond
        ``quarantine_max_files``.  Removals are accounted in
        ``StoreStats.quarantine_evicted``; failures are swallowed (the
        quarantine dir is best-effort evidence, never load-bearing).
        """
        policy = self.lifecycle
        try:
            entries = sorted(
                (entry.stat().st_mtime_ns, entry)
                for entry in self.quarantine_dir.iterdir()
                if entry.is_file()
            )
        except OSError:
            return 0
        doomed: List[Path] = []
        if policy.quarantine_max_age_s is not None:
            cutoff_ns = (time.time() - policy.quarantine_max_age_s) * 1e9
            doomed = [entry for mtime_ns, entry in entries if mtime_ns < cutoff_ns]
            entries = [row for row in entries if row[0] >= cutoff_ns]
        excess = len(entries) - policy.quarantine_max_files
        if excess > 0:
            doomed.extend(entry for _, entry in entries[:excess])
        removed = 0
        for entry in doomed:
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            self.stats.quarantine_evicted += removed
            telemetry.incr("store.quarantine_evicted", removed)
        return removed

    def _index(self, entry: Dict[str, Any]) -> None:
        """Append one line to the advisory put/evict journal.

        The index is a convenience for humans and tooling; the objects
        directory is the source of truth, so index write failures are
        swallowed.  Past ``LifecyclePolicy.index_max_bytes`` the file
        rotates to ``index.jsonl.1`` (replacing any previous rotation),
        so a daemon's journal disk use stays bounded at ~2x the
        threshold instead of leaking forever.
        """
        try:
            try:
                if (
                    self.index_path.stat().st_size
                    >= self.lifecycle.index_max_bytes
                ):
                    os.replace(
                        self.index_path,
                        self.index_path.parent / (self.index_path.name + ".1"),
                    )
                    self.stats.index_rotations += 1
                    telemetry.incr("store.index_rotated")
            except FileNotFoundError:
                pass
            with open(self.index_path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(entry, sort_keys=True))
                stream.write("\n")
        except OSError:
            pass
