"""Content-addressed persistence for expensive test-generation results.

``repro.store`` keeps the repo from re-paying the paper's Eq. 1 costs:
pattern sets, coverage reports, run manifests and whole campaign cells
are stored on disk keyed by :func:`repro.netlist.hashing.cache_key`
(circuit structure + engine + seed + params) and served back on any
later run — in this process or the next one.  See
:class:`~repro.store.store.ResultStore` for the layout and the
atomicity / quarantine / telemetry guarantees, and
:mod:`repro.campaign` for the orchestrator built on top.
"""

from .codecs import (
    KIND_ATPG_RESULT,
    KIND_CAMPAIGN_CELL,
    KIND_COVERAGE_REPORT,
    KIND_PATTERNS,
    KIND_RUN_MANIFEST,
    decode_fault,
    decode_manifest,
    decode_patterns,
    decode_report,
    decode_test_result,
    encode_fault,
    encode_manifest,
    encode_patterns,
    encode_report,
    encode_test_result,
)
from .store import (
    ARTIFACT_SCHEMA,
    LifecyclePolicy,
    ResultStore,
    StoreError,
    StoreStats,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "LifecyclePolicy",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "KIND_ATPG_RESULT",
    "KIND_CAMPAIGN_CELL",
    "KIND_COVERAGE_REPORT",
    "KIND_PATTERNS",
    "KIND_RUN_MANIFEST",
    "encode_fault",
    "decode_fault",
    "encode_report",
    "decode_report",
    "encode_patterns",
    "decode_patterns",
    "encode_manifest",
    "decode_manifest",
    "encode_test_result",
    "decode_test_result",
]
