"""JSON codecs for the artifact kinds the result store holds.

Every artifact the store persists is plain JSON; these helpers convert
the repo's result objects to and from that form.  Each *kind* string
carries its own schema version (``coverage-report/1`` etc.), so a
format change bumps the kind and old entries simply read as misses for
the new code — never as silently misdecoded payloads.

Determinism note: encoding is canonical (fault lists keep their order,
first-detection rows are sorted by fault index), so encoding the same
result twice yields byte-identical JSON — which is what lets the CI
campaign gate diff cold and warm summaries byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..faults.stuck_at import Fault
from ..faultsim.coverage import CoverageReport
from ..telemetry import RunManifest

__all__ = [
    "KIND_COVERAGE_REPORT",
    "KIND_PATTERNS",
    "KIND_RUN_MANIFEST",
    "KIND_ATPG_RESULT",
    "KIND_CAMPAIGN_CELL",
    "encode_fault",
    "decode_fault",
    "encode_report",
    "decode_report",
    "encode_patterns",
    "decode_patterns",
    "encode_manifest",
    "decode_manifest",
    "encode_test_result",
    "decode_test_result",
]

#: Artifact kinds (each tag embeds its payload schema version).
KIND_COVERAGE_REPORT = "coverage-report/1"
KIND_PATTERNS = "patterns/1"
KIND_RUN_MANIFEST = "run-manifest/1"
KIND_ATPG_RESULT = "atpg-result/1"
KIND_CAMPAIGN_CELL = "campaign-cell/1"


# ----------------------------------------------------------------------
# Faults and coverage reports
# ----------------------------------------------------------------------
def encode_fault(fault: Fault) -> List[Any]:
    """``[net, value, gate, pin]`` — gate/pin null for stem faults."""
    return [fault.net, fault.value, fault.gate, fault.pin]


def decode_fault(data: Sequence[Any]) -> Fault:
    """Rebuild a :class:`Fault` from :func:`encode_fault` output."""
    net, value, gate, pin = data
    return Fault(net, value, gate=gate, pin=pin)


def encode_report(report: CoverageReport) -> Dict[str, Any]:
    """Coverage report → JSON dict (fault order preserved)."""
    index_of = {fault: i for i, fault in enumerate(report.faults)}
    first = sorted(
        [index_of[fault], pattern_index]
        for fault, pattern_index in report.first_detection.items()
    )
    return {
        "circuit_name": report.circuit_name,
        "num_patterns": report.num_patterns,
        "faults": [encode_fault(f) for f in report.faults],
        "first_detection": first,
    }


def decode_report(data: Dict[str, Any]) -> CoverageReport:
    """Rebuild a :class:`CoverageReport` from :func:`encode_report`."""
    faults = [decode_fault(row) for row in data["faults"]]
    report = CoverageReport(
        circuit_name=data["circuit_name"],
        num_patterns=data["num_patterns"],
        faults=faults,
    )
    for fault_index, pattern_index in data["first_detection"]:
        report.first_detection[faults[fault_index]] = pattern_index
    return report


# ----------------------------------------------------------------------
# Pattern sets and manifests
# ----------------------------------------------------------------------
def encode_patterns(patterns: Sequence[Dict[str, int]]) -> List[Dict[str, int]]:
    """Pattern set → JSON list (dict copies, nothing shared)."""
    return [dict(pattern) for pattern in patterns]


def decode_patterns(data: Sequence[Dict[str, int]]) -> List[Dict[str, int]]:
    """Rebuild a pattern list (values coerced back to int)."""
    return [{net: int(value) for net, value in row.items()} for row in data]


def encode_manifest(manifest: RunManifest) -> Dict[str, Any]:
    """Run manifest → JSON dict (delegates to the manifest itself)."""
    return manifest.to_dict()


def decode_manifest(data: Optional[Dict[str, Any]]) -> Optional[RunManifest]:
    """Rebuild a :class:`RunManifest`; passes ``None`` through."""
    if data is None:
        return None
    return RunManifest.from_dict(data)


# ----------------------------------------------------------------------
# Full ATPG results (what `generate_tests` returns)
# ----------------------------------------------------------------------
def encode_test_result(result: Any) -> Dict[str, Any]:
    """:class:`~repro.atpg.api.TestGenerationResult` → JSON dict."""
    return {
        "circuit_name": result.circuit_name,
        "method": result.method,
        "patterns": encode_patterns(result.patterns),
        "report": encode_report(result.report),
        "redundant": [encode_fault(f) for f in result.redundant],
        "aborted": [encode_fault(f) for f in result.aborted],
        "total_backtracks": result.total_backtracks,
        "random_phase_patterns": result.random_phase_patterns,
        "manifest": (
            encode_manifest(result.manifest)
            if result.manifest is not None
            else None
        ),
    }


def decode_test_result(data: Dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.atpg.api.TestGenerationResult`."""
    from ..atpg.api import TestGenerationResult

    return TestGenerationResult(
        circuit_name=data["circuit_name"],
        method=data["method"],
        patterns=decode_patterns(data["patterns"]),
        report=decode_report(data["report"]),
        redundant=[decode_fault(row) for row in data["redundant"]],
        aborted=[decode_fault(row) for row in data["aborted"]],
        total_backtracks=data["total_backtracks"],
        random_phase_patterns=data["random_phase_patterns"],
        manifest=decode_manifest(data.get("manifest")),
    )
