"""Ad hoc partitioning: degating and divide-and-conquer (§III-A).

Because test generation cost grows like ``N**3`` (Eq. 1), cutting a
network into independently testable pieces wins cubically.  Three
mechanisms from the paper:

* **mechanical partition** — split the netlist, pay for jumpers/pins;
* **degating** (Fig. 2) — AND/OR gates let a control line disconnect
  one module's outputs and substitute tester-driven values;
* **oscillator degating** (Fig. 3) — the special case everyone hits:
  block the free-running oscillator and substitute a tester-controlled
  pseudo-clock so dc testing can be synchronized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType


@dataclass
class DegatedDesign:
    """A netlist with degating inserted on selected nets.

    ``DEGATE = 1`` is normal operation; ``DEGATE = 0`` disconnects each
    degated net's driver and substitutes its ``CTRL_*`` primary input.
    """

    circuit: Circuit
    original: Circuit
    degate_input: str
    control_inputs: Dict[str, str]  # original net -> control PI

    @property
    def extra_gates(self) -> int:
        """Extra gates."""
        return len(self.circuit) - len(self.original)

    @property
    def extra_pins(self) -> int:
        """Extra pins."""
        return 1 + len(self.control_inputs)


def insert_degating(
    circuit: Circuit,
    nets: Sequence[str],
    degate_input: str = "DEGATE",
) -> DegatedDesign:
    """Insert Fig. 2 degating logic on the given nets."""
    for net in nets:
        if net not in circuit:
            raise NetlistError(f"net {net!r} not in circuit")
        if circuit.is_input(net):
            raise NetlistError(f"{net!r} is a primary input; degating is moot")
    degated = Circuit(f"{circuit.name}_degated")
    for pi in circuit.inputs:
        degated.add_input(pi)
    degated.add_input(degate_input)
    degated.not_(degate_input, f"__{degate_input}_b")

    control_inputs: Dict[str, str] = {}
    replacement: Dict[str, str] = {}
    for net in nets:
        control = f"CTRL_{net}"
        degated.add_input(control)
        control_inputs[net] = control
        replacement[net] = f"__{net}_degated"

    for gate in circuit.gates:
        inputs = [replacement.get(n, n) for n in gate.inputs]
        degated.add_gate(gate.kind, inputs, gate.output, gate.name)

    for net in nets:
        blocked = f"__{net}_blk"
        injected = f"__{net}_inj"
        degated.and_([net, degate_input], blocked)
        degated.and_([control_inputs[net], f"__{degate_input}_b"], injected)
        degated.or_([blocked, injected], replacement[net])

    for po in circuit.outputs:
        degated.add_output(replacement.get(po, po))
    degated.validate()
    return DegatedDesign(degated, circuit, degate_input, control_inputs)


def degate_oscillator(
    circuit: Circuit,
    oscillator_net: str,
    degate_input: str = "OSC_DEGATE",
    pseudo_clock: str = "PSEUDO_CLK",
) -> DegatedDesign:
    """Fig. 3: block a free-running oscillator, substitute a tester clock.

    ``oscillator_net`` must be a primary input here (the oscillator
    module itself is off-netlist); its readers are rewired through the
    degate structure.
    """
    if not circuit.is_input(oscillator_net):
        raise NetlistError("model the oscillator as a primary input")
    degated = Circuit(f"{circuit.name}_oscdegated")
    for pi in circuit.inputs:
        degated.add_input(pi)
    degated.add_input(degate_input)
    degated.add_input(pseudo_clock)
    degated.not_(degate_input, "__osc_deg_b")
    gated = f"__{oscillator_net}_gated"
    degated.and_([oscillator_net, degate_input], "__osc_blk")
    degated.and_([pseudo_clock, "__osc_deg_b"], "__osc_inj")
    degated.or_(["__osc_blk", "__osc_inj"], gated)
    for gate in circuit.gates:
        inputs = [gated if n == oscillator_net else n for n in gate.inputs]
        degated.add_gate(gate.kind, inputs, gate.output, gate.name)
    for po in circuit.outputs:
        degated.add_output(po)
    degated.validate()
    return DegatedDesign(
        degated, circuit, degate_input, {oscillator_net: pseudo_clock}
    )


@dataclass
class PartitionPlan:
    """A mechanical partition of a netlist into independent pieces."""

    pieces: List[Circuit]
    jumper_nets: List[str]  # nets cut: outputs of one piece, inputs of another

    @property
    def extra_pins(self) -> int:
        # Each cut net leaves one piece and enters another: 2 pins.
        """Extra pins."""
        return 2 * len(self.jumper_nets)

    def cost_model_gain(self, exponent: float = 3.0) -> float:
        """Test-cost ratio whole/partitioned under T = K N^e."""
        whole = sum(len(p) for p in self.pieces) ** exponent
        parts = sum(len(p) ** exponent for p in self.pieces)
        return whole / parts if parts else 1.0


def mechanical_partition(circuit: Circuit, parts: int) -> PartitionPlan:
    """Split a combinational netlist into ``parts`` level-contiguous slabs.

    Gates are ordered topologically and divided into equal chunks; any
    net crossing a chunk boundary becomes a jumper (an output of the
    earlier piece and an input of the later one) — the paper's off-board
    wire trick, with its I/O-pin cost made explicit.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    order = circuit.topological_order()
    if not order:
        raise NetlistError("nothing to partition")
    chunk = (len(order) + parts - 1) // parts
    assignments: Dict[str, int] = {}
    for index, gate in enumerate(order):
        assignments[gate.name] = index // chunk

    pieces: List[Circuit] = []
    jumpers: List[str] = []
    jumper_set = set()
    for piece_index in range(parts):
        piece = Circuit(f"{circuit.name}_part{piece_index}")
        members = [g for g in order if assignments[g.name] == piece_index]
        if not members:
            continue
        member_outputs = {g.output for g in members}
        external: List[str] = []
        for gate in members:
            for net in gate.inputs:
                if net not in member_outputs and net not in external:
                    external.append(net)
        for net in external:
            piece.add_input(net)
            if not circuit.is_input(net) and net not in jumper_set:
                jumper_set.add(net)
                jumpers.append(net)
        for gate in members:
            piece.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
        for net in member_outputs:
            crosses = net in circuit.outputs or any(
                assignments[reader.name] != piece_index
                for reader in circuit.fanout_of(net)
            )
            if crosses:
                piece.add_output(net)
        piece.validate()
        pieces.append(piece)
    return PartitionPlan(pieces, jumpers)
