"""Bus-architecture boards (§III-C, Fig. 6).

A bus-structured board exposes its data/address buses at the edge; any
module can be three-stated off the bus, after which the bus drives the
remaining module "as if it were a primary input."  The model here is at
the board level: modules are netlists with declared bus ports; the
:class:`BusBoard` resolves tri-state contention, isolates modules, and
reproduces the paper's bus-fault localization problem (a stuck bus wire
implicates *every* attached module).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..sim.logic import LogicSimulator


class BusValue(enum.Enum):
    """BusValue: see the module docstring for context."""
    FLOATING = "Z"
    CONFLICT = "!"


@dataclass
class BusPort:
    """A module's attachment to a bus: which outputs drive which lines."""

    bus: str
    nets: List[str]  # module output nets, one per bus line
    direction: str = "out"  # "out" (tri-state driver) or "in" (receiver)


@dataclass
class BusModule:
    """One chip on the board: a netlist plus its bus ports."""

    name: str
    circuit: Circuit
    ports: List[BusPort] = field(default_factory=list)
    enabled: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for port in self.ports:
            if port.direction == "out":
                self.enabled.setdefault(port.bus, True)

    def driving_ports(self) -> List[BusPort]:
        """Driving ports."""
        return [
            p
            for p in self.ports
            if p.direction == "out" and self.enabled.get(p.bus, False)
        ]

    def receiving_ports(self) -> List[BusPort]:
        """Receiving ports."""
        return [p for p in self.ports if p.direction == "in"]


class BusBoard:
    """A board of modules sharing tri-state buses."""

    def __init__(self, name: str = "board") -> None:
        self.name = name
        self.buses: Dict[str, int] = {}  # name -> width
        self.modules: Dict[str, BusModule] = {}
        self.external_access: Set[str] = set()
        self.stuck_lines: Dict[Tuple[str, int], int] = {}

    def add_bus(self, name: str, width: int, external: bool = True) -> None:
        """Add bus."""
        self.buses[name] = width
        if external:
            self.external_access.add(name)

    def add_module(self, module: BusModule) -> None:
        """Add module."""
        for port in module.ports:
            if port.bus not in self.buses:
                raise NetlistError(f"unknown bus {port.bus!r}")
            if len(port.nets) != self.buses[port.bus]:
                raise NetlistError(
                    f"{module.name}.{port.bus}: {len(port.nets)} nets for a "
                    f"{self.buses[port.bus]}-wide bus"
                )
        self.modules[module.name] = module

    # -- tri-state control -------------------------------------------------
    def set_enable(self, module: str, bus: str, enabled: bool) -> None:
        """Set enable."""
        self.modules[module].enabled[bus] = enabled

    def isolate(self, module: str) -> None:
        """Three-state every *other* module off every bus (§III-C)."""
        for name, mod in self.modules.items():
            for port in mod.ports:
                if port.direction == "out":
                    mod.enabled[port.bus] = name == module

    def inject_stuck_line(self, bus: str, line: int, value: int) -> None:
        """A stuck fault on the bus trace itself."""
        self.stuck_lines[(bus, line)] = value

    def clear_faults(self) -> None:
        """Remove every injected fault."""
        self.stuck_lines.clear()

    # -- resolution ----------------------------------------------------------
    def resolve_bus(
        self,
        bus: str,
        module_outputs: Mapping[str, Mapping[str, int]],
        external_drive: Optional[Sequence[int]] = None,
    ) -> List[object]:
        """Resolve one bus's line values.

        ``module_outputs[mod][net]`` are the computed output values of
        each module; ``external_drive`` (tester) counts as one more
        driver when the bus is externally accessible.  Returns a list
        of 0/1, ``BusValue.FLOATING`` or ``BusValue.CONFLICT``.
        """
        width = self.buses[bus]
        drivers_per_line: List[List[int]] = [[] for _ in range(width)]
        for module in self.modules.values():
            for port in module.driving_ports():
                if port.bus != bus:
                    continue
                outputs = module_outputs.get(module.name, {})
                for line, net in enumerate(port.nets):
                    if net in outputs:
                        drivers_per_line[line].append(outputs[net])
        if external_drive is not None:
            if bus not in self.external_access:
                raise NetlistError(f"bus {bus!r} has no external access")
            for line, value in enumerate(external_drive):
                if value is not None:
                    drivers_per_line[line].append(value)
        resolved: List[object] = []
        for line, drivers in enumerate(drivers_per_line):
            if (bus, line) in self.stuck_lines:
                resolved.append(self.stuck_lines[(bus, line)])
                continue
            values = set(drivers)
            if not drivers:
                resolved.append(BusValue.FLOATING)
            elif len(values) > 1:
                resolved.append(BusValue.CONFLICT)
            else:
                resolved.append(drivers[0])
        return resolved

    # -- the localization problem ----------------------------------------------
    def suspects_for_stuck_line(self, bus: str) -> List[str]:
        """Who might be holding the bus?  Everyone attached, plus the trace.

        The paper: "If a bus wire is stuck, any module or the bus trace
        itself may be the culprit... Isolating a bus failure may require
        current measurements."
        """
        suspects = [
            module.name
            for module in self.modules.values()
            if any(p.bus == bus and p.direction == "out" for p in module.ports)
        ]
        return sorted(suspects) + ["<bus trace>"]

    def test_module_in_isolation(
        self,
        module_name: str,
        patterns: Sequence[Mapping[str, int]],
    ) -> List[Dict[str, int]]:
        """Drive one module through the external bus access.

        With every other module three-stated, the tester owns the buses
        and the module is tested "as if [the bus] were a primary input".
        Returns the module's output responses.
        """
        self.isolate(module_name)
        module = self.modules[module_name]
        sim = LogicSimulator(module.circuit)
        responses = []
        for pattern in patterns:
            values = sim.run(
                {
                    net: pattern.get(net, 0)
                    for net in sim.free_nets
                }
            )
            responses.append(
                {net: values[net] for net in module.circuit.outputs}
            )
        return responses
