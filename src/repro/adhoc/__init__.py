"""Ad hoc DFT: partitioning, test points, buses, bed-of-nails, signature
analysis at the board level."""

from .partition import (
    DegatedDesign,
    insert_degating,
    degate_oscillator,
    PartitionPlan,
    mechanical_partition,
)
from .test_points import (
    TestPointPlan,
    add_observation_points,
    add_control_points,
    add_clear_line,
    decoder_control_points,
    select_test_points,
)
from .bus import BusValue, BusPort, BusModule, BusBoard
from .bed_of_nails import Board, BoardModule, NailContact, BedOfNailsTester
from .sigboard import (
    SignatureBoard,
    SignatureAnalyzer,
    probe_order,
    diagnose,
    module_loop_check,
    jumpers_to_break_loops,
)

__all__ = [
    "DegatedDesign",
    "insert_degating",
    "degate_oscillator",
    "PartitionPlan",
    "mechanical_partition",
    "TestPointPlan",
    "add_observation_points",
    "add_control_points",
    "add_clear_line",
    "decoder_control_points",
    "select_test_points",
    "BusValue",
    "BusPort",
    "BusModule",
    "BusBoard",
    "Board",
    "BoardModule",
    "NailContact",
    "BedOfNailsTester",
    "SignatureBoard",
    "SignatureAnalyzer",
    "probe_order",
    "diagnose",
    "module_loop_check",
    "jumpers_to_break_loops",
]
