"""Test points: extra inputs and outputs for hard nets (§III-B, Fig. 4).

A test point used as a primary output buys observability; used as a
primary input (behind degating) it buys controllability; a CLEAR/PRESET
pin buys *predictability* — "the sequential machine can be put into a
known state with very few patterns."  Selection is driven by the
testability measures of §II, closing the loop the paper describes:
run the analysis program, then fix what it flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..testability.scoap import TestabilityReport, analyze


@dataclass
class TestPointPlan:
    """Chosen control/observe points and the instrumented netlist."""

    circuit: Circuit
    original: Circuit
    observe_points: List[str]
    control_points: Dict[str, str]  # net -> control PI
    test_mode_input: Optional[str]

    @property
    def extra_pins(self) -> int:
        """Extra pins."""
        pins = len(self.observe_points) + len(self.control_points)
        if self.test_mode_input:
            pins += 1
        return pins

    @property
    def extra_gates(self) -> int:
        """Extra gates."""
        return len(self.circuit) - len(self.original)


def add_observation_points(circuit: Circuit, nets: Sequence[str]) -> Circuit:
    """Expose internal nets as primary outputs (buffered)."""
    result = circuit.copy(f"{circuit.name}_obs")
    for net in nets:
        if net not in result:
            raise NetlistError(f"net {net!r} not in circuit")
        tp = f"TP_{net}"
        result.buf(net, tp)
        result.add_output(tp)
    return result


def add_control_points(
    circuit: Circuit,
    nets: Sequence[str],
    test_mode_input: str = "TEST_MODE",
) -> TestPointPlan:
    """Insert controllability points: in test mode each chosen net is
    replaced by its ``CP_*`` primary input (a 2:1 mux in gates)."""
    for net in nets:
        if net not in circuit or circuit.is_input(net):
            raise NetlistError(f"{net!r} is not an internal net")
    instrumented = Circuit(f"{circuit.name}_cp")
    for pi in circuit.inputs:
        instrumented.add_input(pi)
    instrumented.add_input(test_mode_input)
    instrumented.not_(test_mode_input, "__tm_b")
    controls: Dict[str, str] = {}
    replacement: Dict[str, str] = {}
    for net in nets:
        control = f"CP_{net}"
        instrumented.add_input(control)
        controls[net] = control
        replacement[net] = f"__{net}_cp"
    for gate in circuit.gates:
        inputs = [replacement.get(n, n) for n in gate.inputs]
        instrumented.add_gate(gate.kind, inputs, gate.output, gate.name)
    for net in nets:
        instrumented.and_([net, "__tm_b"], f"__{net}_sys")
        instrumented.and_([controls[net], test_mode_input], f"__{net}_tst")
        instrumented.or_([f"__{net}_sys", f"__{net}_tst"], replacement[net])
    for po in circuit.outputs:
        instrumented.add_output(replacement.get(po, po))
    instrumented.validate()
    return TestPointPlan(
        instrumented, circuit, [], controls, test_mode_input
    )


def add_clear_line(circuit: Circuit, clear_input: str = "CLEAR") -> Circuit:
    """Synchronous CLEAR to every flip-flop (§III-B predictability).

    One pulse puts the whole machine in the all-zeros state — the
    "known state with very few patterns" the paper asks for.
    """
    if circuit.is_combinational:
        raise NetlistError("no flip-flops to clear")
    result = Circuit(f"{circuit.name}_clr")
    for pi in circuit.inputs:
        result.add_input(pi)
    result.add_input(clear_input)
    result.not_(clear_input, "__clr_b")
    for gate in circuit.gates:
        if gate.kind is GateType.DFF:
            gated = f"__{gate.name}_clrd"
            result.and_([gate.inputs[0], "__clr_b"], gated)
            result.dff(gated, gate.output, name=gate.name)
        else:
            result.add_gate(gate.kind, gate.inputs, gate.output, gate.name)
    for po in circuit.outputs:
        result.add_output(po)
    result.validate()
    return result


def decoder_control_points(
    circuit: Circuit,
    nets: Sequence[str],
    test_mode_input: str = "TEST_MODE",
) -> TestPointPlan:
    """The §III-B decoder trick: N select pins force 2**N nets.

    In test mode the select lines address one of the chosen nets and
    force it to 1 (others keep their system values), so many
    hard-to-set nets share a handful of pins.
    """
    import math

    count = len(nets)
    if count == 0:
        raise ValueError("no nets given")
    select_bits = max(1, math.ceil(math.log2(count))) if count > 1 else 1
    instrumented = Circuit(f"{circuit.name}_dcp")
    for pi in circuit.inputs:
        instrumented.add_input(pi)
    instrumented.add_input(test_mode_input)
    selects = [instrumented.add_input(f"TSEL{i}") for i in range(select_bits)]
    for i, sel in enumerate(selects):
        instrumented.not_(sel, f"__tselb{i}")
    replacement = {net: f"__{net}_forced" for net in nets}
    for gate in circuit.gates:
        inputs = [replacement.get(n, n) for n in gate.inputs]
        instrumented.add_gate(gate.kind, inputs, gate.output, gate.name)
    for index, net in enumerate(nets):
        literals = [test_mode_input]
        for bit in range(select_bits):
            literals.append(
                selects[bit] if (index >> bit) & 1 else f"__tselb{bit}"
            )
        instrumented.and_(literals, f"__dec_{net}")
        instrumented.or_([net, f"__dec_{net}"], replacement[net])
    for po in circuit.outputs:
        instrumented.add_output(replacement.get(po, po))
    instrumented.validate()
    return TestPointPlan(
        instrumented,
        circuit,
        [],
        {net: "decoder" for net in nets},
        test_mode_input,
    )


def select_test_points(
    circuit: Circuit,
    observe_budget: int,
    control_budget: int,
    report: Optional[TestabilityReport] = None,
) -> Tuple[List[str], List[str]]:
    """Pick the worst nets per the §II analysis-program workflow.

    Returns (observe_nets, control_nets): the hardest-to-observe and
    hardest-to-control internal nets within the given pin budgets.
    """
    if report is None:
        report = analyze(circuit)
    internal = [
        net
        for net in circuit.nets()
        if not circuit.is_input(net) and net not in circuit.outputs
    ]
    observe = sorted(
        internal, key=lambda n: -min(report.measures[n].co, 1e18)
    )[:observe_budget]
    control = sorted(
        internal,
        key=lambda n: -min(report.measures[n].controllability, 1e18),
    )[:control_budget]
    return observe, control
