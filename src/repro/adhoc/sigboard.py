"""Board-level Signature Analysis (§III-D, Fig. 8).

The discipline, as the paper lays it out:

* the board must **stimulate itself** (here: an on-board LFSR or
  counter drives the logic for a fixed number of clocks from a known
  reset);
* the external **signature analysis tool** — a probe feeding a 16-bit
  LFSR synchronized to the board clock — compresses each probed net's
  response into a signature;
* **closed loops must be broken** (jumpers) or an upstream culprit is
  indistinguishable from the probed module;
* probing starts from a **kernel** (the free-running stimulus source)
  and works outward.

:class:`SignatureBoard` packages a sequential netlist with its
self-stimulation; :class:`SignatureAnalyzer` is the tool;
:func:`diagnose` walks nets kernel-outward to the first bad signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..lfsr.signature import SignatureRegister
from ..lfsr.polynomials import primitive_polynomial
from ..sim.sequential import SequentialSimulator


class SignatureBoard:
    """A self-stimulating board: sequential netlist + reset + clock count.

    ``circuit`` must initialize itself: all flip-flops are reset to 0
    at the start of every measurement (the paper: "the board must also
    have some initialization, so that its response will be repeated").
    Free inputs are held at constants during self-test.
    """

    def __init__(
        self,
        circuit: Circuit,
        cycles: int,
        input_hold: Optional[Mapping[str, int]] = None,
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.circuit = circuit
        self.cycles = cycles
        self.input_hold = dict(input_hold or {})
        self.initial_state = dict(initial_state or {})
        self._stuck: Dict[str, int] = {}

    def inject_fault(self, net: str, value: int) -> None:
        """Stem stuck-at fault on a board net (the defect under test)."""
        if net not in self.circuit:
            raise NetlistError(f"net {net!r} not on board")
        self._stuck[net] = value

    def clear_faults(self) -> None:
        """Remove every injected fault."""
        self._stuck.clear()

    def trace(self, nets: Sequence[str]) -> Dict[str, List[int]]:
        """Clock the board from reset; record each listed net per cycle."""
        from ..netlist.gates import evaluate

        sim = SequentialSimulator(self.circuit)
        sim.reset(V.ZERO)
        if self.initial_state:
            sim.set_state(self.initial_state)
        order = self.circuit.topological_order()
        flops = self.circuit.flip_flops
        history: Dict[str, List[int]] = {net: [] for net in nets}
        inputs = {net: self.input_hold.get(net, 0) for net in self.circuit.inputs}
        for _ in range(self.cycles):
            net_values: Dict[str, int] = dict(inputs)
            for flop in flops:
                net_values[flop.output] = sim.state[flop.output]
            for net, value in self._stuck.items():
                if net in net_values:
                    net_values[net] = value
            for gate in order:
                value = evaluate(
                    gate.kind, tuple(net_values[n] for n in gate.inputs)
                )
                if gate.output in self._stuck:
                    value = self._stuck[gate.output]
                net_values[gate.output] = value
            for net in nets:
                history[net].append(net_values[net])
            sim.state.update(
                {flop.output: net_values[flop.inputs[0]] for flop in flops}
            )
        return history


class SignatureAnalyzer:
    """The external tool: probe + synchronized LFSR (Fig. 8)."""

    def __init__(self, bits: int = 16, poly: Optional[int] = None) -> None:
        self.register = SignatureRegister(
            poly if poly is not None else primitive_polynomial(bits)
        )

    def signature(self, stream: Sequence[int]) -> int:
        """Compress one probed net's stream; X bits count as 0.

        A real probe sees a voltage either way; modeling X as 0 keeps
        measurements repeatable, which is the tool's own requirement.
        """
        bits = [1 if b == 1 else 0 for b in stream]
        return self.register.signature_of(bits)

    def characterize(
        self, board: SignatureBoard, nets: Sequence[str]
    ) -> Dict[str, int]:
        """Golden signatures for every listed net of the good board."""
        history = board.trace(nets)
        return {net: self.signature(history[net]) for net in nets}


def probe_order(board: SignatureBoard, kernel: Sequence[str]) -> List[str]:
    """Kernel-outward probing order (§III-D).

    Start at the kernel nets (the self-stimulation source's outputs)
    and breadth-first-walk the net graph forward, so every probed net's
    upstream has been vouched for before it is blamed.
    """
    circuit = board.circuit
    order: List[str] = []
    seen: Set[str] = set()
    frontier = list(kernel)
    while frontier:
        next_frontier: List[str] = []
        for net in frontier:
            if net in seen:
                continue
            seen.add(net)
            order.append(net)
            for gate in circuit.fanout_of(net):
                if gate.output not in seen:
                    next_frontier.append(gate.output)
        frontier = next_frontier
    return order


def diagnose(
    board: SignatureBoard,
    golden: Mapping[str, int],
    kernel: Sequence[str],
    analyzer: Optional[SignatureAnalyzer] = None,
) -> Optional[str]:
    """Probe kernel-outward; return the first net with a bad signature.

    That net's driver (or the net itself) is the repair callout — valid
    only because probing order guarantees everything upstream already
    matched.
    """
    tool = analyzer or SignatureAnalyzer()
    order = [net for net in probe_order(board, kernel) if net in golden]
    history = board.trace(order)
    for net in order:
        if tool.signature(history[net]) != golden[net]:
            return net
    return None


def module_loop_check(module_graph: Mapping[str, Iterable[str]]) -> List[List[str]]:
    """Find closed loops in a module-level connection graph.

    The paper's rule one: "closed-loop paths must be broken at the
    board level."  Returns the strongly-connected components with more
    than one module (or self-loops) — each needs a jumper.
    """
    graph = nx.DiGraph()
    for module, successors in module_graph.items():
        graph.add_node(module)
        for successor in successors:
            graph.add_edge(module, successor)
    loops = []
    for component in nx.strongly_connected_components(graph):
        members = sorted(component)
        if len(members) > 1 or graph.has_edge(members[0], members[0]):
            loops.append(members)
    return loops


def jumpers_to_break_loops(
    module_graph: Mapping[str, Iterable[str]]
) -> List[Tuple[str, str]]:
    """A set of edges whose removal leaves the module graph acyclic.

    Greedy: within each cyclic SCC, repeatedly drop one edge of some
    cycle until none remain.  The count is the board's jumper overhead
    for Signature Analysis readiness.
    """
    graph = nx.DiGraph()
    for module, successors in module_graph.items():
        graph.add_node(module)
        for successor in successors:
            graph.add_edge(module, successor)
    removed: List[Tuple[str, str]] = []
    while True:
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            break
        edge = cycle[0][:2]
        graph.remove_edge(*edge)
        removed.append(edge)
    return removed
