"""Bed-of-nails / in-circuit testing (§III-B, Fig. 5).

The fixture probes the *underside of the board*: every board net gets a
nail, giving controllability and observability the edge connector never
had.  "Drive/sense nails" testing overdrives each chip's input nets and
senses its outputs, testing one chip at a time with resolution far
better than an edge test — at the price of contact reliability,
electrical loading and possible overdrive damage, all of which are
modeled as knobs here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..faults.stuck_at import Fault
from ..faultsim.parallel_pattern import FaultSimulator
from ..faultsim.coverage import CoverageReport
from ..sim.packed import PackedPatternSet, PackedSimulator


@dataclass
class BoardModule:
    """One chip instance on the board: its gates and its boundary nets."""

    name: str
    input_nets: List[str]   # board nets feeding this chip
    output_nets: List[str]  # board nets driven by this chip
    gate_names: Set[str] = field(default_factory=set)


class Board:
    """A flattened board netlist with per-chip boundary bookkeeping."""

    def __init__(self, name: str = "board") -> None:
        self.name = name
        self.circuit = Circuit(name)
        self.modules: Dict[str, BoardModule] = {}

    def place(self, instance_name: str, chip: Circuit, connections: Mapping[str, str]) -> BoardModule:
        """Instantiate ``chip`` with its PIs mapped to board nets.

        ``connections`` maps chip input names to existing board nets
        (or new board-level primary inputs).  Chip internal nets are
        prefixed by the instance name; chip outputs become board nets
        ``instance.output``.
        """
        prefix = f"{instance_name}."
        mapping: Dict[str, str] = {}
        for pin in chip.inputs:
            board_net = connections.get(pin)
            if board_net is None:
                board_net = prefix + pin
                self.circuit.add_input(board_net)
            mapping[pin] = board_net
        for gate in chip.gates:
            mapping.setdefault(gate.output, prefix + gate.output)
        gate_names = set()
        for gate in chip.gates:
            name = prefix + gate.name
            self.circuit.add_gate(
                gate.kind,
                [mapping[n] for n in gate.inputs],
                mapping[gate.output],
                name,
            )
            gate_names.add(name)
        module = BoardModule(
            instance_name,
            [mapping[p] for p in chip.inputs],
            [mapping[p] for p in chip.outputs],
            gate_names,
        )
        self.modules[instance_name] = module
        return module

    def expose_outputs(self, module: str) -> None:
        """Route a module's outputs to the board edge."""
        for net in self.modules[module].output_nets:
            if net not in self.circuit.outputs:
                self.circuit.add_output(net)

    def edge_inputs(self) -> List[str]:
        """Edge inputs."""
        return list(self.circuit.inputs)


@dataclass
class NailContact:
    """Reliability model of one probe: may fail to make contact."""

    net: str
    reliable: bool = True


class BedOfNailsTester:
    """In-circuit tester: drive and sense any board net via nails."""

    def __init__(
        self,
        board: Board,
        contact_failure_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.board = board
        rng = random.Random(seed)
        self.contacts: Dict[str, NailContact] = {
            net: NailContact(net, rng.random() >= contact_failure_rate)
            for net in board.circuit.nets()
        }
        self.overdrive_events = 0

    @property
    def nail_count(self) -> int:
        """Nail count."""
        return len(self.contacts)

    def usable_nets(self) -> List[str]:
        """Usable nets."""
        return [n for n, c in self.contacts.items() if c.reliable]

    def in_circuit_test(
        self,
        module_name: str,
        patterns: Sequence[Mapping[str, int]],
        faults: Optional[Sequence[Fault]] = None,
    ) -> CoverageReport:
        """Drive/sense-nails test of one chip, in place.

        Each pattern overdrives the chip's input nets (counted as
        overdrive events) and senses its output nets.  Realized by
        forcing those nets in a packed simulation of the whole board —
        the electrical essence of in-circuit test.  Fault list defaults
        to the module's own gates' faults.
        """
        module = self.board.modules[module_name]
        unusable = [
            net
            for net in module.input_nets + module.output_nets
            if not self.contacts[net].reliable
        ]
        if unusable:
            raise NetlistError(
                f"no reliable contact on: {', '.join(unusable[:5])}"
            )
        circuit = self.board.circuit
        if faults is None:
            from ..faults.stuck_at import all_faults

            faults = [
                f
                for f in all_faults(circuit)
                if (f.gate in module.gate_names)
                or (f.gate is None and circuit.driver_of(f.net) is not None
                    and circuit.driver_of(f.net).name in module.gate_names)
            ]
        simulator = _ForcedNetFaultSimulator(
            circuit, module.input_nets, module.output_nets, faults
        )
        self.overdrive_events += len(patterns) * len(module.input_nets)
        return simulator.run(patterns)


class _ForcedNetFaultSimulator:
    """Fault simulation with stimulus forced onto internal nets (nails)."""

    def __init__(
        self,
        circuit: Circuit,
        drive_nets: Sequence[str],
        sense_nets: Sequence[str],
        faults: Sequence[Fault],
    ) -> None:
        from ..faultsim.expand import expand_branches, fault_site_net

        self.circuit = circuit
        self.drive_nets = list(drive_nets)
        self.sense_nets = list(sense_nets)
        self.faults = list(faults)
        self.expanded, self._branch_map = expand_branches(circuit)
        self._sim = PackedSimulator(self.expanded)
        self._site = lambda f: fault_site_net(f, self._branch_map)

    def run(self, patterns: Sequence[Mapping[str, int]]) -> CoverageReport:
        """Run and collect the results."""
        report = CoverageReport(self.circuit.name, len(patterns), self.faults)
        packed = PackedPatternSet.from_patterns(
            self.circuit.inputs, [dict() for _ in patterns]
        )
        mask = packed.mask
        drive_force: Dict[str, int] = {}
        for net in self.drive_nets:
            word = 0
            for index, pattern in enumerate(patterns):
                if pattern.get(net, 0):
                    word |= 1 << index
            drive_force[net] = word
        good = self._sim.run(packed, force=drive_force)
        for fault in self.faults:
            site = self._site(fault)
            if site in drive_force:
                continue  # the nail overrides the fault: not testable here
            force = dict(drive_force)
            force[site] = mask if fault.value else 0
            faulty = self._sim.run(packed, force=force)
            detected = 0
            for net in self.sense_nets:
                detected |= (good[net] ^ faulty[net]) & mask
            if detected:
                report.first_detection[fault] = (
                    (detected & -detected).bit_length() - 1
                )
        return report
