"""Campaign specifications: which cells to run, over which axes.

A campaign is the cartesian product *workloads × flows × engines ×
fault models × seeds*.  Workloads are named builders from the circuit zoo
(:data:`WORKLOADS`); flows are ``"atpg"`` (combinational
``generate_tests``) and ``"full_scan"`` (scan-insert + core ATPG +
sequential verification via ``full_scan_flow``), with ``"auto"``
resolving per workload — sequential circuits get the scan flow,
combinational ones plain ATPG.  Cells whose flow cannot run on their
workload (scan on a flip-flop-free circuit, combinational ATPG on a
sequential one) are skipped at expansion time, and the skip is
reported, not silently dropped.

Specs are plain JSON (see :meth:`CampaignSpec.from_dict`), so a
campaign is a reviewable, diffable artifact; :data:`demo_spec` is the
built-in 2 workloads × 2 engines spec the CLI and CI smoke run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..faults.models import FaultModel
from ..circuits import (
    alu74181,
    binary_counter,
    c17,
    full_adder,
    majority3,
    parity_tree,
    registered_alu74181,
    ripple_carry_adder,
    shift_register,
)

__all__ = [
    "WORKLOADS",
    "FLOWS",
    "build_workload",
    "CampaignCell",
    "CampaignSpec",
    "demo_spec",
]

#: Named zero-argument circuit builders the campaign runner understands.
WORKLOADS: Dict[str, Callable[[], Circuit]] = {
    "c17": c17,
    "majority3": majority3,
    "parity8": lambda: parity_tree(8),
    "full_adder": full_adder,
    "ripple4": lambda: ripple_carry_adder(4),
    "alu74181": alu74181,
    "shift_register4": lambda: shift_register(4),
    "binary_counter4": lambda: binary_counter(4),
    "registered_alu74181": registered_alu74181,
}

#: Flow names a cell can carry after ``"auto"`` resolution.
FLOWS = ("atpg", "full_scan")


def build_workload(name: str) -> Circuit:
    """Build a named zoo circuit; raises with the available names."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return builder()


@dataclass(frozen=True)
class CampaignCell:
    """One (workload, flow, engine, fault model, seed) grid point."""

    workload: str
    flow: str
    engine: str
    seed: int
    fault_model: str = "stuck_at"

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity used in checkpoints/JSONL."""
        return (
            f"{self.workload}:{self.flow}:{self.engine}:"
            f"{self.fault_model}:{self.seed}"
        )


@dataclass
class CampaignSpec:
    """Axes plus shared flow parameters for one campaign."""

    name: str
    workloads: List[str]
    engines: List[str]
    seeds: List[int] = field(default_factory=lambda: [0])
    flows: List[str] = field(default_factory=lambda: ["auto"])
    fault_models: List[str] = field(default_factory=lambda: ["stuck_at"])
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for workload in self.workloads:
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r}; "
                    f"available: {sorted(WORKLOADS)}"
                )
        for flow in self.flows:
            if flow not in FLOWS and flow != "auto":
                raise ValueError(
                    f"unknown flow {flow!r}; available: {FLOWS + ('auto',)}"
                )
        valid_models = [model.value for model in FaultModel]
        for fault_model in self.fault_models:
            if fault_model not in valid_models:
                raise ValueError(
                    f"unknown fault model {fault_model!r}; "
                    f"available: {valid_models}"
                )

    # ------------------------------------------------------------------
    # Cell expansion
    # ------------------------------------------------------------------
    def expand(self) -> Tuple[List[CampaignCell], List[CampaignCell]]:
        """Expand the axes into ``(cells, skipped)`` in deterministic order.

        ``skipped`` holds incompatible combinations — flow vs. workload
        sequentiality, and full-scan cells under non-stuck-at fault
        models (the scan flow's sequential verifier and single-capture
        schedule only grade stuck-at; see
        :func:`repro.scan.flow.full_scan_flow`) — so callers can report
        them.
        """
        sequential = {
            name: not build_workload(name).is_combinational
            for name in self.workloads
        }
        cells: List[CampaignCell] = []
        skipped: List[CampaignCell] = []
        for workload in self.workloads:
            for flow in self.flows:
                resolved = flow
                if flow == "auto":
                    resolved = "full_scan" if sequential[workload] else "atpg"
                for engine in self.engines:
                    for fault_model in self.fault_models:
                        for seed in self.seeds:
                            cell = CampaignCell(
                                workload, resolved, engine, seed, fault_model
                            )
                            compatible = (
                                sequential[workload]
                                if resolved == "full_scan"
                                else not sequential[workload]
                            )
                            if (
                                resolved == "full_scan"
                                and fault_model != FaultModel.STUCK_AT.value
                            ):
                                compatible = False
                            (cells if compatible else skipped).append(cell)
        return cells, skipped

    def cells(self) -> List[CampaignCell]:
        """The runnable cells (see :meth:`expand`)."""
        return self.expand()[0]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "flows": list(self.flows),
            "fault_models": list(self.fault_models),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Build a spec from its JSON form, rejecting unknown keys."""
        known = {
            "name",
            "workloads",
            "engines",
            "seeds",
            "flows",
            "fault_models",
            "params",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {unknown}")
        return cls(
            name=data["name"],
            workloads=list(data["workloads"]),
            engines=list(data["engines"]),
            seeds=list(data.get("seeds", [0])),
            flows=list(data.get("flows", ["auto"])),
            fault_models=list(data.get("fault_models", ["stuck_at"])),
            params=dict(data.get("params", {})),
        )

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a JSON spec file."""
        import json

        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


def demo_spec() -> CampaignSpec:
    """The built-in 2 workloads × 2 engines demo campaign (4 cells).

    Small enough for CI to run twice in one job, wide enough to cover
    both flows (c17 → combinational ATPG, the 4-bit shift register →
    full scan) and two independent fault-simulation engines.
    """
    return CampaignSpec(
        name="demo",
        workloads=["c17", "shift_register4"],
        engines=["parallel_pattern", "deductive"],
        seeds=[0],
        flows=["auto"],
        params={"method": "podem", "random_phase": 8},
    )
