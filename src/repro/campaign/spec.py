"""Campaign specifications: which cells to run, over which axes.

A campaign is the cartesian product *workloads × flows × engines ×
seeds*.  Workloads are named builders from the circuit zoo
(:data:`WORKLOADS`); flows are ``"atpg"`` (combinational
``generate_tests``) and ``"full_scan"`` (scan-insert + core ATPG +
sequential verification via ``full_scan_flow``), with ``"auto"``
resolving per workload — sequential circuits get the scan flow,
combinational ones plain ATPG.  Cells whose flow cannot run on their
workload (scan on a flip-flop-free circuit, combinational ATPG on a
sequential one) are skipped at expansion time, and the skip is
reported, not silently dropped.

Specs are plain JSON (see :meth:`CampaignSpec.from_dict`), so a
campaign is a reviewable, diffable artifact; :data:`demo_spec` is the
built-in 2 workloads × 2 engines spec the CLI and CI smoke run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..circuits import (
    alu74181,
    binary_counter,
    c17,
    full_adder,
    majority3,
    parity_tree,
    registered_alu74181,
    ripple_carry_adder,
    shift_register,
)

__all__ = [
    "WORKLOADS",
    "FLOWS",
    "build_workload",
    "CampaignCell",
    "CampaignSpec",
    "demo_spec",
]

#: Named zero-argument circuit builders the campaign runner understands.
WORKLOADS: Dict[str, Callable[[], Circuit]] = {
    "c17": c17,
    "majority3": majority3,
    "parity8": lambda: parity_tree(8),
    "full_adder": full_adder,
    "ripple4": lambda: ripple_carry_adder(4),
    "alu74181": alu74181,
    "shift_register4": lambda: shift_register(4),
    "binary_counter4": lambda: binary_counter(4),
    "registered_alu74181": registered_alu74181,
}

#: Flow names a cell can carry after ``"auto"`` resolution.
FLOWS = ("atpg", "full_scan")


def build_workload(name: str) -> Circuit:
    """Build a named zoo circuit; raises with the available names."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return builder()


@dataclass(frozen=True)
class CampaignCell:
    """One (workload, flow, engine, seed) point of the campaign grid."""

    workload: str
    flow: str
    engine: str
    seed: int

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity used in checkpoints/JSONL."""
        return f"{self.workload}:{self.flow}:{self.engine}:{self.seed}"


@dataclass
class CampaignSpec:
    """Axes plus shared flow parameters for one campaign."""

    name: str
    workloads: List[str]
    engines: List[str]
    seeds: List[int] = field(default_factory=lambda: [0])
    flows: List[str] = field(default_factory=lambda: ["auto"])
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for workload in self.workloads:
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r}; "
                    f"available: {sorted(WORKLOADS)}"
                )
        for flow in self.flows:
            if flow not in FLOWS and flow != "auto":
                raise ValueError(
                    f"unknown flow {flow!r}; available: {FLOWS + ('auto',)}"
                )

    # ------------------------------------------------------------------
    # Cell expansion
    # ------------------------------------------------------------------
    def expand(self) -> Tuple[List[CampaignCell], List[CampaignCell]]:
        """Expand the axes into ``(cells, skipped)`` in deterministic order.

        ``skipped`` holds incompatible combinations (flow vs. workload
        sequentiality) so callers can report them.
        """
        sequential = {
            name: not build_workload(name).is_combinational
            for name in self.workloads
        }
        cells: List[CampaignCell] = []
        skipped: List[CampaignCell] = []
        for workload in self.workloads:
            for flow in self.flows:
                resolved = flow
                if flow == "auto":
                    resolved = "full_scan" if sequential[workload] else "atpg"
                for engine in self.engines:
                    for seed in self.seeds:
                        cell = CampaignCell(workload, resolved, engine, seed)
                        compatible = (
                            sequential[workload]
                            if resolved == "full_scan"
                            else not sequential[workload]
                        )
                        (cells if compatible else skipped).append(cell)
        return cells, skipped

    def cells(self) -> List[CampaignCell]:
        """The runnable cells (see :meth:`expand`)."""
        return self.expand()[0]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "flows": list(self.flows),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Build a spec from its JSON form, rejecting unknown keys."""
        known = {"name", "workloads", "engines", "seeds", "flows", "params"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {unknown}")
        return cls(
            name=data["name"],
            workloads=list(data["workloads"]),
            engines=list(data["engines"]),
            seeds=list(data.get("seeds", [0])),
            flows=list(data.get("flows", ["auto"])),
            params=dict(data.get("params", {})),
        )

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a JSON spec file."""
        import json

        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


def demo_spec() -> CampaignSpec:
    """The built-in 2 workloads × 2 engines demo campaign (4 cells).

    Small enough for CI to run twice in one job, wide enough to cover
    both flows (c17 → combinational ATPG, the 4-bit shift register →
    full scan) and two independent fault-simulation engines.
    """
    return CampaignSpec(
        name="demo",
        workloads=["c17", "shift_register4"],
        engines=["parallel_pattern", "deductive"],
        seeds=[0],
        flows=["auto"],
        params={"method": "podem", "random_phase": 8},
    )
