"""Campaign orchestration: spec → cells → memoized, resumable runs.

A *campaign* sweeps the circuit zoo across fault-simulation engines,
flows and seeds — the regression-style workload the paper's cost model
says dominates a design's life — and persists every cell through the
content-addressed :mod:`repro.store`, so repeated runs (CI, benchmarks,
examples) stop re-paying for results that have not changed.  Drive it
programmatically through :class:`CampaignRunner` or from the shell via
``python -m repro campaign run|status|clean``.
"""

from .spec import (
    FLOWS,
    WORKLOADS,
    CampaignCell,
    CampaignSpec,
    build_workload,
    demo_spec,
)
from .runner import (
    CampaignResult,
    CampaignRunner,
    CellResult,
    cell_cache_key,
    decode_cell_result,
    encode_cell_result,
    execute_cell,
    render_summary,
)

__all__ = [
    "FLOWS",
    "WORKLOADS",
    "CampaignCell",
    "CampaignSpec",
    "build_workload",
    "demo_spec",
    "CampaignResult",
    "CampaignRunner",
    "CellResult",
    "cell_cache_key",
    "encode_cell_result",
    "decode_cell_result",
    "execute_cell",
    "render_summary",
]
