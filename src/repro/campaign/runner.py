"""Resumable, store-memoized campaign execution.

The runner walks a :class:`~repro.campaign.spec.CampaignSpec`'s cell
grid in deterministic order and pushes every cell through the existing
flows — ``generate_tests`` for combinational ATPG cells,
``full_scan_flow`` for scan cells — with ``workers=N`` sharding inside
each cell.  Each cell is memoized through the content-addressed
:class:`~repro.store.ResultStore` under its
:func:`~repro.netlist.hashing.cache_key`, so:

* a **warm** re-run performs *zero* fault-simulation work — every cell
  is served from disk, visible in the campaign manifest as
  ``store.hit == cells`` and the complete absence of ``atpg.*`` /
  fault-sim counters;
* an **interrupted** cold run resumes where it stopped — the
  checkpoint file (updated atomically after every cell) records
  completed cells, and re-running recomputes only the missing ones
  (the completed prefix comes back as store hits).

Every run (re)writes three files under
``<store>/campaigns/<name>/``: ``summary.txt`` (deterministic table,
no timings — cold and warm runs produce byte-identical bytes),
``cells.jsonl`` (one line per cell with its stats and full run
manifest), and ``manifest.json`` (the campaign's own validated
:class:`~repro.telemetry.RunManifest`, whose counters carry the
store's hit/miss/quarantine behaviour).

**Fault tolerance** (see :mod:`repro.resilience`): each cell runs
under a bounded retry budget with jittered backoff; a cell that keeps
failing is handled per :class:`~repro.resilience.FailurePolicy` —
``raise`` (default) propagates, ``quarantine``/``degrade`` record a
:class:`~repro.resilience.FailureRecord` in the checkpoint's
``failed`` map and the manifest's validated ``failures`` section and
move on.  Failed cells are re-attempted on every resume.  A truncated
or corrupt checkpoint never loses progress: completed cells are
rebuilt by probing the content-addressed store
(``campaign.checkpoint.rebuilt``).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import telemetry
from ..netlist.circuit import Circuit
from ..netlist.hashing import cache_key
from ..faultsim.coverage import CoverageReport
from ..resilience import (
    ChaosConfig,
    FailurePolicy,
    FailureRecord,
    RetryPolicy,
    failure_record,
)
from ..store import ResultStore
from ..store.codecs import (
    KIND_CAMPAIGN_CELL,
    decode_manifest,
    decode_patterns,
    decode_report,
    encode_manifest,
    encode_patterns,
    encode_report,
)
from .spec import CampaignCell, CampaignSpec, build_workload

__all__ = ["CellResult", "CampaignResult", "CampaignRunner"]

CHECKPOINT_SCHEMA = "repro.campaign-checkpoint/1"

#: spec.params keys forwarded to generate_tests (atpg cells).
_ATPG_PARAMS = ("method", "random_phase", "backtrack_limit", "compact",
                "reverse_compact")
#: spec.params keys forwarded to full_scan_flow (scan cells).
_SCAN_PARAMS = ("method", "random_phase", "fault_limit", "sample_seed",
                "fill", "flush", "reverse_compact")


@dataclass
class CellResult:
    """Everything one campaign cell produced (computed or loaded)."""

    cell: CampaignCell
    key: str
    patterns: List[Dict[str, int]]
    report: Optional[CoverageReport]
    manifest: telemetry.RunManifest
    core_manifest: Optional[telemetry.RunManifest]
    stats: Dict[str, Any]
    duration_s: float
    cached: bool = False

    @property
    def coverage(self) -> Optional[float]:
        """The cell's headline coverage (None when unverified)."""
        return self.stats.get("coverage")


@dataclass
class CampaignResult:
    """One campaign run: per-cell results plus the run's own manifest."""

    spec: CampaignSpec
    results: List[CellResult]
    skipped: List[CampaignCell]
    manifest: telemetry.RunManifest
    summary: str
    hits: int = 0
    misses: int = 0
    completed: int = 0
    total: int = 0
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """Did every runnable cell complete (this run or a prior one)?"""
        return self.completed >= self.total and not self.failures


# ----------------------------------------------------------------------
# Cell execution and (de)serialization
# ----------------------------------------------------------------------
def cell_cache_key(
    cell: CampaignCell, params: Dict[str, Any], circuit: Optional[Circuit] = None
) -> str:
    """Content address of one cell's deterministic result.

    ``workers`` deliberately never reaches the key: sharded execution
    is bit-identical to single-process by contract, so caches warm on a
    laptop serve a 32-way machine and vice versa.
    """
    circuit = circuit if circuit is not None else build_workload(cell.workload)
    return cache_key(
        circuit,
        cell.engine,
        seed=cell.seed,
        params={"flow": cell.flow, "workload": cell.workload,
                "params": dict(params)},
        fault_model=cell.fault_model,
    )


def _subparams(params: Dict[str, Any], allowed: Tuple[str, ...]) -> Dict[str, Any]:
    return {k: params[k] for k in allowed if k in params}


def execute_cell(
    cell: CampaignCell,
    params: Dict[str, Any],
    workers: int = 1,
    circuit: Optional[Circuit] = None,
    key: Optional[str] = None,
    backend: Optional[Any] = None,
) -> CellResult:
    """Run one cell cold through the appropriate flow.

    ``backend`` picks the :mod:`repro.exec` execution backend for any
    sharded fault-simulation pool inside the flow; like ``workers`` it
    never reaches the cache key (same result, different execution).
    """
    from ..atpg.api import generate_tests
    from ..scan.flow import full_scan_flow

    circuit = circuit if circuit is not None else build_workload(cell.workload)
    key = key if key is not None else cell_cache_key(cell, params, circuit)
    start = time.perf_counter()
    if cell.flow == "atpg":
        result = generate_tests(
            circuit,
            seed=cell.seed,
            engine=cell.engine,
            workers=workers,
            fault_model=cell.fault_model,
            backend=backend,
            **_subparams(params, _ATPG_PARAMS),
        )
        duration = time.perf_counter() - start
        stats = {
            "patterns": len(result.patterns),
            "coverage": result.report.coverage,
            "fault_count": len(result.report.faults),
            "redundant": len(result.redundant),
            "aborted": len(result.aborted),
        }
        return CellResult(
            cell=cell,
            key=key,
            patterns=list(result.patterns),
            report=result.report,
            manifest=result.manifest,
            core_manifest=None,
            stats=stats,
            duration_s=duration,
        )
    if cell.flow == "full_scan":
        flow = full_scan_flow(
            circuit,
            seed=cell.seed,
            engine=cell.engine,
            workers=workers,
            fault_model=cell.fault_model,
            backend=backend,
            **_subparams(params, _SCAN_PARAMS),
        )
        duration = time.perf_counter() - start
        coverage = (
            flow.scan_coverage.coverage if flow.scan_coverage is not None else None
        )
        stats = {
            "patterns": len(flow.core_tests.patterns),
            "coverage": coverage,
            "fault_count": (
                len(flow.scan_coverage.faults)
                if flow.scan_coverage is not None
                else 0
            ),
            "chain_length": flow.design.chain_length,
            "total_clocks": flow.total_clocks,
            "data_volume_bits": flow.data_volume_bits,
        }
        return CellResult(
            cell=cell,
            key=key,
            patterns=list(flow.core_tests.patterns),
            report=flow.scan_coverage,
            manifest=flow.manifest,
            core_manifest=flow.core_manifest,
            stats=stats,
            duration_s=duration,
        )
    raise ValueError(f"unknown cell flow {cell.flow!r}")


def encode_cell_result(result: CellResult) -> Dict[str, Any]:
    """Cell result → JSON payload for the store."""
    return {
        "cell": {
            "workload": result.cell.workload,
            "flow": result.cell.flow,
            "engine": result.cell.engine,
            "seed": result.cell.seed,
            "fault_model": result.cell.fault_model,
        },
        "key": result.key,
        "patterns": encode_patterns(result.patterns),
        "report": (
            encode_report(result.report) if result.report is not None else None
        ),
        "manifest": encode_manifest(result.manifest),
        "core_manifest": (
            encode_manifest(result.core_manifest)
            if result.core_manifest is not None
            else None
        ),
        "stats": dict(result.stats),
        "duration_s": result.duration_s,
    }


def decode_cell_result(payload: Dict[str, Any]) -> CellResult:
    """Rebuild a :class:`CellResult` from its store payload."""
    cell = CampaignCell(
        workload=payload["cell"]["workload"],
        flow=payload["cell"]["flow"],
        engine=payload["cell"]["engine"],
        seed=payload["cell"]["seed"],
        fault_model=payload["cell"].get("fault_model", "stuck_at"),
    )
    report = payload.get("report")
    return CellResult(
        cell=cell,
        key=payload["key"],
        patterns=decode_patterns(payload["patterns"]),
        report=decode_report(report) if report is not None else None,
        manifest=decode_manifest(payload["manifest"]),
        core_manifest=decode_manifest(payload.get("core_manifest")),
        stats=dict(payload["stats"]),
        duration_s=payload["duration_s"],
        cached=True,
    )


# ----------------------------------------------------------------------
# Summary rendering (deliberately timing-free: cold and warm runs of
# the same campaign must produce byte-identical summaries)
# ----------------------------------------------------------------------
def render_summary(
    spec: CampaignSpec,
    results: List[CellResult],
    skipped: List[CampaignCell],
    total: int,
    failed: int = 0,
) -> str:
    """Fixed-format table of completed cells; no timings, no hit/miss.

    ``failed`` appears in the header only when nonzero, so a chaos run
    whose injected faults were all healed by retries stays byte-
    identical to the fault-free run.
    """
    header = (
        f"campaign {spec.name!r}: {len(results)}/{total} cells completed"
        + (f", {failed} cells FAILED" if failed else "")
        + (f", {len(skipped)} incompatible cells skipped" if skipped else "")
    )
    columns = (
        f"{'workload':<22}{'flow':<11}{'engine':<18}{'model':<16}"
        f"{'seed':>4}  {'patterns':>8}  {'coverage':>8}"
    )
    rule = "-" * len(columns)
    lines = [header, columns, rule]
    for result in results:
        coverage = result.coverage
        coverage_text = f"{coverage:.2%}" if coverage is not None else "n/a"
        lines.append(
            f"{result.cell.workload:<22}{result.cell.flow:<11}"
            f"{result.cell.engine:<18}{result.cell.fault_model:<16}"
            f"{result.cell.seed:>4}  "
            f"{result.stats.get('patterns', 0):>8}  {coverage_text:>8}"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Executes a campaign against a result store, resumably."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Union[str, Path, ResultStore],
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        failure_policy: Union[str, FailurePolicy] = FailurePolicy.RAISE,
        chaos: Optional[ChaosConfig] = None,
        backend: Optional[Any] = None,
    ) -> None:
        self.spec = spec
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.workers = max(1, int(workers))
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.failure_policy = FailurePolicy.coerce(failure_policy)
        self.chaos = chaos
        self.state_dir = self.store.root / "campaigns" / spec.name
        self.checkpoint_path = self.state_dir / "checkpoint.json"
        self.summary_path = self.state_dir / "summary.txt"
        self.jsonl_path = self.state_dir / "cells.jsonl"
        self.manifest_path = self.state_dir / "manifest.json"
        self._checkpoint_seq = 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _load_checkpoint(self) -> Tuple[Dict[str, str], Dict[str, Any], str]:
        """Raw checkpoint state: ``(completed, failed, status)``.

        ``completed`` maps ``cell_id -> key``; ``failed`` maps
        ``cell_id ->`` failure-record dict from a prior run.  ``status``
        distinguishes *why* the maps may be empty: ``"ok"`` (valid
        checkpoint), ``"missing"`` (no file — a fresh campaign),
        ``"mismatch"`` (valid file for a different spec — also fresh),
        or ``"corrupt"`` (a file exists but is truncated, unparseable,
        or the wrong schema — progress can be rebuilt from the store).
        """
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except FileNotFoundError:
            return {}, {}, "missing"
        except (OSError, ValueError):
            return {}, {}, "corrupt"
        if (
            not isinstance(data, dict)
            or data.get("schema") != CHECKPOINT_SCHEMA
            or not isinstance(data.get("completed", {}), dict)
        ):
            return {}, {}, "corrupt"
        if data.get("spec") != self.spec.to_dict():
            return {}, {}, "mismatch"
        completed = dict(data.get("completed", {}))
        failed = data.get("failed", {})
        failed = dict(failed) if isinstance(failed, dict) else {}
        return completed, failed, "ok"

    def _load_state(
        self, cells: List[CampaignCell]
    ) -> Tuple[Dict[str, str], Dict[str, Any]]:
        """Checkpoint state, recovered from the store when corrupt.

        The checkpoint is a convenience cache of progress; the
        content-addressed store is the source of truth.  When the
        checkpoint file exists but cannot be trusted (truncated write,
        bit rot), completed cells are rediscovered by probing the store
        for each cell's key — no finished work is ever lost to a bad
        checkpoint.  The rebuild is counted
        (``campaign.checkpoint.rebuilt``) so it surfaces in the run
        manifest.
        """
        completed, failed, status = self._load_checkpoint()
        if status == "corrupt":
            telemetry.incr("campaign.checkpoint.rebuilt")
            for cell in cells:
                key = cell_cache_key(cell, self.spec.params)
                if self.store.contains(key):
                    completed[cell.cell_id] = key
        return completed, failed

    def _write_checkpoint(
        self,
        completed: Dict[str, str],
        total: int,
        failed: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist progress after every cell."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "spec": self.spec.to_dict(),
            "total": total,
            "completed": completed,
            "failed": dict(failed) if failed else {},
        }
        fd, temp_name = tempfile.mkstemp(
            prefix=".checkpoint.", suffix=".tmp", dir=str(self.state_dir)
        )
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True, indent=1)
        os.replace(temp_name, self.checkpoint_path)
        self._checkpoint_seq += 1
        if self.chaos is not None:
            self.chaos.maybe_corrupt_checkpoint(
                self.checkpoint_path, self._checkpoint_seq
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_cell(
        self, cell: CampaignCell, circuit: Circuit, key: str
    ) -> Tuple[Optional[CellResult], bool, Optional[FailureRecord]]:
        """One cell through the store with retry/backoff supervision.

        Returns ``(result, cached, failure)``.  Transient exceptions
        are retried up to ``retry.max_retries`` times with jittered
        backoff; a cell that keeps failing either re-raises
        (``FailurePolicy.RAISE``) or comes back as a
        :class:`FailureRecord` and the campaign moves on.
        """
        attempt = 0
        while True:
            chaos, this_attempt = self.chaos, attempt

            def compute() -> CellResult:
                if chaos is not None:
                    chaos.check_poison_cell(cell.cell_id)
                    chaos.inject_inline(f"cell:{cell.cell_id}", this_attempt)
                return execute_cell(
                    cell,
                    self.spec.params,
                    workers=self.workers,
                    circuit=circuit,
                    key=key,
                    backend=self.backend,
                )

            try:
                result, cached = self.store.memoize(
                    key,
                    KIND_CAMPAIGN_CELL,
                    compute,
                    encode=encode_cell_result,
                    decode=decode_cell_result,
                )
            except Exception as exc:
                if attempt < self.retry.max_retries:
                    telemetry.incr("campaign.cell.retry")
                    self.retry.wait(f"cell:{cell.cell_id}", attempt)
                    attempt += 1
                    continue
                if self.failure_policy is FailurePolicy.RAISE:
                    raise
                telemetry.incr("campaign.cell.failed")
                record = failure_record(
                    f"cell:{cell.cell_id}",
                    exc,
                    attempts=attempt + 1,
                    action=self.failure_policy.value,
                    detail={"cell_id": cell.cell_id, "key": key},
                )
                return None, False, record
            if self.chaos is not None and not cached:
                self.chaos.maybe_corrupt_store(key, self.store.path_for(key))
            return result, cached, None

    def run(self, limit: Optional[int] = None) -> CampaignResult:
        """Run (or resume) the campaign; ``limit`` caps cells this call.

        Cells already in the store come back as hits with zero
        fault-simulation work; the rest are computed and stored.  The
        checkpoint is rewritten after *every* cell, so killing the
        process at any point loses at most the in-flight cell.  Cells
        recorded as failed by a previous run are re-attempted; cells
        that fail permanently this run are reported in
        :attr:`CampaignResult.failures` (empty means every processed
        cell completed).
        """
        cells, skipped = self.spec.expand()
        results: List[CellResult] = []
        failures: List[FailureRecord] = []
        hits = misses = processed = 0
        self.state_dir.mkdir(parents=True, exist_ok=True)
        with telemetry.capture() as session:
            with telemetry.span(
                "campaign.run", campaign=self.spec.name, workers=self.workers
            ):
                completed, failed_map = self._load_state(cells)
                with open(
                    self.jsonl_path, "w", encoding="utf-8"
                ) as jsonl, telemetry.timed("campaign.phase.cells"):
                    for cell in cells:
                        if limit is not None and processed >= limit:
                            break
                        processed += 1
                        circuit = build_workload(cell.workload)
                        key = cell_cache_key(cell, self.spec.params, circuit)
                        result, cached, failure = self._run_cell(
                            cell, circuit, key
                        )
                        if failure is not None:
                            failures.append(failure)
                            failed_map[cell.cell_id] = failure.to_dict()
                            completed.pop(cell.cell_id, None)
                            self._write_checkpoint(
                                completed, len(cells), failed_map
                            )
                            continue
                        result.cached = cached
                        if cached:
                            hits += 1
                        else:
                            misses += 1
                        results.append(result)
                        completed[cell.cell_id] = key
                        failed_map.pop(cell.cell_id, None)
                        self._write_checkpoint(completed, len(cells), failed_map)
                        jsonl.write(self._jsonl_row(result))
                        jsonl.write("\n")
                        jsonl.flush()
                with telemetry.timed("campaign.phase.summary"):
                    summary = render_summary(
                        self.spec, results, skipped, len(cells),
                        failed=len(failures),
                    )
                    self._write_text(self.summary_path, summary)
        manifest = telemetry.RunManifest(
            flow="campaign.run",
            circuit=self.spec.name,
            seed=0,
            engine=",".join(self.spec.engines),
            method="campaign",
            limits={
                "workers": self.workers,
                "backend": (
                    self.backend if isinstance(self.backend, (str, type(None)))
                    else getattr(self.backend, "name", str(self.backend))
                ),
                "limit": limit,
                "workloads": list(self.spec.workloads),
                "engines": list(self.spec.engines),
                "seeds": list(self.spec.seeds),
                "flows": list(self.spec.flows),
                "fault_models": list(self.spec.fault_models),
            },
            phases=session.phase_stats("campaign.phase."),
            counters=dict(session.counters),
            stats={
                "cells": len(cells),
                "skipped": len(skipped),
                "processed": processed,
                "completed": len(completed),
                "failed": len(failures),
                "hits": hits,
                "misses": misses,
                "quarantined": self.store.stats.quarantined,
                "store": self.store.stats.to_dict(),
            },
            failures=[record.to_dict() for record in failures] or None,
        ).validate()
        self._write_text(self.manifest_path, manifest.to_json(indent=2) + "\n")
        return CampaignResult(
            spec=self.spec,
            results=results,
            skipped=skipped,
            manifest=manifest,
            summary=summary,
            hits=hits,
            misses=misses,
            completed=len(completed),
            total=len(cells),
            failures=failures,
        )

    def _jsonl_row(self, result: CellResult) -> str:
        row = {
            "cell_id": result.cell.cell_id,
            "workload": result.cell.workload,
            "flow": result.cell.flow,
            "engine": result.cell.engine,
            "seed": result.cell.seed,
            "fault_model": result.cell.fault_model,
            "key": result.key,
            "cached": result.cached,
            "duration_s": result.duration_s,
            "stats": dict(result.stats),
            "manifest": result.manifest.to_dict(),
        }
        return json.dumps(row, sort_keys=True)

    def _write_text(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=str(path.parent)
        )
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(temp_name, path)

    # ------------------------------------------------------------------
    # Status / clean
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Progress snapshot from the checkpoint (no execution).

        A corrupt checkpoint is transparently rebuilt from the store,
        exactly as :meth:`run` would; ``failed`` lists the cells a
        prior run recorded as permanently failed (they will be
        re-attempted on the next ``run``).
        """
        cells, skipped = self.spec.expand()
        completed, failed_map = self._load_state(cells)
        done = [c.cell_id for c in cells if c.cell_id in completed]
        pending = [c.cell_id for c in cells if c.cell_id not in completed]
        return {
            "campaign": self.spec.name,
            "total": len(cells),
            "completed": len(done),
            "pending": pending,
            "failed": sorted(failed_map),
            "skipped": len(skipped),
            "store_entries": len(self.store),
            "store_root": str(self.store.root),
        }

    def campaign_keys(self) -> List[str]:
        """Cache keys of every runnable cell in this campaign's spec."""
        cells, _ = self.spec.expand()
        return [cell_cache_key(cell, self.spec.params) for cell in cells]

    def clean(self, purge_store: bool = False) -> Dict[str, int]:
        """Evict this campaign's artifacts and drop its state.

        Stores are shared: other campaigns (and, under the service,
        other tenants) keep their cells in the same objects tree, so by
        default eviction is scoped to *this* spec's cell cache keys.
        The old wipe-everything behaviour survives behind
        ``purge_store=True`` (CLI: ``campaign clean --purge-store``).
        """
        if purge_store:
            evicted = self.store.clear()
        else:
            evicted = sum(
                1 for key in self.campaign_keys() if self.store.evict(key)
            )
        removed_state = 0
        if self.state_dir.exists():
            shutil.rmtree(self.state_dir)
            removed_state = 1
        return {"evicted": evicted, "state_dirs_removed": removed_state}
