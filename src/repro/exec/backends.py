"""Pluggable execution backends: inline, fork, spawn, thread-lane.

One interface, :class:`ExecutorBackend`, behind every way this repo
runs units of work in parallel — so the sharded fault simulator, the
campaign runner, and the service's execution lanes stop hard-coding a
fork pool and a platform without ``fork`` stops silently degrading to
in-process execution.

The contract every backend implements:

* ``map(task_fn, payload, tasks, workers=, policy=)`` — run
  ``task_fn(payload, task, attempt)`` for every task, at most
  ``workers`` at a time, retrying failed attempts per
  ``policy.retry`` with the supervisor's jittered backoff and
  enforcing ``policy.timeout_s`` as a per-attempt deadline where the
  backend can (see the matrix below).  Returns a
  :class:`~repro.resilience.SupervisionOutcome` — the same shape
  :func:`repro.resilience.supervise` produces — so callers keep one
  failure-handling path regardless of backend.
* ``submit(task_fn, payload, task, policy=)`` — the same execution as
  a one-task ``map``, started in the background; returns a
  :class:`TaskHandle` with ``result(timeout)`` / ``cancel()``.
* **State shipping** — ``payload`` is how per-run state (circuit,
  patterns, fault shards) reaches the workers.  ``inline`` and
  ``thread-lane`` pass it by reference; ``fork`` ships it by fork
  inheritance (never pickled); ``spawn`` pickles ``(task_fn,
  payload)`` once per map, addresses the blob by its SHA-256 content
  key, and ships it to each persistent worker at most once — a worker
  that already holds the key runs tasks without re-shipping (the same
  content-address idea as the result store's ``cache_key``).  Under
  ``spawn``, ``task_fn`` must be a module-level importable callable
  and ``payload`` must pickle.
* **Telemetry fold-back** — work that runs outside the caller's
  :func:`repro.telemetry.capture` context (another process *or*
  another thread: capture state is a :class:`contextvars.ContextVar`
  that new threads do not inherit) accumulates counters the caller's
  session never sees.  Such a ``task_fn`` must capture its own
  telemetry and return the counters with its result; the caller
  replays them into its sink exactly when
  :attr:`ExecutorBackend.replays_counters` is True.  ``inline`` is the
  only backend whose tasks tee straight into the caller's capture
  (replaying there would double-count).

Capability matrix:

============  =========  ===========  ==================  ===============
backend       isolated   deadlines    replays_counters    best for
============  =========  ===========  ==================  ===============
inline        no         no           no                  workers=1, debugging
fork          yes        kill child   yes                 CPU-bound, POSIX
spawn         yes        kill worker  yes                 CPU-bound, any platform
thread-lane   no         abandon      yes                 store-hit / I/O-bound
============  =========  ===========  ==================  ===============

``isolated`` backends run tasks in a child process, so a crashing or
hanging task cannot take the caller down (and the chaos harness may
inject real ``os._exit`` crashes there).  ``thread-lane`` cannot kill
a running thread: a task past its deadline is *abandoned* (it may
still run to completion into the void) and retried per policy — fine
for the I/O-bound service work it exists for, wrong for tasks with
side effects that must not run twice.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
import multiprocessing
from multiprocessing import connection
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from .. import telemetry
from ..resilience.policy import traceback_digest
from ..resilience.supervisor import (
    CRASH,
    EXCEPTION,
    HANG,
    OK,
    SupervisionOutcome,
    SupervisionPolicy,
    TaskFailure,
    supervise,
)

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "InlineBackend",
    "ForkBackend",
    "SpawnBackend",
    "ThreadLaneBackend",
    "TaskHandle",
    "ExecTaskError",
    "ExecCancelledError",
    "create_backend",
    "auto_backend",
    "backend_name",
]

#: Canonical backend names, in auto-selection preference order for
#: process work (``thread-lane`` is never auto-picked for CPU work).
BACKENDS = ("fork", "spawn", "inline", "thread-lane")

#: ``task_fn(payload, task, attempt) -> result``
TaskFn = Callable[[Any, Any, int], Any]


class ExecTaskError(Exception):
    """A submitted task exhausted its retries; carries the failure."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(
            f"task {failure.task!r} failed after {failure.attempts} "
            f"attempt(s): {failure.error}: {failure.message}"
        )
        self.failure = failure


class ExecCancelledError(Exception):
    """A submitted task was cancelled before it started."""


def _settle_failure(
    outcome: SupervisionOutcome,
    policy: SupervisionPolicy,
    pending: List[Tuple[Any, int]],
    task: Any,
    attempt: int,
    kind: str,
    error: str,
    message: str,
    digest: str,
) -> None:
    """One failed attempt: count it, then retry or fail the task.

    Mirrors the fork supervisor's ``settle`` exactly — same telemetry
    counters, same event rows, same :class:`TaskFailure` shape — so
    every backend's failures look identical to callers.
    """
    telemetry.incr(f"resilience.worker_{kind}")
    retry = policy.retry
    if attempt < retry.max_retries:
        telemetry.incr("resilience.retry")
        outcome.retries += 1
        delay = retry.wait(f"task:{task}", attempt)
        outcome.events.append(
            {"task": task, "attempt": attempt, "kind": kind,
             "error": error, "action": "retry", "delay_s": delay}
        )
        pending.append((task, attempt + 1))
    else:
        outcome.events.append(
            {"task": task, "attempt": attempt, "kind": kind,
             "error": error, "action": "gave_up", "delay_s": 0.0}
        )
        outcome.failed[task] = TaskFailure(
            task=task, kind=kind, error=error, message=message,
            digest=digest, attempts=attempt + 1,
        )


class TaskHandle:
    """One background task started by :meth:`ExecutorBackend.submit`."""

    def __init__(self, task: Any) -> None:
        self.task = task
        self._finished = threading.Event()
        self._cancel = threading.Event()
        self._state: Tuple[str, Any] = ("pending", None)

    def cancel(self) -> bool:
        """Request cancellation; True if the task had not finished.

        Guaranteed to take effect only before the task starts; a task
        already running on an isolated backend finishes in its worker
        and the result is discarded.
        """
        if self._finished.is_set():
            return False
        self._cancel.set()
        return True

    def done(self) -> bool:
        """Has the task finished (ok, failed, or cancelled)?"""
        return self._finished.is_set()

    def cancelled(self) -> bool:
        """Did the task end by cancellation?"""
        return self._finished.is_set() and self._state[0] == "cancelled"

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; raise what the task ended with.

        :class:`ExecTaskError` for a task that exhausted retries,
        :class:`ExecCancelledError` for a cancelled one,
        :class:`TimeoutError` if it is still running after ``timeout``.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"task {self.task!r} still running after {timeout}s"
            )
        state, value = self._state
        if state == "ok":
            return value
        if state == "cancelled":
            raise ExecCancelledError(f"task {self.task!r} was cancelled")
        raise ExecTaskError(value)

    def _finish(self, state: str, value: Any) -> None:
        self._state = (state, value)
        self._finished.set()


class ExecutorBackend:
    """Interface every execution backend implements (see module doc)."""

    #: Canonical name, recorded in manifests' ``workers.backend``.
    name: str = "abstract"
    #: Tasks run in a child process (crash/hang cannot hurt the caller;
    #: worker-kind chaos injection is safe).
    isolated: bool = False
    #: Telemetry fold-back contract: True when the caller must replay
    #: the counters a task returned (work ran outside the caller's
    #: capture context); False when capture tee already delivered them.
    replays_counters: bool = True

    @classmethod
    def available(cls) -> bool:
        """Can this backend run on this platform?"""
        return True

    def map(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: Iterable[Any],
        *,
        workers: int = 1,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisionOutcome:
        """Run every task, supervised; see the module contract."""
        raise NotImplementedError

    def submit(
        self,
        task_fn: TaskFn,
        payload: Any,
        task: Any,
        *,
        policy: Optional[SupervisionPolicy] = None,
    ) -> TaskHandle:
        """Start one task in the background; returns its handle."""
        handle = TaskHandle(task)

        def run() -> None:
            if handle._cancel.is_set():
                handle._finish("cancelled", None)
                return
            try:
                outcome = self.map(
                    task_fn, payload, [task], workers=1, policy=policy
                )
            except Exception as exc:  # defensive: map never raises today
                handle._finish(
                    "failed",
                    TaskFailure(
                        task=task, kind=EXCEPTION, error=type(exc).__name__,
                        message=str(exc), digest=traceback_digest(exc),
                        attempts=1,
                    ),
                )
                return
            if task in outcome.results:
                handle._finish("ok", outcome.results[task])
            else:
                handle._finish("failed", outcome.failed[task])

        thread = threading.Thread(
            target=run, daemon=True,
            name=f"repro-exec-{self.name}-submit",
        )
        thread.start()
        return handle

    def close(self) -> None:
        """Release any persistent workers (idempotent)."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InlineBackend(ExecutorBackend):
    """Sequential in-process execution: the workers=1 reference path.

    Tasks run in the calling thread under the caller's own telemetry
    capture (tee delivers counters directly — nothing to replay).
    Deadlines are unenforceable — a task cannot be interrupted in its
    own thread — so ``policy.timeout_s`` is ignored; retries and
    failure classification still match the other backends.
    """

    name = "inline"
    isolated = False
    replays_counters = False

    def map(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: Iterable[Any],
        *,
        workers: int = 1,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisionOutcome:
        policy = policy or SupervisionPolicy()
        outcome = SupervisionOutcome(results={}, failed={})
        pending: List[Tuple[Any, int]] = [(task, 0) for task in tasks]
        while pending:
            task, attempt = pending.pop(0)
            try:
                outcome.results[task] = task_fn(payload, task, attempt)
            except Exception as exc:
                _settle_failure(
                    outcome, policy, pending, task, attempt, EXCEPTION,
                    type(exc).__name__, str(exc), traceback_digest(exc),
                )
        return outcome


class ForkBackend(ExecutorBackend):
    """The extracted fork pool: one forked child per task attempt.

    Delegates to :func:`repro.resilience.supervise` — state reaches
    children by fork inheritance (never pickled), crashes and hangs
    are detected on the result pipe, hung children are killed.  POSIX
    only.
    """

    name = "fork"
    isolated = True
    replays_counters = True

    @classmethod
    def available(cls) -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def map(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: Iterable[Any],
        *,
        workers: int = 1,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisionOutcome:
        def fork_task(task: Any, attempt: int) -> Any:
            # Runs in the forked child; payload via fork inheritance.
            return task_fn(payload, task, attempt)

        return supervise(list(tasks), fork_task, workers=workers,
                         policy=policy)


def _spawn_worker_main(conn: Any) -> None:
    """Persistent spawn-worker loop: cache shipped state, run tasks.

    Messages in: ``("state", key, blob)``, ``("task", key, task,
    attempt)``, ``("stop",)``.  Messages out: ``(OK, result)`` or
    ``(EXCEPTION, error, message, digest)`` per task.  EOF on the pipe
    (parent died or gave up on us) ends the loop.
    """
    import os

    telemetry.reset_in_child()
    cache: Dict[str, Any] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "state":
                cache[message[1]] = pickle.loads(message[2])
            elif op == "task":
                key, task, attempt = message[1], message[2], message[3]
                entry = cache.get(key)
                if entry is None:
                    conn.send((
                        EXCEPTION, "StaleStateError",
                        f"worker holds no state for key {key[:12]}", "",
                    ))
                    continue
                fn, payload = entry
                try:
                    result = fn(payload, task, attempt)
                except BaseException as exc:  # noqa: BLE001 — must travel back
                    conn.send((
                        EXCEPTION, type(exc).__name__, str(exc),
                        traceback_digest(exc),
                    ))
                else:
                    conn.send((OK, result))
            elif op == "stop":
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)


class _SpawnWorker:
    """One persistent spawn child: process, duplex pipe, shipped keys."""

    __slots__ = ("process", "conn", "keys", "task", "attempt", "deadline")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.keys: set = set()
        self.task: Any = None
        self.attempt = 0
        self.deadline: Optional[float] = None


class SpawnBackend(ExecutorBackend):
    """Persistent spawn workers; state content-addressed and cached.

    Each worker is a fresh interpreter (nothing inherited), so
    ``(task_fn, payload)`` is pickled once per :meth:`map`, keyed by
    the blob's SHA-256, and shipped to a worker only if it does not
    already hold that key — workers persist across ``map`` calls on
    the same backend instance, so repeated runs over the same state
    (a simulator's verify/grade/sign-off passes, a service executing
    many cells of one campaign) ship it once.  Supervision matches the
    fork pool: EOF on a worker's pipe is a crash, a missed deadline
    kills and replaces the worker, both retry per policy.
    """

    name = "spawn"
    isolated = True
    replays_counters = True

    #: Grace given to a terminated worker before SIGKILL, and to joins.
    term_grace_s = 5.0

    def __init__(self) -> None:
        self._workers: List[_SpawnWorker] = []
        self._lock = threading.Lock()

    @classmethod
    def available(cls) -> bool:
        return "spawn" in multiprocessing.get_all_start_methods()

    # -- worker lifecycle ----------------------------------------------
    def _spawn_one(self) -> _SpawnWorker:
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_spawn_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        worker = _SpawnWorker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _SpawnWorker, kill: bool) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        process = worker.process
        if kill and process.is_alive():
            process.terminate()
            process.join(self.term_grace_s)
            if process.is_alive():
                process.kill()
        process.join(self.term_grace_s)

    def close(self) -> None:
        with self._lock:
            for worker in list(self._workers):
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            for worker in list(self._workers):
                self._discard(worker, kill=True)

    # -- supervised map ------------------------------------------------
    def map(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: Iterable[Any],
        *,
        workers: int = 1,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisionOutcome:
        policy = policy or SupervisionPolicy()
        outcome = SupervisionOutcome(results={}, failed={})
        tasks = list(tasks)
        if not tasks:
            return outcome
        with self._lock:
            self._map_locked(
                task_fn, payload, tasks, max(1, workers), policy, outcome
            )
        return outcome

    def _map_locked(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: List[Any],
        cap: int,
        policy: SupervisionPolicy,
        outcome: SupervisionOutcome,
    ) -> None:
        blob = pickle.dumps(
            (task_fn, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        state_key = hashlib.sha256(blob).hexdigest()
        pending: List[Tuple[Any, int]] = [(task, 0) for task in tasks]
        busy: Dict[Any, _SpawnWorker] = {}
        while pending or busy:
            target = min(cap, len(pending) + len(busy))
            while len(self._workers) < target:
                self._spawn_one()
            idle = [w for w in self._workers if w.conn not in busy]
            while pending and idle and len(busy) < cap:
                worker = idle.pop(0)
                task, attempt = pending.pop(0)
                try:
                    if state_key not in worker.keys:
                        worker.conn.send(("state", state_key, blob))
                        worker.keys.add(state_key)
                    worker.conn.send(("task", state_key, task, attempt))
                except (OSError, BrokenPipeError):
                    # Died between tasks; requeue and replace next pass.
                    self._discard(worker, kill=True)
                    pending.insert(0, (task, attempt))
                    break
                worker.task, worker.attempt = task, attempt
                worker.deadline = (
                    time.monotonic() + policy.timeout_s
                    if policy.timeout_s is not None
                    else None
                )
                busy[worker.conn] = worker
            if not busy:
                continue
            ready = connection.wait(
                list(busy), timeout=policy.poll_interval_s
            )
            now = time.monotonic()
            for conn in list(busy):
                worker = busy.get(conn)
                if worker is None:
                    continue
                if conn in ready:
                    del busy[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        code = worker.process.exitcode
                        self._discard(worker, kill=False)
                        _settle_failure(
                            outcome, policy, pending, worker.task,
                            worker.attempt, CRASH, "WorkerCrash",
                            f"spawn worker exited with code {code} before "
                            f"returning a result", "",
                        )
                        continue
                    if message[0] == OK:
                        outcome.results[worker.task] = message[1]
                    else:
                        _, error, text, digest = message
                        _settle_failure(
                            outcome, policy, pending, worker.task,
                            worker.attempt, EXCEPTION, error, text, digest,
                        )
                    worker.task, worker.deadline = None, None
                elif worker.deadline is not None and now >= worker.deadline:
                    del busy[conn]
                    self._discard(worker, kill=True)
                    _settle_failure(
                        outcome, policy, pending, worker.task,
                        worker.attempt, HANG, "WorkerHang",
                        f"no result within {policy.timeout_s}s "
                        f"(worker terminated)", "",
                    )


class ThreadLaneBackend(ExecutorBackend):
    """Thread-pool execution for store-hit-heavy and I/O-bound work.

    Pure-Python CPU-bound tasks gain nothing here (the GIL); tasks
    that wait — on disk, sockets, or child processes — overlap fully.
    A new thread starts outside the caller's contextvar capture, so
    counters a task captured come back with its result and the caller
    replays them (``replays_counters``).  A task past its deadline is
    *abandoned*, not killed (Python threads are uninterruptible): it
    may still complete into the void while its retry runs, so tasks
    must be idempotent — which store-first service work is.
    """

    name = "thread-lane"
    isolated = False
    replays_counters = True

    def map(
        self,
        task_fn: TaskFn,
        payload: Any,
        tasks: Iterable[Any],
        *,
        workers: int = 1,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisionOutcome:
        policy = policy or SupervisionPolicy()
        outcome = SupervisionOutcome(results={}, failed={})
        tasks = list(tasks)
        if not tasks:
            return outcome
        cap = max(1, workers)
        pending: List[Tuple[Any, int]] = [(task, 0) for task in tasks]
        running: Dict[Any, Tuple[Any, int, Optional[float]]] = {}
        pool = ThreadPoolExecutor(
            max_workers=cap, thread_name_prefix="repro-exec-lane"
        )
        try:
            while pending or running:
                while pending and len(running) < cap:
                    task, attempt = pending.pop(0)
                    future = pool.submit(task_fn, payload, task, attempt)
                    deadline = (
                        time.monotonic() + policy.timeout_s
                        if policy.timeout_s is not None
                        else None
                    )
                    running[future] = (task, attempt, deadline)
                done, _ = _futures_wait(
                    set(running), timeout=policy.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in list(running):
                    task, attempt, deadline = running[future]
                    if future in done:
                        del running[future]
                        try:
                            outcome.results[task] = future.result()
                        except Exception as exc:
                            _settle_failure(
                                outcome, policy, pending, task, attempt,
                                EXCEPTION, type(exc).__name__, str(exc),
                                traceback_digest(exc),
                            )
                    elif deadline is not None and now >= deadline:
                        del running[future]
                        future.cancel()
                        _settle_failure(
                            outcome, policy, pending, task, attempt, HANG,
                            "WorkerHang",
                            f"no result within {policy.timeout_s}s "
                            f"(thread abandoned)", "",
                        )
        finally:
            # Abandoned (hung) attempts must not block the caller.
            pool.shutdown(wait=not running and len(pending) == 0)
        return outcome


_REGISTRY: Dict[str, type] = {
    "inline": InlineBackend,
    "fork": ForkBackend,
    "spawn": SpawnBackend,
    "thread-lane": ThreadLaneBackend,
    "thread": ThreadLaneBackend,  # convenience alias
}


def backend_name(spec: Union[None, str, ExecutorBackend]) -> str:
    """Canonical name of a backend spec (None = auto choice)."""
    return create_backend(spec).name if not isinstance(spec, ExecutorBackend) \
        else spec.name


def auto_backend() -> ExecutorBackend:
    """The default process backend: fork where available, else spawn.

    Fork ships state for free (inheritance); spawn pays one pickle per
    state but runs everywhere — so spawn-only platforms get a real
    pool instead of silently degrading to in-process execution.
    """
    if ForkBackend.available():
        return ForkBackend()
    return SpawnBackend()


def create_backend(
    spec: Union[None, str, ExecutorBackend] = None,
) -> ExecutorBackend:
    """Resolve a backend: an instance passes through, a name constructs
    one, ``None`` auto-selects (:func:`auto_backend`)."""
    if isinstance(spec, ExecutorBackend):
        return spec
    if spec is None:
        return auto_backend()
    name = str(spec).strip().lower().replace("_", "-")
    cls = _REGISTRY.get(name)
    if cls is None:
        known = sorted(set(BACKENDS))
        raise ValueError(
            f"unknown execution backend {spec!r}; available: {known}"
        )
    return cls()
