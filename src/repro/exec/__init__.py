"""``repro.exec`` — pluggable execution backends.

The distributed-ready seam between "what to run" and "how to run it":
:class:`ExecutorBackend` (map/submit with per-task deadlines, cancel,
and a telemetry fold-back contract) with four implementations —
``inline``, ``fork`` (the extracted sharded pool), ``spawn``
(content-addressed pickled state, persistent workers), and
``thread-lane`` (store-hit-heavy / I/O-bound service work).  See
:mod:`repro.exec.backends` for the full contract.
"""

from .backends import (
    BACKENDS,
    ExecCancelledError,
    ExecTaskError,
    ExecutorBackend,
    ForkBackend,
    InlineBackend,
    SpawnBackend,
    TaskHandle,
    ThreadLaneBackend,
    auto_backend,
    backend_name,
    create_backend,
)

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "InlineBackend",
    "ForkBackend",
    "SpawnBackend",
    "ThreadLaneBackend",
    "TaskHandle",
    "ExecTaskError",
    "ExecCancelledError",
    "create_backend",
    "auto_backend",
    "backend_name",
]
