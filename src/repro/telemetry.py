"""Lightweight, dependency-free instrumentation: counters, timers, spans.

The paper's whole argument is quantitative — coverage vs. pattern count,
backtrack effort, test-data volume, cost curves — so the hot paths of
this repo (ATPG, the fault-simulation engines, the exhaustive BIST
analyzers) report what they did through this module instead of ad-hoc
prints and scattered return values.

Three primitives:

* :func:`incr` — named counters, folded into the innermost open span
  (or emitted as standalone events at top level);
* :func:`span` — nested, timed tracing regions; each span records its
  own duration and the counters incremented while it was innermost;
* sinks — where finished events go.  The default is a no-op
  :class:`NullSink`, so instrumentation is zero-cost-ish when nobody is
  listening: every entry point checks one module-level flag and returns
  immediately.  :class:`InMemorySink` aggregates in process;
  :class:`JsonlSink` streams JSON lines for offline analysis.

On top of the event stream sits the :class:`RunManifest`: a
deterministic, JSON-serializable record of one tool run (seed, engine,
method, limits, per-phase stats, final coverage).  ``generate_tests``
attaches one to every :class:`~repro.atpg.api.TestGenerationResult`;
the benchmarks consume the same manifests so perf numbers and
correctness stats come from a single source of truth.

Typical use::

    from repro import telemetry

    sink = telemetry.enable()              # InMemorySink by default
    ... run a flow ...
    print(sink.counters["atpg.backtracks"])
    telemetry.disable()

Scoped collection (what ``generate_tests`` does internally)::

    with telemetry.capture() as session:
        ... instrumented work ...
    session.phase_stats("atpg.phase.")     # per-phase rows for a manifest
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Sequence, Union

__all__ = [
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "TeeSink",
    "enable",
    "disable",
    "reset_in_child",
    "is_enabled",
    "current_sink",
    "span",
    "incr",
    "timed",
    "capture",
    "read_jsonl",
    "RunManifest",
    "validate_manifest",
    "MANIFEST_SCHEMA",
    "REQUIRED_MANIFEST_KEYS",
]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class NullSink:
    """Discards every event (the default: telemetry disabled)."""

    def emit(self, event: Dict[str, Any]) -> None:
        """Drop the event."""


class InMemorySink:
    """Collects events in a list and aggregates counters as they arrive.

    ``events`` is the raw ordered stream; ``counters`` sums every
    counter across all span and standalone-counter events, so totals
    are available without a second pass.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}

    def emit(self, event: Dict[str, Any]) -> None:
        """Record one event and fold its counters into the aggregate."""
        self.events.append(event)
        if event.get("event") == "span":
            for name, value in event.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
        elif event.get("event") == "counter":
            name = event["name"]
            self.counters[name] = self.counters.get(name, 0) + event["value"]

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished span events, optionally filtered by exact name."""
        return [
            e
            for e in self.events
            if e.get("event") == "span" and (name is None or e["name"] == name)
        ]

    def phase_stats(self, prefix: str) -> List[Dict[str, Any]]:
        """Manifest-ready rows for spans whose name starts with ``prefix``.

        Each row is ``{"name", "duration_s", "counters"}`` with the
        prefix stripped, in span-completion order.
        """
        return [
            {
                "name": e["name"][len(prefix):],
                "duration_s": e["duration_s"],
                "counters": dict(e.get("counters", {})),
            }
            for e in self.events
            if e.get("event") == "span" and e["name"].startswith(prefix)
        ]

    def clear(self) -> None:
        """Forget everything collected so far."""
        self.events.clear()
        self.counters.clear()


class JsonlSink:
    """Streams every event as one JSON line to a file path or stream."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._stream = target
            self._owns = False

    def emit(self, event: Dict[str, Any]) -> None:
        """Write one event as a JSON line."""
        self._stream.write(json.dumps(event, sort_keys=True, default=str))
        self._stream.write("\n")

    def close(self) -> None:
        """Flush and (for path targets) close the underlying stream."""
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TeeSink:
    """Fans every event out to several sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = sinks

    def emit(self, event: Dict[str, Any]) -> None:
        """Forward the event to every child sink."""
        for sink in self.sinks:
            sink.emit(event)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a :class:`JsonlSink` file back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# Module state: a process-global base (flag + sink) set by
# enable()/disable(), a contextvar overlay set by capture(), and a
# per-thread span stack.
#
# The overlay is what makes capture() re-entrant: each thread (or asyncio
# task) that enters capture() installs its own (enabled, sink) pair in
# its execution context, so concurrent captures never see each other's
# sinks.  Threads that never call capture() fall through to the base, so
# enable() keeps its historical process-wide meaning.
# ----------------------------------------------------------------------
_NULL_SINK = NullSink()
_enabled = False
_sink: Any = _NULL_SINK
_local = threading.local()

# (enabled, sink) while inside capture(); None means "use the base".
_capture_state: contextvars.ContextVar = contextvars.ContextVar(
    "repro_telemetry_capture", default=None
)


def _active() -> "tuple[bool, Any]":
    """The (enabled, sink) pair in effect for the current context."""
    state = _capture_state.get()
    if state is not None:
        return state
    return _enabled, _sink


def _stack() -> List["_Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def enable(sink: Optional[Any] = None) -> Any:
    """Turn telemetry on, routing events to ``sink``.

    Returns the active sink (a fresh :class:`InMemorySink` when none is
    given) so callers can read it back afterwards.
    """
    global _enabled, _sink
    _sink = sink if sink is not None else InMemorySink()
    _enabled = True
    return _sink


def disable() -> None:
    """Turn telemetry off; subsequent spans/counters cost one flag check."""
    global _enabled, _sink
    _enabled = False
    _sink = _NULL_SINK


def reset_in_child() -> None:
    """Reinitialize telemetry state after a ``fork()``.

    A forked worker inherits the parent's enabled flag, sink (possibly
    an open file stream), capture overlay, and per-thread span stack.
    Sharded execution calls this first thing in every worker so child
    events can never interleave into the parent's sink and counters can
    never fold into inherited (never-to-be-emitted) parent spans.
    """
    disable()
    _capture_state.set(None)
    _local.stack = []


def is_enabled() -> bool:
    """Is any sink currently listening (in this context)?"""
    return _active()[0]


def current_sink() -> Any:
    """The sink events are being routed to (NullSink when disabled)."""
    return _active()[1]


# ----------------------------------------------------------------------
# Spans and counters
# ----------------------------------------------------------------------
class _Span:
    """An open tracing region; emitted to the sink when it closes."""

    __slots__ = ("name", "attrs", "parent", "depth", "counters", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.parent: Optional[str] = None
        self.depth = 0
        self.counters: Dict[str, int] = {}
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = _stack()
        if stack:
            self.parent = stack[-1].name
            self.depth = stack[-1].depth + 1
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "event": "span",
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "duration_s": duration,
            "counters": dict(self.counters),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        _active()[1].emit(event)


class _NullSpan:
    """Reusable no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> Any:
    """A timed, nested tracing region (context manager).

    Counters incremented while this span is innermost are recorded on
    it; the finished span is emitted to the active sink.  While
    telemetry is disabled this returns a shared no-op object.
    """
    if not _active()[0]:
        return _NULL_SPAN
    return _Span(name, attrs)


def incr(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name``.

    Folded into the innermost open span, or emitted as a standalone
    counter event when no span is open.  No-op while disabled.
    """
    enabled, sink = _active()
    if not enabled:
        return
    stack = getattr(_local, "stack", None)
    if stack:
        counters = stack[-1].counters
        counters[name] = counters.get(name, 0) + value
    else:
        sink.emit({"event": "counter", "name": name, "value": value})


@contextmanager
def timed(name: str, **attrs: Any) -> Iterator[None]:
    """Decorator-friendly alias for :func:`span` as a plain generator CM."""
    with span(name, **attrs):
        yield


@contextmanager
def capture() -> Iterator[InMemorySink]:
    """Force-enable telemetry into a fresh scoped :class:`InMemorySink`.

    If telemetry was already enabled (in this context) the previous sink
    keeps receiving every event (tee), so a user-installed JSONL stream
    sees the same traffic.  On exit the previous enabled/sink state is
    restored.  This is how flows that always emit a run manifest
    (``generate_tests``) collect their stats without requiring the
    caller to opt in.

    Re-entrant across threads and asyncio tasks: the capture state lives
    in a :class:`contextvars.ContextVar`, so two threads capturing
    concurrently each get a private session and never interleave
    counters.  Note that a *new* thread starts from the process-global
    base set by :func:`enable`, not from the spawning thread's capture
    — a backend running work in another thread must fold the returned
    counters back itself (see :mod:`repro.exec`).
    """
    session = InMemorySink()
    prev_enabled, prev_sink = _active()
    sink = TeeSink(session, prev_sink) if prev_enabled else session
    token = _capture_state.set((True, sink))
    try:
        yield session
    finally:
        _capture_state.reset(token)


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
MANIFEST_SCHEMA = "repro.run-manifest/1"

REQUIRED_MANIFEST_KEYS = (
    "schema",
    "flow",
    "circuit",
    "seed",
    "engine",
    "method",
    "limits",
    "phases",
    "counters",
    "stats",
)

_REQUIRED_PHASE_KEYS = ("name", "duration_s", "counters")

# Optional ``workers`` section (sharded multi-process execution).
# ``backend`` names the repro.exec backend that ran the pool (None when
# the run stayed in-process); ``reason`` explains an in-process
# degradation despite requested > 1 (e.g. "fork_unavailable",
# "single_shard") and is None when no degradation happened.
_REQUIRED_WORKERS_KEYS = (
    "requested", "effective", "mode", "backend", "reason", "shards"
)

_REQUIRED_SHARD_KEYS = ("shard", "faults", "duration_s", "counters")

# Optional ``failures`` section (resilience layer): one row per unit of
# work that failed permanently and was quarantined/degraded instead of
# aborting the run (see repro.resilience.FailureRecord).
_REQUIRED_FAILURE_KEYS = ("site", "error", "digest", "attempts", "action")

# Optional ``fault_model`` section (see repro.faults.FaultModelPlan):
# which model the run graded and, for reduced models, the shape of the
# composite-circuit reduction it ran on.
_REQUIRED_FAULT_MODEL_KEYS = ("model", "faults", "reduction")

# Optional ``service`` section (see repro.service.CampaignService): one
# daemon lifetime's traffic — jobs and cells served, how submissions
# deduped (hits / shared in-flight executions / cold misses), tenant
# accounting, the store's lifecycle counters at shutdown, and the
# crash-safety story (jobs recovered from the journal, resumes served,
# retries spent, journal health).
_REQUIRED_SERVICE_KEYS = (
    "jobs", "cells", "dedupe", "tenants", "store", "recovery"
)


@dataclass
class RunManifest:
    """Deterministic, JSON-serializable record of one instrumented run.

    ``phases`` rows are ``{"name", "duration_s", "counters"}`` in
    execution order; ``counters`` aggregates every counter observed
    during the run; ``stats`` holds the flow's headline numbers
    (coverage, pattern counts, backtracks, ...).  Everything except the
    ``duration_s`` timings is reproducible from the seed.

    ``workers`` is the optional sharded-execution section (present when
    a flow ran fault simulation through
    :class:`repro.faultsim.sharded.ShardedFaultSimulator`):
    ``{"requested", "effective", "mode", "runs", "shards"}`` where each
    shard row is ``{"shard", "faults", "duration_s", "counters"}``
    aggregated over every sharded run of the flow.

    ``failures`` is the optional resilience section: one row per unit
    of work (fault shard, campaign cell) that failed *permanently* and
    was quarantined or degraded under a
    :class:`repro.resilience.FailurePolicy` instead of aborting the
    run.  Each row carries ``{"site", "error", "digest", "attempts",
    "action"}`` (plus free-form ``message``/``detail``); a validated
    manifest without this section is a run in which nothing was lost.

    ``fault_model`` is the optional fault-model section (present when a
    flow resolved its fault universe through
    :func:`repro.faults.plan_fault_model`): ``{"model", "faults",
    "reduction"}`` where ``reduction`` is ``None`` for plain stuck-at
    and otherwise records the composite-circuit rewrite the run graded
    on (gate counts, two-pattern flag, per-model universe details).

    ``service`` is the optional daemon section (written by
    :class:`repro.service.CampaignService` at shutdown): ``{"jobs",
    "cells", "dedupe", "tenants", "store"}`` summarizing one service
    lifetime — how much traffic arrived, how much of it collapsed onto
    shared executions, and where the store's lifecycle counters ended.
    """

    flow: str
    circuit: str
    seed: int
    engine: str
    method: str
    limits: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    workers: Optional[Dict[str, Any]] = None
    failures: Optional[List[Dict[str, Any]]] = None
    fault_model: Optional[Dict[str, Any]] = None
    service: Optional[Dict[str, Any]] = None
    schema: str = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (already JSON-safe)."""
        data = {
            "schema": self.schema,
            "flow": self.flow,
            "circuit": self.circuit,
            "seed": self.seed,
            "engine": self.engine,
            "method": self.method,
            "limits": dict(self.limits),
            "phases": [dict(p) for p in self.phases],
            "counters": dict(self.counters),
            "stats": dict(self.stats),
        }
        if self.workers is not None:
            data["workers"] = dict(self.workers)
        if self.failures is not None:
            data["failures"] = [dict(row) for row in self.failures]
        if self.fault_model is not None:
            data["fault_model"] = dict(self.fault_model)
        if self.service is not None:
            data["service"] = dict(self.service)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON (raises if any value is not JSON-safe)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict`/:meth:`to_json` output."""
        return cls(
            flow=data["flow"],
            circuit=data["circuit"],
            seed=data["seed"],
            engine=data["engine"],
            method=data["method"],
            limits=dict(data.get("limits", {})),
            phases=[dict(p) for p in data.get("phases", [])],
            counters=dict(data.get("counters", {})),
            stats=dict(data.get("stats", {})),
            workers=(
                dict(data["workers"]) if data.get("workers") is not None else None
            ),
            failures=(
                [dict(row) for row in data["failures"]]
                if data.get("failures") is not None
                else None
            ),
            fault_model=(
                dict(data["fault_model"])
                if data.get("fault_model") is not None
                else None
            ),
            service=(
                dict(data["service"]) if data.get("service") is not None else None
            ),
            schema=data.get("schema", MANIFEST_SCHEMA),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a manifest previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def phase(self, name: str) -> Optional[Dict[str, Any]]:
        """The first phase row with this name, or None."""
        for row in self.phases:
            if row.get("name") == name:
                return row
        return None

    def validate(self) -> "RunManifest":
        """Check the schema: required keys, phase rows, JSON-safety.

        Returns self so it chains; raises ValueError on any violation.
        """
        validate_manifest(self.to_dict())
        return self


def validate_manifest(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a raw manifest dict against the schema.

    Checks required top-level keys, the schema tag, the per-phase row
    keys, and JSON-serializability; raises ValueError on any violation
    and returns the dict unchanged otherwise.  This is what the CI
    quickstart gate runs against the JSON a flow dumped.
    """
    missing = [k for k in REQUIRED_MANIFEST_KEYS if k not in data]
    if missing:
        raise ValueError(f"manifest missing required keys: {missing}")
    if data["schema"] != MANIFEST_SCHEMA:
        raise ValueError(
            f"unknown manifest schema {data['schema']!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    for row in data["phases"]:
        absent = [k for k in _REQUIRED_PHASE_KEYS if k not in row]
        if absent:
            raise ValueError(
                f"manifest phase {row.get('name')!r} missing keys: {absent}"
            )
    workers = data.get("workers")
    if workers is not None:
        absent = [k for k in _REQUIRED_WORKERS_KEYS if k not in workers]
        if absent:
            raise ValueError(f"manifest workers section missing keys: {absent}")
        for row in workers["shards"]:
            missing_keys = [k for k in _REQUIRED_SHARD_KEYS if k not in row]
            if missing_keys:
                raise ValueError(
                    f"manifest shard row {row.get('shard')!r} missing keys: "
                    f"{missing_keys}"
                )
    fault_model = data.get("fault_model")
    if fault_model is not None:
        if not isinstance(fault_model, dict):
            raise ValueError(
                f"manifest fault_model section must be an object, got "
                f"{type(fault_model).__name__}"
            )
        absent = [k for k in _REQUIRED_FAULT_MODEL_KEYS if k not in fault_model]
        if absent:
            raise ValueError(
                f"manifest fault_model section missing keys: {absent}"
            )
    service = data.get("service")
    if service is not None:
        if not isinstance(service, dict):
            raise ValueError(
                f"manifest service section must be an object, got "
                f"{type(service).__name__}"
            )
        absent = [k for k in _REQUIRED_SERVICE_KEYS if k not in service]
        if absent:
            raise ValueError(f"manifest service section missing keys: {absent}")
        dedupe = service["dedupe"]
        if not isinstance(dedupe, dict) or not {
            "hits", "misses", "shared"
        } <= set(dedupe):
            raise ValueError(
                "manifest service dedupe must carry hits/misses/shared, "
                f"got {dedupe!r}"
            )
    failures = data.get("failures")
    if failures is not None:
        if not isinstance(failures, list):
            raise ValueError(
                f"manifest failures section must be a list, got "
                f"{type(failures).__name__}"
            )
        for row in failures:
            if not isinstance(row, dict):
                raise ValueError("manifest failure rows must be objects")
            missing_keys = [k for k in _REQUIRED_FAILURE_KEYS if k not in row]
            if missing_keys:
                raise ValueError(
                    f"manifest failure row {row.get('site')!r} missing keys: "
                    f"{missing_keys}"
                )
    try:
        json.dumps(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"manifest is not JSON-serializable: {exc}") from exc
    return data
