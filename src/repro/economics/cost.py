"""The economics of testing (paper §I-B, §I-C and Eq. (1)).

Every argument in the paper reduces to money or time:

* the **rule of tens** — a fault caught at chip level costs $0.30; the
  same fault costs 10x more at each packaging level ($3 board, $30
  system, $300 field);
* **Eq. (1)** — ``T = K * N**3`` computer run time for test generation
  plus fault simulation (``N**2`` for fault simulation alone);
* **exhaustive testing** — ``2**(N+M)`` patterns; the paper's example
  (N=25, M=50) needs 3.8e22 patterns ≈ a billion years at 1 µs each;
* **technique overheads** — gate, pin, and delay costs of each DFT
  discipline, tabulated from the paper's quoted ranges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: The paper's cost escalation: packaging level -> dollars per fault.
RULE_OF_TENS: Dict[str, float] = {
    "chip": 0.30,
    "board": 3.00,
    "system": 30.00,
    "field": 300.00,
}

LEVELS: Tuple[str, ...] = ("chip", "board", "system", "field")


def cost_of_fault(level: str) -> float:
    """Dollars to find one fault at the given packaging level."""
    try:
        return RULE_OF_TENS[level]
    except KeyError:
        raise ValueError(
            f"unknown level {level!r}; expected one of {LEVELS}"
        ) from None


def escalation_factor(from_level: str, to_level: str) -> float:
    """Cost multiplier for letting a fault escape between levels."""
    return cost_of_fault(to_level) / cost_of_fault(from_level)


def early_detection_savings(faults: int, caught_at: str, would_reach: str) -> float:
    """Dollars saved by catching ``faults`` early instead of late."""
    return faults * (cost_of_fault(would_reach) - cost_of_fault(caught_at))


@dataclass
class RuntimeModel:
    """Eq. (1): ``T = K * N**exponent`` seconds of CPU.

    The paper uses exponent 3 for the full ATPG+fsim job and notes 2
    for fault simulation alone (footnote 1 debates the exact value —
    the scaling benchmark *measures* it on this repo's engines).
    """

    k: float = 1.0
    exponent: float = 3.0

    def runtime(self, gates: int) -> float:
        """Predicted seconds of CPU for a gate count."""
        return self.k * gates ** self.exponent

    def relative_cost(self, gates_before: int, gates_after: int) -> float:
        """Runtime ratio after a gate-count change (e.g. partitioning)."""
        return self.runtime(gates_after) / self.runtime(gates_before)


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``T = K * N**e`` in log space; returns (K, e).

    Used by the Eq. (1) benchmark to measure the exponent of the actual
    engines and compare with the paper's claimed 3 (or 2).
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two (size, time) points")
    logs = [(math.log(n), math.log(t)) for n, t in zip(sizes, times) if t > 0]
    n = len(logs)
    sum_x = sum(x for x, _ in logs)
    sum_y = sum(y for _, y in logs)
    sum_xx = sum(x * x for x, _ in logs)
    sum_xy = sum(x * y for x, y in logs)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ValueError("degenerate fit")
    exponent = (n * sum_xy - sum_x * sum_y) / denominator
    log_k = (sum_y - exponent * sum_x) / n
    return math.exp(log_k), exponent


def partition_speedup(parts: int, exponent: float = 3.0) -> float:
    """Run-time reduction from splitting a network into equal parts.

    The paper's §III-A arithmetic: halving a board "would reduce the
    test generation and fault simulation tasks by 8 for two boards"
    (each half costs (N/2)^3, two halves cost 2*(N/2)^3 = N^3/4; the
    paper quotes the per-partition factor 2^3 = 8).
    """
    return float(parts) ** exponent


def exhaustive_pattern_count(inputs: int, latches: int = 0) -> int:
    """Minimum complete functional test size: ``2**(N+M)`` (§I-B)."""
    return 2 ** (inputs + latches)


def exhaustive_test_time_seconds(
    inputs: int, latches: int = 0, seconds_per_pattern: float = 1e-6
) -> float:
    """Wall-clock for an exhaustive functional test at a given rate."""
    return exhaustive_pattern_count(inputs, latches) * seconds_per_pattern


SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def exhaustive_test_time_years(
    inputs: int, latches: int = 0, seconds_per_pattern: float = 1e-6
) -> float:
    """The paper's headline: N=25, M=50 at 1 µs → over a billion years."""
    return exhaustive_test_time_seconds(inputs, latches, seconds_per_pattern) / SECONDS_PER_YEAR


def stuck_at_fault_count(gates: int, inputs_per_gate: int = 2) -> int:
    """Uncollapsed single stuck-at faults: 2 lines * (1 output + k inputs).

    The paper: "for a given logic network with 1000 two-input logic
    gates, the maximum number of single stuck-at faults which can be
    assumed is 6000."
    """
    return gates * 2 * (1 + inputs_per_gate)


def multiple_fault_space(nets: int) -> float:
    """``3**N`` good/SA0/SA1 combinations (§I-A's 5e47 for N=100)."""
    return 3.0 ** nets
