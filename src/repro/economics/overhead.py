"""DFT technique overhead accounting (paper §IV-§V).

The paper discusses each structured technique's price in three
currencies: extra logic (gates), extra package pins, and added delay in
the system data path.  This module turns those discussions into a
comparable ledger, with both the paper's quoted ranges and functions
that *measure* the overhead of this repo's own transformed netlists.

Quoted figures reproduced:

* LSSD: SRLs are "two or three times as complex as simple latches";
  experience puts logic overhead at 4-20 %, the spread governed by how
  many L2 latches do system work (System/38: 85 % L2 reuse); up to 4
  extra pins per package.
* Random-Access Scan: "three to four gates per storage element",
  10-20 pins, reducible to ~6 with serial addressing.
* BILBO: "about two EXCLUSIVE-ORs per latch", one or two gate delays
  in the data path, but test data volume cut ~100x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..netlist.circuit import Circuit


@dataclass
class OverheadEstimate:
    """Gate/pin/delay cost of applying a technique to a design."""

    technique: str
    extra_gates: float
    extra_pins: int
    extra_delay_gates: float
    notes: str = ""

    def gate_overhead_fraction(self, base_gates: int) -> float:
        """Gate overhead fraction."""
        if base_gates <= 0:
            return 0.0
        return self.extra_gates / base_gates


# Gate-equivalent cost assumptions (AND-INVERT implementation, Fig. 10):
#: a plain D latch in gate equivalents
PLAIN_LATCH_GATES = 4
#: an LSSD shift-register latch: L1 with two clocked ports + L2
SRL_GATES = 11
#: a raceless scan-path D flip-flop (two latches + scan port + inverters)
SCAN_PATH_FF_GATES = 10
#: a Random-Access Scan addressable polarity-hold latch
RAS_LATCH_GATES = 8
#: per-latch BILBO cost: latch + XOR + mode gating
BILBO_PER_LATCH_GATES = PLAIN_LATCH_GATES + 2 + 1.5


def lssd_overhead(
    num_latches: int,
    base_gates: int,
    l2_reuse_fraction: float = 0.0,
) -> OverheadEstimate:
    """LSSD overhead for a design with ``num_latches`` storage bits.

    ``l2_reuse_fraction`` is the share of L2 latches doing system work
    (the System/38 trick): a reused L2 would have existed anyway, so
    its gates stop counting as overhead.
    """
    if not 0.0 <= l2_reuse_fraction <= 1.0:
        raise ValueError("l2_reuse_fraction must be within [0, 1]")
    per_latch_extra = SRL_GATES - PLAIN_LATCH_GATES
    # The L2 costs about a plain latch; reuse credits it back.
    l2_credit = l2_reuse_fraction * PLAIN_LATCH_GATES
    extra = num_latches * (per_latch_extra - l2_credit)
    return OverheadEstimate(
        technique="LSSD",
        extra_gates=extra,
        extra_pins=4,
        extra_delay_gates=0.0,
        notes=f"L2 reuse {l2_reuse_fraction:.0%}",
    )


def scan_path_overhead(num_latches: int, base_gates: int) -> OverheadEstimate:
    """NEC Scan Path: raceless D-FFs plus card-select gating."""
    per_latch_extra = SCAN_PATH_FF_GATES - PLAIN_LATCH_GATES
    return OverheadEstimate(
        technique="Scan Path",
        extra_gates=num_latches * per_latch_extra + 2,  # X/Y select gates
        extra_pins=4,
        extra_delay_gates=0.0,
        notes="single-clock race margin required",
    )


def scan_set_overhead(
    num_sample_points: int, register_bits: int = 64
) -> OverheadEstimate:
    """Sperry-Univac Scan/Set: a shadow register beside the system logic."""
    return OverheadEstimate(
        technique="Scan/Set",
        extra_gates=register_bits * PLAIN_LATCH_GATES + num_sample_points,
        extra_pins=3,
        extra_delay_gates=0.0,
        notes="system latches untouched; observation is a snapshot",
    )


def random_access_scan_overhead(
    num_latches: int, serial_addressing: bool = False
) -> OverheadEstimate:
    """Fujitsu Random-Access Scan: addressable latches + decoders."""
    per_latch = RAS_LATCH_GATES - PLAIN_LATCH_GATES  # 3-4 gates/latch
    import math

    address_bits = max(1, math.ceil(math.log2(max(num_latches, 2))))
    decoder_gates = 2 ** ((address_bits + 1) // 2) + 2 ** (address_bits // 2)
    pins = 6 if serial_addressing else min(20, max(10, address_bits + 6))
    return OverheadEstimate(
        technique="Random-Access Scan",
        extra_gates=num_latches * per_latch + decoder_gates,
        extra_pins=pins,
        extra_delay_gates=0.0,
        notes="X/Y decoders shared across latches",
    )


def bilbo_overhead(num_latches: int, base_gates: int) -> OverheadEstimate:
    """BILBO: two XORs per latch plus mode multiplexing."""
    return OverheadEstimate(
        technique="BILBO",
        extra_gates=num_latches * (BILBO_PER_LATCH_GATES - PLAIN_LATCH_GATES),
        extra_pins=2,  # B1, B2
        extra_delay_gates=1.5,  # "one or two gate delays" in the data path
        notes="test data volume divided by the run length between scans",
    )


def measured_gate_overhead(before: Circuit, after: Circuit) -> float:
    """Fractional gate growth of an actual transformation."""
    base = len(before)
    if base == 0:
        return 0.0
    return (len(after) - base) / base


def scan_test_data_volume(
    num_patterns: int, chain_length: int, pi_count: int, po_count: int
) -> int:
    """Bits moved for a full scan test: shift in/out dominates.

    Per pattern: load the chain, apply PIs, capture, unload (overlapped
    with the next load in practice; we count the unoverlapped worst
    case plus PI/PO bits).
    """
    return num_patterns * (2 * chain_length + pi_count + po_count)


def bilbo_test_data_volume(
    num_sessions: int, patterns_per_session: int, chain_length: int
) -> int:
    """Bits moved for BILBO self-test: only seeds and signatures shift.

    The paper: "if 100 patterns are run between scan-outs, the test
    data volume may be reduced by a factor of 100."
    """
    return num_sessions * 2 * chain_length
