"""Levelized logic simulation in the three/five-valued calculus.

This is the "compiled code Boolean simulation" of the paper's Section
IV-A (refs [2], [74], [106], [107]): gates are evaluated once each, in
topological order, so a full-circuit evaluation costs exactly one pass.
The simulator accepts five-valued inputs, which lets the same engine
serve ordinary good-machine simulation (0/1), unknown-state analysis
(X), and D-calculus checks from the ATPG engines (D/D').
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..netlist import values as V
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType, evaluate


class LogicSimulator:
    """Single-pattern, five-valued, levelized simulator.

    For sequential circuits, flip-flop *outputs* are free variables: the
    caller supplies them alongside primary inputs (the combinational-core
    view).  Flip-flop *data* values appear in the result like any other
    net, ready to be latched by a sequential wrapper.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._order = circuit.topological_order()
        self._free = list(circuit.inputs) + [
            flop.output for flop in circuit.flip_flops
        ]

    @property
    def free_nets(self) -> Sequence[str]:
        """Nets the caller must (or may) assign: PIs then FF outputs."""
        return tuple(self._free)

    def run(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate every net from an input assignment.

        Unassigned free nets default to ``X``.  Returns a dict covering
        every net in the circuit.
        """
        net_values: Dict[str, int] = {}
        for net in self._free:
            net_values[net] = assignment.get(net, V.X)
        for net, value in assignment.items():
            if net not in net_values:
                raise NetlistError(
                    f"{net!r} is not a primary input or flip-flop output"
                )
        for gate in self._order:
            inputs = tuple(net_values[n] for n in gate.inputs)
            net_values[gate.output] = evaluate(gate.kind, inputs)
        return net_values

    def outputs(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate and project onto the primary outputs."""
        net_values = self.run(assignment)
        return {net: net_values[net] for net in self.circuit.outputs}

    def run_pattern(self, bits: Sequence[int]) -> Dict[str, int]:
        """Convenience: positional 0/1 pattern over the free nets."""
        if len(bits) != len(self._free):
            raise ValueError(
                f"pattern length {len(bits)} != {len(self._free)} free nets"
            )
        return self.run(dict(zip(self._free, bits)))

    def output_vector(self, assignment: Mapping[str, int]) -> tuple:
        """Primary output values as a tuple, in declaration order."""
        net_values = self.run(assignment)
        return tuple(net_values[n] for n in self.circuit.outputs)


def exhaustive_truth_table(circuit: Circuit) -> Dict[int, tuple]:
    """Full functional table of a combinational circuit.

    Keys are input minterm indices (input 0 = LSB); values are tuples of
    output bits.  This is the "complete functional test" of Section I-B
    — exponential by nature, usable only for small cones, which is
    precisely the paper's point.
    """
    if not circuit.is_combinational:
        raise NetlistError("exhaustive table requires a combinational circuit")
    sim = LogicSimulator(circuit)
    inputs = circuit.inputs
    table: Dict[int, tuple] = {}
    for minterm in range(1 << len(inputs)):
        assignment = {
            net: (minterm >> position) & 1
            for position, net in enumerate(inputs)
        }
        table[minterm] = sim.output_vector(assignment)
    return table
