"""Wide-word (lane-batched) simulation core: grade many faults per pass.

The compiled core (:mod:`repro.sim.compiled`) already made fault grading
cheap *per fault*: one interpreted pass over the fault's output cone,
with a machine word carrying one bit per pattern.  Its remaining cost is
the Python interpreter itself — every opcode tuple of every cone of
every fault pays dict/list indexing and bytecode dispatch.  This module
removes that term by going **array-at-a-time**: a batch of faults is
graded in one pass over the *union* of their output cones, with each
net carrying a matrix of machine words — one *lane* per faulty machine,
one 64-bit word column per 64 patterns.  A single vector op then
evaluates one gate for every fault and every pattern at once, so the
interpreter overhead is amortized across ``lanes x words`` machine
words instead of being paid per fault.

Two lane backends implement the same contract:

* ``numpy`` — each net's value is a ``(lanes, words)`` ``uint64`` array;
  gate evaluation is one (or two) vectorized bitwise ops.  Selected by
  default when numpy imports.
* ``bigint`` — dependency-free fallback: each net's value is a single
  arbitrary-precision int of ``lanes * pattern_count`` bits, the lanes
  tightly concatenated.  Bitwise ops on the big int evaluate every lane
  in one C-level pass, so even without numpy the per-op interpreter
  cost is amortized across the whole batch.

Backend selection (``resolve_backend``) honors the
``REPRO_WIDE_BACKEND`` environment variable (``numpy`` / ``bigint``) so
CI can force the fallback onto the same differential suite the numpy
path runs.

Correctness argument for batched grading (the invariant the property
tests in ``tests/test_wide_properties.py`` pin): within a batch, lane
``r`` forces only fault ``r``'s site, so a net's lane-``r`` value can
differ from the good machine only if the net is downstream of that one
site.  Evaluating the *union* cone therefore recomputes, for every
lane, either the good value (net not downstream of the lane's site) or
exactly the single-fault faulty value — identical to grading each fault
alone.  Sites that lie inside another fault's cone are re-forced after
their driving op evaluates, preserving the stuck value per lane.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..telemetry import incr as _incr
from .compiled import (
    OP_AND,
    OP_AND2,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_NAND,
    OP_NAND2,
    OP_NOR,
    OP_NOR2,
    OP_NOT,
    OP_OR,
    OP_OR2,
    OP_XNOR,
    OP_XNOR2,
    OP_XOR,
    OP_XOR2,
    CompiledCircuit,
    Op,
    compile_circuit,
)

try:  # The numpy lane backend is optional by design.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via resolve_backend
    _np = None

__all__ = [
    "LANE_BACKENDS",
    "numpy_available",
    "default_backend",
    "resolve_backend",
    "broadcast_lanes",
    "extract_lane",
    "force_lane",
    "ints_to_lane_matrix",
    "lane_matrix_to_ints",
    "WideInjector",
]

#: Environment variable overriding automatic backend selection.
BACKEND_ENV = "REPRO_WIDE_BACKEND"

LANE_BACKENDS = ("numpy", "bigint")

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def numpy_available() -> bool:
    """Did numpy import?  (The ``numpy`` lane backend needs it.)"""
    return _np is not None


def default_backend() -> str:
    """Backend used for ``"auto"``: env override, else numpy if present."""
    forced = os.environ.get(BACKEND_ENV, "").strip().lower()
    if forced:
        if forced not in LANE_BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV}={forced!r} is not one of {LANE_BACKENDS}"
            )
        if forced == "numpy" and not numpy_available():
            raise ValueError(f"{BACKEND_ENV}=numpy but numpy is not importable")
        return forced
    return "numpy" if numpy_available() else "bigint"


def resolve_backend(backend: str = "auto") -> str:
    """Normalize a backend selector to a concrete available backend."""
    if backend == "auto":
        return default_backend()
    if backend not in LANE_BACKENDS:
        raise ValueError(
            f"unknown lane backend {backend!r}; expected one of "
            f"{LANE_BACKENDS + ('auto',)}"
        )
    if backend == "numpy" and not numpy_available():
        raise ValueError("numpy lane backend requested but numpy is not importable")
    return backend


# ----------------------------------------------------------------------
# Lane packing primitives (the property-test surface)
# ----------------------------------------------------------------------
def broadcast_lanes(word: int, lanes: int, width: int) -> int:
    """Replicate a ``width``-bit word into ``lanes`` concatenated lanes.

    Lane ``r`` occupies bits ``[r*width, (r+1)*width)`` of the result.
    """
    if width <= 0:
        raise ValueError(f"lane width must be positive, got {width}")
    if lanes < 0:
        raise ValueError(f"lane count must be >= 0, got {lanes}")
    mask = (1 << width) - 1
    word &= mask
    if lanes == 0:
        return 0
    # One multiply: repunit has a 1 at every lane origin bit.
    repunit = ((1 << (lanes * width)) - 1) // mask if mask else 0
    return word * repunit if mask else 0


def extract_lane(packed: int, lane: int, width: int) -> int:
    """Read lane ``lane`` (a ``width``-bit word) back out of ``packed``."""
    if width <= 0:
        raise ValueError(f"lane width must be positive, got {width}")
    return (packed >> (lane * width)) & ((1 << width) - 1)


def force_lane(packed: int, lane: int, width: int, forced: int) -> int:
    """Overwrite one lane of ``packed`` with ``forced`` (masked to width)."""
    if width <= 0:
        raise ValueError(f"lane width must be positive, got {width}")
    mask = (1 << width) - 1
    shift = lane * width
    return (packed & ~(mask << shift)) | ((forced & mask) << shift)


def _words_per_batch(count: int) -> int:
    """64-bit words needed to carry ``count`` pattern bits (min 1)."""
    return max(1, (count + _WORD_BITS - 1) // _WORD_BITS)


def ints_to_lane_matrix(values: Sequence[int], count: int):
    """Pack per-net pattern words (Python ints) into a ``uint64`` matrix.

    Row ``i`` carries ``values[i]`` little-endian: bit ``b`` of the int
    lands in word ``b // 64``, bit ``b % 64``.  Requires numpy.
    """
    if _np is None:  # pragma: no cover - guarded by resolve_backend
        raise RuntimeError("numpy is not available")
    words = _words_per_batch(count)
    nbytes = words * 8
    buf = b"".join(int(v).to_bytes(nbytes, "little") for v in values)
    matrix = _np.frombuffer(buf, dtype="<u8").reshape(len(values), words)
    return matrix.copy()  # frombuffer is read-only; evaluation writes


def lane_matrix_to_ints(matrix) -> List[int]:
    """Inverse of :func:`ints_to_lane_matrix` (row-wise)."""
    if _np is None:  # pragma: no cover - guarded by resolve_backend
        raise RuntimeError("numpy is not available")
    data = _np.ascontiguousarray(matrix, dtype="<u8").tobytes()
    width = matrix.shape[1] * 8 if matrix.ndim == 2 else 8
    return [
        int.from_bytes(data[i * width : (i + 1) * width], "little")
        for i in range(matrix.shape[0])
    ]


# ----------------------------------------------------------------------
# Lane backends
#
# Both backends use the same lane layout: the pattern word is padded to
# whole 64-bit words (stride = words * 64 bits per lane), so lanes are
# byte-aligned and broadcast/extract can move bytes instead of doing
# arbitrary-precision arithmetic.  Inversions (NOT/NAND/...) flip the
# pad bits too; the garbage is deterministic and masked out of the
# detection words at the end, so every pattern bit column remains an
# exact independent two-valued simulation.
# ----------------------------------------------------------------------
class _NumpyLanes:
    """Numpy lane backend: per-net ``(lanes, words)`` uint64 arrays."""

    name = "numpy"

    def __init__(self, good_words: Sequence[int], count: int) -> None:
        self.count = count
        self.words = _words_per_batch(count)
        self.good = ints_to_lane_matrix(good_words, count)
        tail = count % _WORD_BITS
        self._tail_mask = _np.uint64((1 << tail) - 1 if tail else _WORD_MASK)
        self._all_ones = _np.uint64(_WORD_MASK)
        # Recycled scratch matrices per lane count.  Each grade call
        # writes thousands of (lanes, words) results; reusing freed
        # buffers via out= keeps the working set in the same hot pages
        # instead of streaming freshly faulted memory through DRAM.
        self._pool: Dict[int, List[object]] = {}

    def grade(
        self,
        ops: Sequence[Op],
        site_forces: Dict[int, List[Tuple[int, int]]],
        po_indices: Sequence[int],
        lanes: int,
    ) -> List[int]:
        """Detection word (one P-bit int) per lane, for one fault batch.

        ``site_forces[site]`` lists ``(lane, forced_word)`` rows; each
        lane appears under exactly one site.
        """
        np = _np
        good = self.good
        all_ones = self._all_ones
        invert = np.invert
        empty = np.empty
        band = np.bitwise_and
        bor = np.bitwise_or
        bxor = np.bitwise_xor
        copyto = np.copyto
        forces_get = site_forces.get
        shape = (lanes, self.words)
        num_nets = len(good)
        num_ops = len(ops)
        pool = self._pool.setdefault(lanes, [])
        pool_pop = pool.pop
        pool_push = pool.append

        def alloc():
            # Recycled scratch (stale contents — callers overwrite).
            return pool_pop() if pool else empty(shape, dtype="<u8")

        # Flat per-net state: ``cur[i]`` is net ``i``'s (lanes, words)
        # matrix, or None when every lane still holds the good value
        # (then the shared good-row expansion is fetched on first read).
        cur: List[object] = [None] * num_nets
        # Last-reader position per net.  Dropping a net's matrix right
        # after its final read lets the allocator recycle the same
        # (identically sized) buffers, so the live frontier — not the
        # whole union cone — bounds the working set and evaluation
        # stays cache-resident instead of streaming through DRAM.
        last_use = [-1] * num_nets
        for j, (_, _, ins) in enumerate(ops):
            for i in ins:
                last_use[i] = j
        for po in po_indices:  # detection still reads POs at the end
            last_use[po] = num_ops
        # ``writer[i]`` marks nets written by a cone op or forced as a
        # site: their ``cur`` entry is private faulty state, never a
        # shared good-row expansion, so it is safe to force-write rows.
        writer = bytearray(num_nets)
        # ``owned[i]`` marks ``cur[i]`` as a private un-aliased buffer
        # this call may recycle into the pool at net i's last read.
        # Aliased entries (pass-through BUFs) clear ownership on both
        # ends so a recycled buffer can never have a live second reader.
        owned = bytearray(num_nets)
        for site in site_forces:
            writer[site] = 1

        for site, forces in site_forces.items():
            arr = alloc()
            arr[:] = good[site]
            for lane, forced in forces:
                arr[lane, :] = all_ones if forced else 0
            cur[site] = arr
            owned[site] = 1

        # Op bodies below resolve each operand to either its diverged
        # (lanes, words) matrix in ``cur`` or — when ``cur`` holds None,
        # i.e. every lane still equals the good machine — the net's
        # 1-row good value ``good[i]``, which the ufuncs broadcast
        # across lanes without materializing it.  When *no* operand has
        # diverged the output equals its own good value and the op is
        # skipped outright (``r`` stays None): pre-forced sites keep
        # their matrix from the pre-pass (recomputing them from
        # all-good inputs would reproduce it exactly), everything else
        # stays None.  Divergence from a site dies out quickly in wide
        # union cones, so this prunes real work, and it keeps memory
        # traffic proportional to the diverged frontier.
        for j, (op, out, ins) in enumerate(ops):
            own = 1
            r = None
            if op < OP_AND:  # the specialized two-input forms
                a = cur[ins[0]]
                b = cur[ins[1]]
                if a is not None or b is not None:
                    if a is None:
                        a = good[ins[0]]
                    elif b is None:
                        b = good[ins[1]]
                    r = alloc()
                    if op == OP_AND2:
                        band(a, b, out=r)
                    elif op == OP_OR2:
                        bor(a, b, out=r)
                    elif op == OP_XOR2:
                        bxor(a, b, out=r)
                    elif op == OP_NAND2:
                        band(a, b, out=r)
                        invert(r, out=r)
                    elif op == OP_NOR2:
                        bor(a, b, out=r)
                        invert(r, out=r)
                    else:  # OP_XNOR2
                        bxor(a, b, out=r)
                        invert(r, out=r)
            elif op < OP_NOT:  # the n-ary reduction forms
                if len(ins) == 1:
                    # Degenerate one-input reduction: invert or BUF.
                    v = cur[ins[0]]
                    if v is not None:
                        if op == OP_NAND or op == OP_NOR or op == OP_XNOR:
                            r = alloc()
                            invert(v, out=r)
                        elif writer[out]:
                            # Copy before force writes below.
                            r = alloc()
                            copyto(r, v)
                        else:
                            r = v
                            own = 0
                            owned[ins[0]] = 0
                else:
                    live = [cur[i] for i in ins]
                    if any(v is not None for v in live):
                        # Diverged matrices first: the accumulating
                        # ``out=r`` needs a (lanes, words)-shaped
                        # broadcast from the very first pairing.
                        vals = [v for v in live if v is not None]
                        vals.extend(
                            good[i]
                            for i, v in zip(ins, live)
                            if v is None
                        )
                        r = alloc()
                        if op == OP_AND or op == OP_NAND:
                            band(vals[0], vals[1], out=r)
                        elif op == OP_OR or op == OP_NOR:
                            bor(vals[0], vals[1], out=r)
                        else:
                            bxor(vals[0], vals[1], out=r)
                        for v in vals[2:]:
                            if op == OP_AND or op == OP_NAND:
                                band(r, v, out=r)
                            elif op == OP_OR or op == OP_NOR:
                                bor(r, v, out=r)
                            else:
                                bxor(r, v, out=r)
                        if op == OP_NAND or op == OP_NOR or op == OP_XNOR:
                            invert(r, out=r)
            elif op == OP_NOT:
                a = cur[ins[0]]
                if a is not None:
                    r = alloc()
                    invert(a, out=r)
            elif op == OP_BUF:
                a = cur[ins[0]]
                if a is not None:
                    if writer[out]:
                        # Copy so re-forcing a downstream site lane
                        # below can never write through an aliased or
                        # shared array.
                        r = alloc()
                        copyto(r, a)
                    else:
                        r = a
                        own = 0
                        owned[ins[0]] = 0
            # else OP_CONST0 / OP_CONST1: the good machine already
            # holds the constant — nothing diverges, r stays None.
            if r is not None:
                forces = forces_get(out)
                if forces is not None:
                    # A batch-mate's site computed inside this union
                    # cone: its stuck lanes must survive the
                    # recomputation.
                    for lane, forced in forces:
                        r[lane, :] = all_ones if forced else 0
                prev = cur[out]  # a pre-forced site row being recomputed
                if prev is not None and owned[out]:
                    pool_push(prev)
                cur[out] = r
                writer[out] = 1
                owned[out] = own
            for i in ins:
                if last_use[i] == j:
                    v = cur[i]
                    cur[i] = None
                    if v is not None and owned[i]:
                        owned[i] = 0
                        pool_push(v)

        det = alloc()
        det.fill(0)
        tmp = alloc()
        for po in po_indices:
            v = cur[po]
            if v is not None:
                bxor(v, good[po], out=tmp)
                bor(det, tmp, out=det)
        det[:, -1] &= self._tail_mask
        result = lane_matrix_to_ints(det)
        pool_push(det)
        pool_push(tmp)
        for i in range(num_nets):
            if owned[i]:
                v = cur[i]
                if v is not None:
                    pool_push(v)
        return result


class _BigIntLanes:
    """Pure-Python lane backend: lanes concatenated into one big int.

    Lane ``r`` of a net's value occupies bits ``[r*stride, (r+1)*stride)``
    with ``stride = words * 64`` — the same padded layout as the numpy
    backend.  A single C-level big-int op then evaluates one gate for
    every lane and pattern at once, which is what keeps the
    dependency-free fallback within the same order of magnitude as the
    numpy path instead of degenerating to per-fault simulation.
    """

    name = "bigint"

    def __init__(self, good_words: Sequence[int], count: int) -> None:
        self.count = count
        self.words = _words_per_batch(count)
        self.stride = self.words * _WORD_BITS
        self.good = list(good_words)
        self.mask = (1 << count) - 1

    def grade(
        self,
        ops: Sequence[Op],
        site_forces: Dict[int, List[Tuple[int, int]]],
        po_indices: Sequence[int],
        lanes: int,
    ) -> List[int]:
        """Detection word per lane — same contract as the numpy backend."""
        stride = self.stride
        nbytes = stride // 8
        lane_ones = (1 << stride) - 1
        ones = (1 << (lanes * stride)) - 1
        good = self.good
        cache: Dict[int, int] = {}
        cache_get = cache.get

        def bcast(i: int) -> int:
            # Byte-replication beats a repunit multiply by ~5x here.
            v = cache_get(i)
            if v is None:
                v = int.from_bytes(
                    good[i].to_bytes(nbytes, "little") * lanes, "little"
                )
                cache[i] = v
            return v

        vals: Dict[int, int] = {}
        vals_get = vals.get
        forces_get = site_forces.get
        for site, forces in site_forces.items():
            v = bcast(site)
            for lane, forced in forces:
                v = force_lane(v, lane, stride, lane_ones if forced else 0)
            vals[site] = v

        def get(i: int) -> int:
            v = vals_get(i)
            return bcast(i) if v is None else v

        for op, out, ins in ops:
            if op == OP_AND2:
                r = get(ins[0]) & get(ins[1])
            elif op == OP_OR2:
                r = get(ins[0]) | get(ins[1])
            elif op == OP_XOR2:
                r = get(ins[0]) ^ get(ins[1])
            elif op == OP_NAND2:
                r = (get(ins[0]) & get(ins[1])) ^ ones
            elif op == OP_NOR2:
                r = (get(ins[0]) | get(ins[1])) ^ ones
            elif op == OP_XNOR2:
                r = (get(ins[0]) ^ get(ins[1])) ^ ones
            elif op == OP_NOT:
                r = get(ins[0]) ^ ones
            elif op == OP_BUF:
                r = get(ins[0])
            elif op == OP_AND or op == OP_NAND:
                r = get(ins[0])
                for i in ins[1:]:
                    r &= get(i)
                if op == OP_NAND:
                    r ^= ones
            elif op == OP_OR or op == OP_NOR:
                r = get(ins[0])
                for i in ins[1:]:
                    r |= get(i)
                if op == OP_NOR:
                    r ^= ones
            elif op == OP_XOR or op == OP_XNOR:
                r = get(ins[0])
                for i in ins[1:]:
                    r ^= get(i)
                if op == OP_XNOR:
                    r ^= ones
            elif op == OP_CONST0:
                r = 0
            else:
                r = ones
            forces = forces_get(out)
            if forces is not None:
                for lane, forced in forces:
                    r = force_lane(r, lane, stride, lane_ones if forced else 0)
            vals[out] = r

        det = 0
        for po in po_indices:
            v = vals_get(po)
            if v is not None:
                det |= v ^ bcast(po)
        mask = self.mask
        data = det.to_bytes(lanes * nbytes, "little")
        return [
            int.from_bytes(data[lane * nbytes : (lane + 1) * nbytes], "little")
            & mask
            for lane in range(lanes)
        ]


_BACKEND_CLASSES = {"numpy": _NumpyLanes, "bigint": _BigIntLanes}


# ----------------------------------------------------------------------
# Batched fault grading over a compiled program
# ----------------------------------------------------------------------
class WideInjector:
    """Good machine + lane-batched stuck-at grading for one pattern set.

    The wide-engine counterpart of
    :class:`repro.sim.compiled.FaultInjector`: build one per (circuit,
    packed batch), then :meth:`grade` scores a whole *batch* of faults
    in a single pass over the union of their output cones, one lane per
    fault.  ``backend`` selects the lane scheme (``"auto"`` resolves
    via :func:`resolve_backend`).
    """

    def __init__(self, circuit: Circuit, packed, backend: str = "auto") -> None:
        self.program: CompiledCircuit = compile_circuit(circuit)
        self.count = packed.count
        self.mask = packed.mask
        source_words = [
            packed.words.get(net, 0) for net in self.program.source_names
        ]
        self.good: List[int] = self.program.eval_words(source_words, self.mask)
        self.backend_name = resolve_backend(backend)
        self._lanes = _BACKEND_CLASSES[self.backend_name](self.good, self.count)

    def site_index(self, net: str) -> Optional[int]:
        """Dense index of a fault-site net (None when absent)."""
        return self.program.index.get(net)

    def good_word(self, site: int) -> int:
        """Good-machine word of one net index."""
        return self.good[site]

    def _union_cone(
        self, sites: Sequence[int]
    ) -> Tuple[List[Op], List[int]]:
        """Compacted ops (topo order) and POs reachable from ``sites``.

        The raw union program is dominated by fanin-1 ``BUF`` ops (every
        fanout branch net from :func:`repro.faultsim.expand.
        expand_branches` is one), which carry no logic.  Those are
        *aliased away* here: a BUF whose output is neither a fault site
        nor a primary output is deleted and downstream readers are
        rewritten to its input, so the interpreted loop only ever visits
        real gates.  Results are cached on the compiled program (the
        cone set depends only on the site set, not the patterns), so
        repeat batches — every pattern batch grades the same fault
        batches — skip both the BFS and the compaction.
        """
        program = self.program
        key = tuple(sorted(set(sites)))
        cached = program.union_cones.get(key)
        if cached is not None:
            _incr("sim.wide.union_cache_hits")
            return cached
        _incr("sim.wide.union_cones_built")
        readers = program._reader_map()
        nets = set(key)
        positions: set = set()
        stack = list(nets)
        while stack:
            current = stack.pop()
            for position in readers[current]:
                if position not in positions:
                    positions.add(position)
                    out = program.ops[position][1]
                    if out not in nets:
                        nets.add(out)
                        stack.append(out)
        po_indices = [o for o in program.output_indices if o in nets]
        # Sites must stay materialized (their lanes get forced) and POs
        # must stay materialized (detection reads them by index).
        keep = set(key)
        keep.update(po_indices)
        alias: Dict[int, int] = {}
        alias_get = alias.get
        ops: List[Op] = []
        for position in sorted(positions):
            op, out, ins = program.ops[position]
            ins = tuple(alias_get(i, i) for i in ins)
            if op == OP_BUF and out not in keep:
                alias[out] = ins[0]
                continue
            ops.append((op, out, ins))
        result = (ops, po_indices)
        program.union_cones[key] = result
        return result

    def grade(self, targets: Sequence[Tuple[int, int]]) -> List[int]:
        """Detection words for a batch of ``(site, forced_word)`` faults.

        Returns one P-bit int per target — bit ``i`` set iff pattern
        ``i`` detects that fault — identical to calling
        :meth:`FaultInjector.detect_word` per target.  Targets whose
        site no pattern activates are scored 0 without evaluation.
        """
        results = [0] * len(targets)
        if not targets or self.mask == 0:
            return results
        good = self.good
        mask = self.mask
        active: List[Tuple[int, int, int]] = []
        for position, (site, forced) in enumerate(targets):
            if (good[site] ^ forced) & mask:
                active.append((position, site, forced))
            else:
                _incr("sim.wide.activation_skips")
        if not active:
            return results
        site_forces: Dict[int, List[Tuple[int, int]]] = {}
        for lane, (_, site, forced) in enumerate(active):
            site_forces.setdefault(site, []).append((lane, forced))
        # Union over ALL target sites, not just the active ones: the
        # cache key must depend only on the fault batch so any-width
        # warmup primes the cache for the measured width.
        ops, po_indices = self._union_cone([site for site, _ in targets])
        _incr("sim.wide.batches")
        _incr("sim.wide.lanes", len(active))
        _incr("sim.wide.union_ops", len(ops))
        detections = self._lanes.grade(ops, site_forces, po_indices, len(active))
        for (position, _, _), det in zip(active, detections):
            results[position] = det & mask
        return results
