"""Event-driven timing simulation with per-gate delays.

The levelized simulator sees only final settled values; this engine sees
*when* nets change, which is what races and hazards are about.  It
exists to reproduce the paper's timing arguments:

* the Scan Path raceless D-type flip-flop (Fig. 13) is "raceless" only
  because inverter delay separates the master and slave windows — the
  race window is observable here;
* LSSD's level-sensitive discipline (Fig. 10) makes latch behavior
  independent of clock edge times, which the bench demonstrates by
  jittering clock waveforms and observing identical final states.

Gates have integer delays (default 1); events carry (time, net, value).
Three-valued values are supported so unknown propagation is honest.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist import values as V
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType, evaluate


@dataclass(order=True)
class _Event:
    time: int
    sequence: int
    net: str = field(compare=False)
    value: int = field(compare=False)


class EventSimulator:
    """Unit/assignable-delay event-driven simulator.

    Only combinational gates are evaluated; DFFs are ignored (their
    outputs are treated as externally driven nets), because the timing
    questions the paper raises live inside latch structures that are
    themselves built from gates (Figs. 10, 13).
    """

    def __init__(
        self,
        circuit: Circuit,
        delays: Optional[Mapping[str, int]] = None,
        default_delay: int = 1,
    ) -> None:
        self.circuit = circuit
        self.default_delay = default_delay
        self.delays: Dict[str, int] = dict(delays or {})
        self.time = 0
        self.values: Dict[str, int] = {net: V.X for net in circuit.nets()}
        self._queue: List[_Event] = []
        self._sequence = 0
        self.history: Dict[str, List[Tuple[int, int]]] = {
            net: [] for net in circuit.nets()
        }
        self._fanout = {net: circuit.fanout_of(net) for net in circuit.nets()}

    def gate_delay(self, gate_name: str) -> int:
        """Gate delay."""
        return self.delays.get(gate_name, self.default_delay)

    def schedule(self, net: str, value: int, at_time: Optional[int] = None) -> None:
        """Schedule an externally driven value change on ``net``."""
        when = self.time if at_time is None else at_time
        heapq.heappush(self._queue, _Event(when, self._sequence, net, value))
        self._sequence += 1

    def drive(self, assignment: Mapping[str, int], at_time: Optional[int] = None) -> None:
        """Schedule several externally driven value changes."""
        for net, value in assignment.items():
            self.schedule(net, value, at_time)

    def run(self, until: Optional[int] = None) -> int:
        """Process events until quiescent (or until the given time).

        Returns the time of the last processed event.
        """
        last = self.time
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self.time = max(self.time, event.time)
            if self.values[event.net] == event.value:
                continue
            self.values[event.net] = event.value
            self.history[event.net].append((event.time, event.value))
            last = event.time
            for gate in self._fanout.get(event.net, ()):
                if gate.kind is GateType.DFF:
                    continue
                inputs = tuple(self.values[n] for n in gate.inputs)
                new_value = evaluate(gate.kind, inputs)
                self.schedule(
                    gate.output, new_value, event.time + self.gate_delay(gate.name)
                )
        if until is not None:
            self.time = max(self.time, until)
        return last

    def settle(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Drive inputs now, run to quiescence, return all net values."""
        self.drive(assignment)
        self.run()
        return dict(self.values)

    def transitions_on(self, net: str) -> List[Tuple[int, int]]:
        """The (time, value) change list for a net — hazard inspection."""
        return list(self.history[net])

    def had_glitch(self, net: str, since: int = 0) -> bool:
        """True if a net changed value more than once after ``since``.

        A static hazard shows as 0→1→0 (or 1→0→1) within one input
        transaction — the phenomenon Eichelberger's hazard analysis
        [103] targets and that level-sensitive design rules exclude.
        """
        changes = [t for t, _ in self.history[net] if t > since]
        return len(changes) > 1
