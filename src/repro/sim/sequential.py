"""Clocked simulation of sequential circuits.

Implements the synchronous (single-clock Huffman) model: on each
:meth:`SequentialSimulator.step`, the combinational cloud settles, then
every flip-flop samples its data input simultaneously.  State starts as
all-``X`` — the *predictability* problem of Section III-B: without a
CLEAR/PRESET test point or scan, a tester cannot know the initial state.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist import values as V
from ..netlist.circuit import Circuit
from .logic import LogicSimulator


class SequentialSimulator:
    """Cycle-accurate three-valued simulator for DFF-based circuits."""

    def __init__(self, circuit: Circuit, initial_state: Optional[Mapping[str, int]] = None) -> None:
        self.circuit = circuit
        self._logic = LogicSimulator(circuit)
        self._flops = circuit.flip_flops
        self.state: Dict[str, int] = {
            flop.output: V.X for flop in self._flops
        }
        if initial_state:
            self.set_state(initial_state)
        self.cycle = 0

    def set_state(self, state: Mapping[str, int]) -> None:
        """Force flip-flop outputs (e.g. after a scan load or CLEAR)."""
        for net, value in state.items():
            if net not in self.state:
                raise KeyError(f"{net!r} is not a flip-flop output")
            self.state[net] = value

    def reset(self, value: int = V.ZERO) -> None:
        """Model a global CLEAR/PRESET test point (Section III-B)."""
        for net in self.state:
            self.state[net] = value

    def randomize_state(self, rng) -> None:
        """Power-up into an arbitrary definite state."""
        for net in self.state:
            self.state[net] = rng.choice((V.ZERO, V.ONE))

    @property
    def is_initialized(self) -> bool:
        """True once no flip-flop holds ``X``."""
        return all(value != V.X for value in self.state.values())

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Settle the combinational logic without clocking (no state change)."""
        assignment = dict(inputs)
        assignment.update(self.state)
        return self._logic.run(assignment)

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Apply inputs, settle, clock all flip-flops; return PO values."""
        net_values = self.evaluate(inputs)
        next_state = {
            flop.output: net_values[flop.inputs[0]] for flop in self._flops
        }
        self.state.update(next_state)
        self.cycle += 1
        return {net: net_values[net] for net in self.circuit.outputs}

    def run_sequence(
        self, input_sequence: Sequence[Mapping[str, int]]
    ) -> List[Dict[str, int]]:
        """Clock through a sequence of input vectors; returns PO history."""
        return [self.step(vector) for vector in input_sequence]

    def state_vector(self) -> Dict[str, int]:
        """State vector."""
        return dict(self.state)
