"""Compiled simulation core: levelize once, evaluate as a flat program.

This is the repo-wide fast path behind every bit-parallel engine.  A
:class:`Circuit` is *compiled* exactly once into a flat evaluation
program: nets become dense integer indices, gates become topologically
ordered ``(opcode, out_index, in_indices)`` tuples, and evaluation is a
single pass writing machine words (arbitrary-precision ints, one bit
per pattern or per machine) into a flat list.  Compared to the original
dict-keyed per-gate walk this removes every hash lookup and attribute
access from the inner loop — the paper's "compiled code Boolean
simulation" (§IV-A, refs [2], [74], [106], [107]) in Python terms.

Programs are cached per circuit and keyed on :attr:`Circuit.version`,
the netlist mutation counter, so mutating a circuit (adding a gate,
rerouting logic) can never serve a stale program — the staleness bug
class the regression tests in ``tests/test_compiled_core.py`` pin down.

On top of the flat program sits **fault-cone caching**: for a fault
site the :meth:`CompiledCircuit.cone` method extracts (and caches) the
sub-program driven by that net — only those ops, in topo order, plus
the primary outputs they can reach.  Injecting a stuck-at fault then
costs one list copy plus an evaluation of the cone instead of the whole
netlist, which is what makes parallel-pattern single-fault simulation
scale with average cone size rather than circuit size.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..telemetry import incr as _incr

# Opcodes of the flat program.  The two-input forms of the commutative
# gates are specialized because they dominate real netlists and their
# evaluation needs no reduction loop.
(
    OP_AND2,
    OP_OR2,
    OP_XOR2,
    OP_NAND2,
    OP_NOR2,
    OP_XNOR2,
    OP_AND,
    OP_NAND,
    OP_OR,
    OP_NOR,
    OP_XOR,
    OP_XNOR,
    OP_NOT,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
) = range(16)

_WIDE_OPCODE = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
}

_BINARY_OPCODE = {
    GateType.AND: OP_AND2,
    GateType.OR: OP_OR2,
    GateType.XOR: OP_XOR2,
    GateType.NAND: OP_NAND2,
    GateType.NOR: OP_NOR2,
    GateType.XNOR: OP_XNOR2,
}

Op = Tuple[int, int, Tuple[int, ...]]


class ConeProgram:
    """Cached sub-program for one fault site: its output cone only."""

    __slots__ = ("site", "ops", "po_indices", "net_indices")

    def __init__(
        self,
        site: int,
        ops: List[Op],
        po_indices: List[int],
        net_indices: Set[int],
    ) -> None:
        self.site = site
        self.ops = ops
        self.po_indices = po_indices
        self.net_indices = net_indices


class CompiledCircuit:
    """Flat evaluation program for a circuit's combinational logic.

    Sources (primary inputs, then flip-flop outputs) get the lowest
    indices; each combinational gate output gets the next index in
    topological order.  All evaluation methods take *source words* in
    :attr:`source_names` order and return the full word list, indexable
    via :attr:`index`.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.version = circuit.version
        order = circuit.topological_order()

        names: List[str] = list(circuit.inputs)
        names.extend(flop.output for flop in circuit.flip_flops)
        index: Dict[str, int] = {net: i for i, net in enumerate(names)}
        self.num_sources = len(names)

        ops: List[Op] = []
        for gate in order:
            out = len(names)
            names.append(gate.output)
            index[gate.output] = out
            try:
                ins = tuple(index[n] for n in gate.inputs)
            except KeyError as exc:
                raise NetlistError(
                    f"gate {gate.name!r} reads unlevelized net {exc}"
                ) from None
            if len(ins) == 2 and gate.kind in _BINARY_OPCODE:
                opcode = _BINARY_OPCODE[gate.kind]
            else:
                opcode = _WIDE_OPCODE.get(gate.kind)
                if opcode is None:
                    raise NetlistError(f"cannot compile gate type {gate.kind}")
            ops.append((opcode, out, ins))

        self.net_names: List[str] = names
        self.index: Dict[str, int] = index
        self.num_nets = len(names)
        self.ops = ops
        self.source_names: Tuple[str, ...] = tuple(names[: self.num_sources])
        self.output_indices: List[int] = [
            index[net] for net in circuit.outputs
        ]
        self._readers: Optional[List[List[int]]] = None
        self._cones: Dict[int, ConeProgram] = {}
        # Union-cone cache for the wide engine (repro.sim.wide): keyed by
        # the sorted site tuple, living here so it persists across the
        # per-pattern-batch WideInjector rebuilds.
        self.union_cones: Dict[Tuple[int, ...], Tuple[List[Op], List[int]]] = {}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval_words(
        self,
        source_words: Sequence[int],
        mask: int,
        out: Optional[List[int]] = None,
    ) -> List[int]:
        """One full pass: word per net, sources given in order.

        ``out`` (length :attr:`num_nets`) is reused as the result buffer
        when given, so repeat callers skip the per-call list build; every
        net is overwritten, so stale contents cannot leak through.
        """
        if out is None:
            words = [0] * self.num_nets
        else:
            words = out
        words[: self.num_sources] = source_words
        _run_ops(self.ops, words, mask)
        return words

    def eval_forced(
        self, source_words: Sequence[int], mask: int, force: Mapping[int, int]
    ) -> List[int]:
        """Full pass with per-net overrides applied *after* each net
        computes — the general stuck-at injection hook."""
        words = [0] * self.num_nets
        words[: self.num_sources] = source_words
        for idx, value in force.items():
            if idx < self.num_sources:
                words[idx] = value & mask
        for op in self.ops:
            _run_ops((op,), words, mask)
            out = op[1]
            if out in force:
                words[out] = force[out] & mask
        return words

    def eval_masked(
        self,
        source_words: Sequence[int],
        mask: int,
        or_masks: Sequence[int],
        and_masks: Sequence[int],
    ) -> List[int]:
        """Full pass with per-net bit injection applied as values settle:
        ``word = (word | or_masks[i]) & and_masks[i]``.  This is the
        parallel-fault discipline — one bit per faulty machine."""
        words = [0] * self.num_nets
        for idx in range(self.num_sources):
            words[idx] = (source_words[idx] | or_masks[idx]) & and_masks[idx]
        for op, out, ins in self.ops:
            if op == OP_AND2:
                r = words[ins[0]] & words[ins[1]]
            elif op == OP_OR2:
                r = words[ins[0]] | words[ins[1]]
            elif op == OP_XOR2:
                r = words[ins[0]] ^ words[ins[1]]
            elif op == OP_NAND2:
                r = (words[ins[0]] & words[ins[1]]) ^ mask
            elif op == OP_NOR2:
                r = (words[ins[0]] | words[ins[1]]) ^ mask
            elif op == OP_XNOR2:
                r = (words[ins[0]] ^ words[ins[1]]) ^ mask
            elif op == OP_NOT:
                r = words[ins[0]] ^ mask
            elif op == OP_BUF:
                r = words[ins[0]]
            elif op == OP_AND or op == OP_NAND:
                r = mask
                for i in ins:
                    r &= words[i]
                if op == OP_NAND:
                    r ^= mask
            elif op == OP_OR or op == OP_NOR:
                r = 0
                for i in ins:
                    r |= words[i]
                if op == OP_NOR:
                    r ^= mask
            elif op == OP_XOR or op == OP_XNOR:
                r = 0
                for i in ins:
                    r ^= words[i]
                if op == OP_XNOR:
                    r ^= mask
            elif op == OP_CONST0:
                r = 0
            else:
                r = mask
            words[out] = (r | or_masks[out]) & and_masks[out]
        return words

    # ------------------------------------------------------------------
    # Fault-cone caching
    # ------------------------------------------------------------------
    def _reader_map(self) -> List[List[int]]:
        readers = self._readers
        if readers is None:
            readers = [[] for _ in range(self.num_nets)]
            for position, (_, _, ins) in enumerate(self.ops):
                for idx in ins:
                    readers[idx].append(position)
            self._readers = readers
        return readers

    def cone(self, site: int) -> ConeProgram:
        """The (cached) output-cone sub-program of net index ``site``."""
        cached = self._cones.get(site)
        if cached is not None:
            _incr("sim.compiled.cone_cache_hits")
            return cached
        _incr("sim.compiled.cones_built")
        readers = self._reader_map()
        net_indices: Set[int] = {site}
        op_positions: Set[int] = set()
        stack = [site]
        while stack:
            current = stack.pop()
            for position in readers[current]:
                if position not in op_positions:
                    op_positions.add(position)
                    out = self.ops[position][1]
                    if out not in net_indices:
                        net_indices.add(out)
                        stack.append(out)
        ops = [self.ops[p] for p in sorted(op_positions)]
        po_indices = [o for o in self.output_indices if o in net_indices]
        cone = ConeProgram(site, ops, po_indices, net_indices)
        self._cones[site] = cone
        return cone

    def eval_cone(
        self, cone: ConeProgram, base_words: Sequence[int], forced_word: int, mask: int
    ) -> List[int]:
        """Re-evaluate only a fault's cone against a good-machine base.

        ``base_words`` is a prior :meth:`eval_words` result; the site is
        forced to ``forced_word`` and only downstream ops recompute, so
        every net outside the cone keeps its good value.
        """
        words = list(base_words)
        words[cone.site] = forced_word
        _run_ops(cone.ops, words, mask)
        return words

    def eval_cone_scratch(
        self, cone: ConeProgram, scratch: List[int], forced_word: int, mask: int
    ) -> None:
        """In-place :meth:`eval_cone` against a caller-owned scratch list.

        ``scratch`` must equal the base evaluation on every net in
        ``cone.net_indices`` on entry; on return exactly those nets hold
        faulty values and every other entry is untouched.  The caller
        restores the cone nets afterwards to keep the invariant — this
        trades the per-fault ``list(base_words)`` copy (which scales
        with circuit size) for a restore loop that scales with cone
        size.
        """
        scratch[cone.site] = forced_word
        _run_ops(cone.ops, scratch, mask)

    def words_to_dict(self, words: Sequence[int]) -> Dict[str, int]:
        """Map an evaluation result back to net names."""
        return dict(zip(self.net_names, words))


def _run_ops(ops: Sequence[Op], words: List[int], mask: int) -> None:
    """Interpret a (sub-)program over an in-place word array."""
    for op, out, ins in ops:
        if op == OP_AND2:
            words[out] = words[ins[0]] & words[ins[1]]
        elif op == OP_OR2:
            words[out] = words[ins[0]] | words[ins[1]]
        elif op == OP_XOR2:
            words[out] = words[ins[0]] ^ words[ins[1]]
        elif op == OP_NAND2:
            words[out] = (words[ins[0]] & words[ins[1]]) ^ mask
        elif op == OP_NOR2:
            words[out] = (words[ins[0]] | words[ins[1]]) ^ mask
        elif op == OP_XNOR2:
            words[out] = (words[ins[0]] ^ words[ins[1]]) ^ mask
        elif op == OP_NOT:
            words[out] = words[ins[0]] ^ mask
        elif op == OP_BUF:
            words[out] = words[ins[0]]
        elif op == OP_AND:
            r = mask
            for i in ins:
                r &= words[i]
            words[out] = r
        elif op == OP_NAND:
            r = mask
            for i in ins:
                r &= words[i]
            words[out] = r ^ mask
        elif op == OP_OR:
            r = 0
            for i in ins:
                r |= words[i]
            words[out] = r
        elif op == OP_NOR:
            r = 0
            for i in ins:
                r |= words[i]
            words[out] = r ^ mask
        elif op == OP_XOR:
            r = 0
            for i in ins:
                r ^= words[i]
            words[out] = r
        elif op == OP_XNOR:
            r = 0
            for i in ins:
                r ^= words[i]
            words[out] = r ^ mask
        elif op == OP_CONST0:
            words[out] = 0
        else:
            words[out] = mask


_PROGRAM_CACHE: "WeakKeyDictionary[Circuit, CompiledCircuit]" = WeakKeyDictionary()


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile (or fetch the cached program for) a circuit.

    The cache is keyed on the circuit object *and* its mutation
    version: any netlist mutation bumps :attr:`Circuit.version`, so the
    next call transparently recompiles instead of serving stale state.
    """
    cached = _PROGRAM_CACHE.get(circuit)
    if cached is not None and cached.version == circuit.version:
        _incr("sim.compiled.cache_hits")
        return cached
    _incr("sim.compiled.compiles")
    program = CompiledCircuit(circuit)
    _PROGRAM_CACHE[circuit] = program
    return program


class FaultInjector:
    """Good machine + cone-cached stuck-at injection for one pattern set.

    Build one per (circuit, packed batch): the good machine is evaluated
    once, then :meth:`detect_word` / :meth:`faulty_output_words` inject
    single stuck-at faults by re-evaluating only the fault's cached
    output cone.  This object is the shared hot path of the
    parallel-pattern fault simulator and the exhaustive BIST analyzers
    (syndrome and Walsh testing).
    """

    def __init__(self, circuit: Circuit, packed) -> None:
        self.program = compile_circuit(circuit)
        self.mask = packed.mask
        source_words = [
            packed.words.get(net, 0) for net in self.program.source_names
        ]
        self.good: List[int] = self.program.eval_words(source_words, self.mask)
        # Lazily built copy of ``good`` reused by every detect_word call;
        # always restored to the good machine between injections.
        self._scratch: Optional[List[int]] = None

    def site_index(self, net: str) -> Optional[int]:
        """Dense index of a fault-site net (None when absent)."""
        return self.program.index.get(net)

    def good_word(self, net: str) -> int:
        """Good-machine word of one net."""
        return self.good[self.program.index[net]]

    def detect_word(self, site: int, forced_word: int) -> int:
        """Patterns (bits) on which forcing ``site`` flips some PO.

        Starts with the activation check — if no pattern drives the
        site away from the stuck value the cone is never evaluated.
        """
        good = self.good
        if not (good[site] ^ forced_word) & self.mask:
            _incr("sim.compiled.activation_skips")
            return 0
        cone = self.program.cone(site)
        _incr("sim.compiled.cone_evals")
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = list(good)
        self.program.eval_cone_scratch(cone, scratch, forced_word, self.mask)
        detected = 0
        for out in cone.po_indices:
            detected |= good[out] ^ scratch[out]
        # Restore the cone's nets so the scratch mirrors the good machine
        # again — the aliasing invariant the next injection relies on.
        for index in cone.net_indices:
            scratch[index] = good[index]
        return detected & self.mask

    def faulty_words(self, site: int, forced_word: int) -> List[int]:
        """Full faulty-machine word list (non-cone nets keep good values)."""
        cone = self.program.cone(site)
        _incr("sim.compiled.cone_evals")
        return self.program.eval_cone(cone, self.good, forced_word, self.mask)

    def faulty_output_words(self, site: Optional[int], forced_word: int) -> Dict[str, int]:
        """Primary-output words of the faulty machine.

        ``site=None`` (a net outside the circuit) degenerates to the
        good machine, matching the forgiving force semantics of
        :class:`repro.sim.packed.PackedSimulator`.
        """
        outputs = self.program.circuit.outputs
        if site is None:
            good = self.good
            index = self.program.index
            return {net: good[index[net]] for net in outputs}
        faulty = self.faulty_words(site, forced_word)
        index = self.program.index
        return {net: faulty[index[net]] for net in outputs}
