"""Simulation engines: levelized, pattern-packed, sequential, event-driven."""

from .logic import LogicSimulator, exhaustive_truth_table
from .packed import PackedPatternSet, PackedSimulator
from .sequential import SequentialSimulator
from .event import EventSimulator

__all__ = [
    "LogicSimulator",
    "exhaustive_truth_table",
    "PackedPatternSet",
    "PackedSimulator",
    "SequentialSimulator",
    "EventSimulator",
]
