"""Simulation engines: compiled/levelized, pattern-packed, sequential,
event-driven."""

from .logic import LogicSimulator, exhaustive_truth_table
from .compiled import CompiledCircuit, FaultInjector, compile_circuit
from .packed import PackedPatternSet, PackedSimulator
from .sequential import SequentialSimulator
from .event import EventSimulator

__all__ = [
    "LogicSimulator",
    "exhaustive_truth_table",
    "CompiledCircuit",
    "FaultInjector",
    "compile_circuit",
    "PackedPatternSet",
    "PackedSimulator",
    "SequentialSimulator",
    "EventSimulator",
]
