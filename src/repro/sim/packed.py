"""Pattern-packed (bit-parallel) two-valued simulation.

The classic "parallel simulation" trick (refs [102], [104]): a machine
word carries one bit per *pattern*, so a single pass of bitwise gate
operations simulates the whole pattern set at once.  Python ints are
arbitrary-precision, so the word width is the pattern count — hundreds
of patterns per pass — which is what makes the fault simulators and the
syndrome/Walsh exhaustive engines tractable in pure Python.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gates import GateType
from ..telemetry import incr as _incr
from .compiled import FaultInjector, compile_circuit


class PackedPatternSet:
    """A set of input patterns packed net-wise into integers.

    ``words[net]`` has bit ``i`` equal to pattern ``i``'s value on that
    net.  ``count`` is the number of patterns (the active word width).
    """

    def __init__(self, nets: Sequence[str], count: int = 0) -> None:
        self.nets = list(nets)
        self.count = count
        self.words: Dict[str, int] = {net: 0 for net in nets}

    @classmethod
    def from_patterns(
        cls, nets: Sequence[str], patterns: Sequence[Mapping[str, int]]
    ) -> "PackedPatternSet":
        """From patterns."""
        packed = cls(nets, len(patterns))
        if not patterns:
            return packed
        words = packed.words
        for net in nets:
            # Build the word as a binary literal: one C-level parse per
            # net instead of a Python-level bit-or per (pattern, net).
            bits = "".join("1" if p.get(net, 0) else "0" for p in patterns)
            words[net] = int(bits[::-1], 2)
        return packed

    @classmethod
    def exhaustive(cls, nets: Sequence[str]) -> "PackedPatternSet":
        """All ``2**len(nets)`` minterms; net ``i`` gets the canonical
        counting word so pattern ``m`` assigns bit ``(m >> i) & 1``."""
        n = len(nets)
        count = 1 << n
        packed = cls(nets, count)
        for position, net in enumerate(nets):
            # Canonical counting pattern: blocks of 2^position zeros then
            # 2^position ones, repeated.  Built with one bigint multiply:
            # repeat unit U across the word via (2^count-1)/(2^period-1).
            block = (1 << (1 << position)) - 1  # 2^position ones
            period = 1 << (position + 1)
            unit = block << (1 << position)
            repetitions = ((1 << count) - 1) // ((1 << period) - 1)
            packed.words[net] = unit * repetitions
        return packed

    def add_pattern(self, pattern: Mapping[str, int]) -> int:
        """Append a pattern; returns its index."""
        index = self.count
        bit = 1 << index
        for net in self.nets:
            if pattern.get(net, 0):
                self.words[net] |= bit
        self.count += 1
        return index

    def pattern(self, index: int) -> Dict[str, int]:
        """Recover pattern ``index`` as a net -> bit mapping."""
        return {net: (self.words[net] >> index) & 1 for net in self.nets}

    @property
    def mask(self) -> int:
        """Bit mask covering the register width."""
        return (1 << self.count) - 1


class PackedSimulator:
    """Bit-parallel two-valued simulator over a combinational circuit.

    The workhorse of the fault simulators: :meth:`run` evaluates every
    net for every packed pattern in one topological pass, optionally
    with one stuck-at fault injected (a net forced to all-0s/all-1s
    *after* its driver evaluates — gate-input faults are handled by the
    fault simulator via fanout-branch modeling).

    By default evaluation routes through the compiled core
    (:mod:`repro.sim.compiled`): the circuit is levelized once into a
    flat program, cached per circuit and invalidated by netlist
    mutation.  ``compiled=False`` selects the original dict-keyed
    per-gate walk, kept as the reference implementation the property
    tests and engine benchmarks compare against.
    """

    def __init__(self, circuit: Circuit, compiled: bool = True) -> None:
        if not circuit.is_combinational:
            raise NetlistError(
                "PackedSimulator needs a combinational circuit; "
                "use Circuit.combinational_core() or a sequential simulator"
            )
        self.circuit = circuit
        self.compiled = compiled

    def run(
        self,
        packed: PackedPatternSet,
        force: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Evaluate all nets for all patterns.

        ``force`` maps net names to full-word override values (applied
        after the net is computed) — the mechanism used for stuck-at
        injection: ``{net: 0}`` for S-A-0, ``{net: mask}`` for S-A-1.
        """
        _incr("sim.packed.runs")
        _incr("sim.packed.patterns", packed.count)
        if self.compiled:
            return self._run_compiled(packed, force)
        return self._run_reference(packed, force)

    def _run_compiled(
        self, packed: PackedPatternSet, force: Optional[Mapping[str, int]]
    ) -> Dict[str, int]:
        program = compile_circuit(self.circuit)
        mask = packed.mask
        source_words = [
            packed.words.get(net, 0) for net in program.source_names
        ]
        if force:
            force_by_index = {
                program.index[net]: value
                for net, value in force.items()
                if net in program.index
            }
            words = program.eval_forced(source_words, mask, force_by_index)
        else:
            words = program.eval_words(source_words, mask)
        return program.words_to_dict(words)

    def _run_reference(
        self, packed: PackedPatternSet, force: Optional[Mapping[str, int]]
    ) -> Dict[str, int]:
        # The pre-compiled-core implementation, evaluated gate by gate
        # over name-keyed dicts.  The topological order is fetched per
        # run so netlist mutations are honored here too.
        mask = packed.mask
        words: Dict[str, int] = {}
        for net in self.circuit.inputs:
            value = packed.words.get(net, 0)
            words[net] = value
        if force:
            for net, value in force.items():
                if net in words:
                    words[net] = value & mask
        for gate in self.circuit.topological_order():
            words[gate.output] = _evaluate_packed(gate.kind, gate.inputs, words, mask)
            if force is not None and gate.output in force:
                words[gate.output] = force[gate.output] & mask
        return words

    def injector(self, packed: PackedPatternSet) -> FaultInjector:
        """Good machine + cone-cached fault injection for one batch.

        The fast path for callers that inject many single faults against
        the same pattern set (fault simulators, syndrome/Walsh BIST):
        each fault re-evaluates only its cached output cone.
        """
        return FaultInjector(self.circuit, packed)

    def output_words(
        self,
        packed: PackedPatternSet,
        force: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Output words."""
        words = self.run(packed, force)
        return {net: words[net] for net in self.circuit.outputs}


def _evaluate_packed(
    kind: GateType, input_nets: Sequence[str], words: Mapping[str, int], mask: int
) -> int:
    if kind is GateType.AND:
        result = mask
        for net in input_nets:
            result &= words[net]
        return result
    if kind is GateType.NAND:
        result = mask
        for net in input_nets:
            result &= words[net]
        return result ^ mask
    if kind is GateType.OR:
        result = 0
        for net in input_nets:
            result |= words[net]
        return result
    if kind is GateType.NOR:
        result = 0
        for net in input_nets:
            result |= words[net]
        return result ^ mask
    if kind is GateType.XOR:
        result = 0
        for net in input_nets:
            result ^= words[net]
        return result
    if kind is GateType.XNOR:
        result = 0
        for net in input_nets:
            result ^= words[net]
        return result ^ mask
    if kind is GateType.NOT:
        return words[input_nets[0]] ^ mask
    if kind is GateType.BUF:
        return words[input_nets[0]]
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return mask
    raise NetlistError(f"cannot pack-evaluate gate type {kind}")
