"""Command-line front door: ``python -m repro``.

Currently one command family, ``campaign``, exposing the resumable
store-backed orchestrator (:mod:`repro.campaign`):

``python -m repro campaign run [--spec FILE] [--store DIR] [--workers N]``
    Run (or resume) a campaign.  Without ``--spec`` the built-in demo
    spec runs.  Every cell is memoized through the result store, so a
    warm re-run does zero fault-simulation work; an interrupted run
    resumes from its checkpoint.  Each cell runs under a retry budget
    (``--retries``); what happens when a cell *keeps* failing is
    chosen by ``--failure-policy`` (default ``raise``).  Exit code 0
    means every processed cell completed; 2 means the campaign
    finished but some cells failed permanently (recorded in the
    checkpoint and the manifest's ``failures`` section, re-attempted
    on the next run).

``python -m repro campaign status [--spec FILE] [--store DIR]``
    Show completed/pending/failed cells from the checkpoint without
    running (a corrupt checkpoint is rebuilt from the store).

``python -m repro campaign clean [--store DIR] [--spec FILE]``
    Evict every stored artifact and drop the campaign's state files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .campaign import CampaignRunner, CampaignSpec, demo_spec
from .resilience import RetryPolicy

DEFAULT_STORE = ".repro-store"

RUN_EXIT_CODES = """\
exit codes:
  0  every processed cell completed (possibly from cache)
  1  fatal error (bad spec, or a cell failed under --failure-policy raise)
  2  partial failure: campaign finished, but one or more cells failed
     permanently; they are recorded in the checkpoint and the manifest
     'failures' section and will be re-attempted on the next run
"""


def _load_spec(path: Optional[str]) -> CampaignSpec:
    return CampaignSpec.from_file(path) if path else demo_spec()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec",
        metavar="FILE",
        help="JSON campaign spec (default: the built-in demo spec)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE,
        help=f"result store directory (default: {DEFAULT_STORE})",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Design-for-testability toolkit command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser(
        "campaign", help="run/inspect/clean store-backed campaigns"
    )
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser(
        "run",
        help="run or resume a campaign",
        epilog=RUN_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_common(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard each cell's fault simulation across N processes "
        "(results are bit-identical to N=1 and share one cache)",
    )
    run.add_argument(
        "--limit",
        type=int,
        metavar="K",
        help="process at most K cells this invocation (resume later)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="R",
        help="retry a failing cell up to R times with jittered "
        "exponential backoff before giving up (default: 2)",
    )
    run.add_argument(
        "--failure-policy",
        choices=("raise", "quarantine", "degrade"),
        default="raise",
        help="what to do with a cell that fails every retry: 'raise' "
        "aborts the run (exit 1), 'quarantine'/'degrade' record the "
        "failure and continue (exit 2); default: raise",
    )

    status = actions.add_parser("status", help="show checkpoint progress")
    _add_common(status)

    clean = actions.add_parser("clean", help="evict the store + state")
    _add_common(clean)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    spec = _load_spec(args.spec)
    runner = CampaignRunner(
        spec,
        args.store,
        workers=getattr(args, "workers", 1),
        retry=RetryPolicy(max_retries=max(0, getattr(args, "retries", 2))),
        failure_policy=getattr(args, "failure_policy", "raise"),
    )

    if args.action == "run":
        result = runner.run(limit=args.limit)
        sys.stdout.write(result.summary)
        print(
            f"[store] hits={result.hits} misses={result.misses} "
            f"quarantined={runner.store.stats.quarantined} "
            f"entries={len(runner.store)}"
        )
        print(f"[campaign] state: {runner.state_dir}")
        if result.completed < result.total:
            print(
                f"[campaign] {result.total - result.completed} cell(s) "
                "pending — re-run to resume from the checkpoint"
            )
        if result.failures:
            for record in result.failures:
                print(
                    f"[campaign] FAILED {record.site}: {record.error}: "
                    f"{record.message} "
                    f"(digest {record.digest}, {record.attempts} attempts)"
                )
            print(
                f"[campaign] {len(result.failures)} cell(s) failed "
                "permanently — recorded in the checkpoint, re-attempted "
                "on the next run"
            )
            return 2
        return 0

    if args.action == "status":
        status = runner.status()
        print(
            f"campaign {status['campaign']!r}: "
            f"{status['completed']}/{status['total']} cells completed, "
            f"{len(status['failed'])} failed, "
            f"{status['skipped']} skipped, "
            f"{status['store_entries']} store entries at {status['store_root']}"
        )
        for cell_id in status["pending"]:
            print(f"  pending: {cell_id}")
        for cell_id in status["failed"]:
            print(f"  failed: {cell_id}")
        return 0

    if args.action == "clean":
        outcome = runner.clean()
        print(
            f"evicted {outcome['evicted']} artifact(s), "
            f"removed {outcome['state_dirs_removed']} campaign state dir(s)"
        )
        return 0

    raise AssertionError(f"unhandled action {args.action!r}")


if __name__ == "__main__":
    sys.exit(main())
