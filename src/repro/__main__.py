"""Command-line front door: ``python -m repro``.

Two command families: ``campaign``, exposing the resumable
store-backed orchestrator (:mod:`repro.campaign`), and ``serve``, the
long-running multi-tenant campaign daemon (:mod:`repro.service`):

``python -m repro campaign run [--spec FILE] [--store DIR] [--workers N]``
    Run (or resume) a campaign.  Without ``--spec`` the built-in demo
    spec runs.  Every cell is memoized through the result store, so a
    warm re-run does zero fault-simulation work; an interrupted run
    resumes from its checkpoint.  Each cell runs under a retry budget
    (``--retries``); what happens when a cell *keeps* failing is
    chosen by ``--failure-policy`` (default ``raise``).  Exit code 0
    means every processed cell completed; 2 means the campaign
    finished but some cells failed permanently (recorded in the
    checkpoint and the manifest's ``failures`` section, re-attempted
    on the next run).

``python -m repro campaign status [--spec FILE] [--store DIR]``
    Show completed/pending/failed cells from the checkpoint without
    running (a corrupt checkpoint is rebuilt from the store).

``python -m repro campaign clean [--store DIR] [--spec FILE] [--purge-store]``
    Evict this campaign's own artifacts and drop its state files.
    Stores are shared between campaigns and tenants, so only the
    spec's cell cache keys are evicted; ``--purge-store`` restores the
    old wipe-everything behaviour.

``python -m repro serve [--store DIR] [--port N] [--size-budget BYTES] ...``
    Run the multi-tenant campaign daemon: clients submit campaign
    specs over a local socket (see :mod:`repro.service`), identical
    submissions dedupe onto one execution through ``cache_key``,
    results stream back incrementally, and the store is kept bounded
    by LRU eviction under ``--size-budget``.  Accepted jobs are
    journaled to ``<store>/jobs.jsonl`` before the ack and recovered
    on restart (``--no-journal`` opts out).  SIGTERM/SIGINT drain the
    queue and exit 0; an unreadable jobs journal exits 3 (recovery
    would be silently broken — fix or remove the journal).  The
    ``--chaos-*`` flags arm the seeded daemon chaos harness
    (:class:`repro.resilience.ChaosConfig`) for recovery testing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .campaign import CampaignRunner, CampaignSpec, demo_spec
from .resilience import RetryPolicy

DEFAULT_STORE = ".repro-store"

RUN_EXIT_CODES = """\
exit codes:
  0  every processed cell completed (possibly from cache)
  1  fatal error (bad spec, or a cell failed under --failure-policy raise)
  2  partial failure: campaign finished, but one or more cells failed
     permanently; they are recorded in the checkpoint and the manifest
     'failures' section and will be re-attempted on the next run
"""


def _load_spec(path: Optional[str]) -> CampaignSpec:
    return CampaignSpec.from_file(path) if path else demo_spec()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec",
        metavar="FILE",
        help="JSON campaign spec (default: the built-in demo spec)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE,
        help=f"result store directory (default: {DEFAULT_STORE})",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Design-for-testability toolkit command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser(
        "campaign", help="run/inspect/clean store-backed campaigns"
    )
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser(
        "run",
        help="run or resume a campaign",
        epilog=RUN_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_common(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard each cell's fault simulation across N processes "
        "(results are bit-identical to N=1 and share one cache)",
    )
    run.add_argument(
        "--backend",
        choices=("fork", "spawn", "inline", "thread-lane"),
        help="execution backend for sharded fault simulation "
        "(default: auto — fork where available, else spawn)",
    )
    run.add_argument(
        "--limit",
        type=int,
        metavar="K",
        help="process at most K cells this invocation (resume later)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="R",
        help="retry a failing cell up to R times with jittered "
        "exponential backoff before giving up (default: 2)",
    )
    run.add_argument(
        "--failure-policy",
        choices=("raise", "quarantine", "degrade"),
        default="raise",
        help="what to do with a cell that fails every retry: 'raise' "
        "aborts the run (exit 1), 'quarantine'/'degrade' record the "
        "failure and continue (exit 2); default: raise",
    )

    status = actions.add_parser("status", help="show checkpoint progress")
    _add_common(status)

    clean = actions.add_parser(
        "clean", help="evict this campaign's artifacts + state"
    )
    _add_common(clean)
    clean.add_argument(
        "--purge-store",
        action="store_true",
        help="wipe EVERY artifact in the store, not just this "
        "campaign's cells (the store may be shared with other "
        "campaigns and tenants)",
    )

    serve = commands.add_parser(
        "serve", help="run the multi-tenant campaign daemon"
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE,
        help=f"shared result store directory (default: {DEFAULT_STORE})",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="TCP port (default: 0 = pick a free port; discover it "
        "via --ready-file)",
    )
    serve.add_argument(
        "--ready-file",
        metavar="FILE",
        help="write {host, port, pid, store} JSON here once listening "
        "(default: <store>/service.json)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fork-shard each cell's fault simulation across N "
        "processes (default: 1)",
    )
    serve.add_argument(
        "--lanes",
        type=int,
        default=1,
        metavar="N",
        help="run N concurrent execution lanes, fair-share scheduled "
        "across tenants; cold cells dispatch to a process backend so "
        "lanes overlap on CPU (default: 1)",
    )
    serve.add_argument(
        "--exec-backend",
        choices=("fork", "spawn", "inline", "thread-lane"),
        help="execution backend for cell work (default: auto — fork "
        "where available, else spawn)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="R",
        help="retry a failing cell up to R times before recording the "
        "failure (default: 0)",
    )
    serve.add_argument(
        "--failure-policy",
        choices=("raise", "quarantine", "degrade"),
        default="quarantine",
        help="'quarantine'/'degrade' fail only the poisoned cell and "
        "keep serving; 'raise' aborts the submitting job after the "
        "first failed cell (the daemon never dies); default: quarantine",
    )
    serve.add_argument(
        "--size-budget",
        type=int,
        metavar="BYTES",
        help="LRU-evict oldest artifacts once the store exceeds this "
        "many bytes (in-flight jobs' artifacts are never evicted; "
        "default: unbounded)",
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        metavar="BYTES",
        help="reject submissions from tenants whose cold executions "
        "have already been charged this many artifact bytes "
        "(default: unlimited)",
    )
    serve.add_argument(
        "--index-max-bytes",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="rotate the store's index.jsonl journal past this size "
        "(default: 1 MiB)",
    )
    serve.add_argument(
        "--quarantine-max-files",
        type=int,
        default=64,
        metavar="N",
        help="keep at most N quarantined corpses (default: 64)",
    )
    serve.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the jobs journal: accepted jobs are not durable "
        "and a daemon crash loses them (default: journal to "
        "<store>/jobs.jsonl and recover open jobs on start)",
    )
    serve.add_argument(
        "--journal-max-bytes",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="rotate <store>/jobs.jsonl past this size, compacting "
        "open jobs into a snapshot line (default: 1 MiB)",
    )
    serve.add_argument(
        "--job-history",
        type=int,
        default=64,
        metavar="N",
        help="keep the last N finished jobs resumable (their buffered "
        "event streams) for late 'resume' requests (default: 64)",
    )
    serve.add_argument(
        "--cell-deadline",
        type=float,
        metavar="SECONDS",
        help="per-attempt wall-clock bound for a cold cell in a "
        "process backend; hung workers are terminated and retried "
        "(default: unbounded)",
    )
    chaos_group = serve.add_argument_group(
        "chaos (seeded fault injection for recovery testing)"
    )
    chaos_group.add_argument(
        "--chaos-seed",
        type=int,
        metavar="SEED",
        help="arm the chaos harness with this seed (required for any "
        "other --chaos-* flag to take effect)",
    )
    chaos_group.add_argument(
        "--chaos-drop-client",
        type=float,
        default=0.0,
        metavar="RATE",
        help="abort client connections mid-stream with this "
        "probability per event (clients must resume; default: 0)",
    )
    chaos_group.add_argument(
        "--chaos-lane-kill",
        type=float,
        default=0.0,
        metavar="RATE",
        help="kill a lane's cell worker on the cell's first attempt "
        "with this probability (default: 0)",
    )
    chaos_group.add_argument(
        "--chaos-lane-hang",
        type=float,
        default=0.0,
        metavar="RATE",
        help="hang a lane's cell worker past --cell-deadline with "
        "this probability (default: 0)",
    )
    chaos_group.add_argument(
        "--chaos-kill-after-cells",
        type=int,
        metavar="N",
        help="SIGKILL the daemon itself (os._exit 137) after N cold "
        "cells complete — the restart-recovery scenario (default: off)",
    )
    chaos_group.add_argument(
        "--chaos-journal-corrupt",
        type=float,
        default=0.0,
        metavar="RATE",
        help="tear the jobs-journal tail mid-line after an append "
        "with this probability (default: 0)",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        from .resilience import ChaosConfig
        from .service import JobJournalError, ServiceConfig, run_service

        ready_file = args.ready_file or str(Path(args.store) / "service.json")
        config = ServiceConfig(
            store_root=args.store,
            host=args.host,
            port=args.port,
            workers=max(1, args.workers),
            lanes=max(1, args.lanes),
            exec_backend=args.exec_backend,
            max_retries=max(0, args.retries),
            failure_policy=args.failure_policy,
            size_budget_bytes=args.size_budget,
            tenant_quota_bytes=args.tenant_quota,
            index_max_bytes=args.index_max_bytes,
            quarantine_max_files=args.quarantine_max_files,
            ready_file=ready_file,
            job_journal=not args.no_journal,
            journal_max_bytes=max(4096, args.journal_max_bytes),
            job_history=max(1, args.job_history),
            cell_deadline_s=args.cell_deadline,
        )
        chaos = None
        if args.chaos_seed is not None:
            chaos = ChaosConfig(
                seed=args.chaos_seed,
                drop_client_rate=args.chaos_drop_client,
                lane_kill_rate=args.chaos_lane_kill,
                lane_hang_rate=args.chaos_lane_hang,
                daemon_kill_after_cells=args.chaos_kill_after_cells,
                corrupt_journal_rate=args.chaos_journal_corrupt,
                hang_s=(args.cell_deadline or 30.0) * 4,
            )
        try:
            return run_service(config, chaos=chaos)
        except JobJournalError as exc:
            print(f"[serve] FATAL: {exc}", file=sys.stderr, flush=True)
            return 3

    spec = _load_spec(args.spec)
    runner = CampaignRunner(
        spec,
        args.store,
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", None),
        retry=RetryPolicy(max_retries=max(0, getattr(args, "retries", 2))),
        failure_policy=getattr(args, "failure_policy", "raise"),
    )

    if args.action == "run":
        result = runner.run(limit=args.limit)
        sys.stdout.write(result.summary)
        print(
            f"[store] hits={result.hits} misses={result.misses} "
            f"quarantined={runner.store.stats.quarantined} "
            f"entries={len(runner.store)}"
        )
        print(f"[campaign] state: {runner.state_dir}")
        if result.completed < result.total:
            print(
                f"[campaign] {result.total - result.completed} cell(s) "
                "pending — re-run to resume from the checkpoint"
            )
        if result.failures:
            for record in result.failures:
                print(
                    f"[campaign] FAILED {record.site}: {record.error}: "
                    f"{record.message} "
                    f"(digest {record.digest}, {record.attempts} attempts)"
                )
            print(
                f"[campaign] {len(result.failures)} cell(s) failed "
                "permanently — recorded in the checkpoint, re-attempted "
                "on the next run"
            )
            return 2
        return 0

    if args.action == "status":
        status = runner.status()
        print(
            f"campaign {status['campaign']!r}: "
            f"{status['completed']}/{status['total']} cells completed, "
            f"{len(status['failed'])} failed, "
            f"{status['skipped']} skipped, "
            f"{status['store_entries']} store entries at {status['store_root']}"
        )
        for cell_id in status["pending"]:
            print(f"  pending: {cell_id}")
        for cell_id in status["failed"]:
            print(f"  failed: {cell_id}")
        return 0

    if args.action == "clean":
        outcome = runner.clean(purge_store=args.purge_store)
        scope = "store-wide" if args.purge_store else "campaign-scoped"
        print(
            f"evicted {outcome['evicted']} artifact(s) ({scope}), "
            f"removed {outcome['state_dirs_removed']} campaign state dir(s)"
        )
        return 0

    raise AssertionError(f"unhandled action {args.action!r}")


if __name__ == "__main__":
    sys.exit(main())
