"""Why structured DFT exists: sequential ATPG vs scan, head to head.

The survey's Eq. (1) warns that its cost model ignores "the falloff in
automatic test generation capability due to sequential complexity of
the network."  This example makes the falloff concrete:

1. run a sound sequential ATPG (time-frame expansion, unknown initial
   state, every sequence verified) on three machines of increasing
   sequential nastiness;
2. prove, via synchronizing-sequence search, *why* the worst one fails;
3. run the scan flow on the same machines and watch the problem vanish.

Run:  python examples/sequential_vs_scan.py
"""

from repro.adhoc import add_clear_line
from repro.atpg import TimeFrameAtpg
from repro.circuits import binary_counter, sequence_detector, shift_register
from repro.scan import full_scan_flow
from repro.testability import find_initialization_sequence


def main() -> None:
    machines = [
        ("pipeline (shift register)", shift_register(4)),
        ("state machine (101 detector)", sequence_detector()),
        ("reset-less counter", binary_counter(3)),
        ("counter with CLEAR point", add_clear_line(binary_counter(3))),
    ]

    print("=== 1. sequential ATPG (time-frame expansion, <= 8 frames) ===")
    for label, circuit in machines:
        result = TimeFrameAtpg(circuit, max_frames=8).run()
        print(f"  {label}: {result.summary()}")
        if result.tests:
            deepest = max(t.frames_used for t in result.tests)
            print(f"    deepest test needs {deepest} time frames")

    print("\n=== 2. why the counter fails: it cannot be initialized ===")
    for label, circuit in machines[2:]:
        verdict = find_initialization_sequence(circuit)
        if verdict.initializable:
            print(f"  {label}: initializable in {verdict.length} clock(s)")
        else:
            print(
                f"  {label}: PROVEN uninitializable "
                f"(explored {verdict.explored_states} three-valued states)"
            )

    print("\n=== 3. the same machines, scanned ===")
    for label, circuit in machines:
        result = full_scan_flow(circuit, random_phase=16, verify=False)
        print(
            f"  {label}: core ATPG {result.core_tests.coverage:.1%} "
            f"with {len(result.core_tests.patterns)} patterns, "
            f"applied in {result.total_clocks} clocks "
            f"(+{result.design.extra_pins()} pins, "
            f"{result.design.gate_overhead():.0%} gates)"
        )


if __name__ == "__main__":
    main()
