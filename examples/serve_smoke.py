"""Campaign-service smoke: dedupe, priority scheduling, clean SIGTERM.

Starts the real daemon (``python -m repro serve``) as a subprocess and
asserts the service contract end to end, in two phases:

**Dedupe phase** — submits the built-in demo spec from two concurrent
clients:

* exactly one fault-simulation execution per unique cell (the second
  tenant attaches to in-flight work or reads the store — dedupe
  through ``cache_key``);
* both tenants receive byte-identical artifacts;
* SIGTERM drains the queue and exits 0, leaving a validated service
  manifest and no ready file behind.

**Priority phase** — restarts the daemon with ``--lanes 2``, queues a
low-priority bulk backlog from one tenant, then submits a
high-priority interactive job from a second tenant and asserts the
interactive job completes before the backlog does (fair-share +
priority scheduling over multiple lanes).

Run from the repo root (CI does)::

    PYTHONPATH=src python examples/serve_smoke.py
"""

import json
import signal
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.campaign import CampaignSpec, demo_spec
from repro.service import ServiceClient, wait_for_ready
from repro.telemetry import validate_manifest


def canonical(payloads):
    return {
        key: json.dumps(value, sort_keys=True).encode("utf-8")
        for key, value in payloads.items()
    }


def start_daemon(tmp, *extra_args):
    store = Path(tmp) / "store"
    ready = Path(tmp) / "ready.json"
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store),
            "--ready-file", str(ready),
            "--retries", "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return daemon, store, ready


def stop_daemon(daemon, ready):
    """SIGTERM the daemon and assert the clean-drain contract."""
    daemon.send_signal(signal.SIGTERM)
    output, _ = daemon.communicate(timeout=120)
    assert daemon.returncode == 0, (
        f"daemon exited {daemon.returncode}:\n{output}"
    )
    assert "[serve] drained:" in output, output
    assert not ready.exists(), "ready file not removed on exit"
    return output


def dedupe_smoke():
    spec = demo_spec()
    unique_cells = len(spec.cells())
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        daemon, store, ready = start_daemon(tmp)
        try:
            info = wait_for_ready(ready, timeout=60)
            print(f"daemon up: pid={info['pid']} port={info['port']}")
            client = ServiceClient(host=info["host"], port=info["port"])

            def submit(tenant):
                return client.submit(spec, tenant=tenant,
                                     return_payloads=True)

            with ThreadPoolExecutor(max_workers=2) as pool:
                alice, bob = pool.map(submit, ["alice", "bob"])

            for tenant, outcome in (("alice", alice), ("bob", bob)):
                assert outcome.ok, f"{tenant} failed: {outcome.done}"
                print(
                    f"{tenant}: hits={outcome.done['hits']} "
                    f"misses={outcome.done['misses']} "
                    f"shared={outcome.done['shared']}"
                )
            executions = alice.done["misses"] + bob.done["misses"]
            assert executions == unique_cells, (
                f"{executions} executions for {unique_cells} unique cells "
                "— dedupe failed"
            )
            assert canonical(alice.payloads()) == canonical(bob.payloads()), (
                "tenants received different artifacts"
            )
            print(f"dedupe OK: {unique_cells} executions served both tenants")
            stop_daemon(daemon, ready)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=30)

        manifest_path = store / "service" / "manifest.json"
        with open(manifest_path, "r", encoding="utf-8") as stream:
            manifest = json.load(stream)
        validate_manifest(manifest)
        dedupe = manifest["service"]["dedupe"]
        assert dedupe["misses"] == unique_cells, dedupe
        assert manifest["service"]["jobs"] == 2, manifest["service"]
        print(f"SIGTERM drain OK: exit 0, manifest dedupe={dedupe}")


def smoke_spec(name, seeds):
    """Single-engine c17 cells; one cell per seed."""
    return CampaignSpec(
        name=name,
        workloads=["c17"],
        engines=["parallel_pattern"],
        seeds=list(seeds),
        flows=["auto"],
        params={"method": "podem", "random_phase": 4},
    )


def priority_smoke():
    with tempfile.TemporaryDirectory(prefix="repro-serve-priority-") as tmp:
        daemon, store, ready = start_daemon(tmp, "--lanes", "2")
        try:
            info = wait_for_ready(ready, timeout=60)
            client = ServiceClient(host=info["host"], port=info["port"])
            status = client.status()
            assert status["lanes"] == 2, status

            order = []
            bulk_accepted = threading.Event()

            def run_bulk():
                spec = smoke_spec("smoke-bulk", range(40))
                for event in client.submit_iter(
                    spec, tenant="bulk", priority=0
                ):
                    if event["event"] == "accepted":
                        bulk_accepted.set()
                    elif event["event"] == "done":
                        order.append("bulk")

            bulk_thread = threading.Thread(target=run_bulk)
            bulk_thread.start()
            try:
                assert bulk_accepted.wait(timeout=60), "bulk never accepted"
                interactive = client.submit(
                    smoke_spec("smoke-interactive", [999]),
                    tenant="interactive", priority=10,
                )
                assert interactive.ok, interactive.done
                order.append("interactive")
            finally:
                bulk_thread.join(timeout=600)
            assert not bulk_thread.is_alive(), "bulk job never finished"
            assert order == ["interactive", "bulk"], (
                f"high-priority interactive job should finish before the "
                f"bulk backlog, got {order}"
            )
            print("priority OK: interactive (priority 10, second tenant) "
                  "finished before the 40-cell bulk backlog on 2 lanes")
            stop_daemon(daemon, ready)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=30)

        manifest_path = store / "service" / "manifest.json"
        with open(manifest_path, "r", encoding="utf-8") as stream:
            manifest = json.load(stream)
        validate_manifest(manifest)
        assert manifest["limits"]["lanes"] == 2, manifest["limits"]
        print("lane manifest OK: limits.lanes == 2")


def main():
    dedupe_smoke()
    priority_smoke()
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
